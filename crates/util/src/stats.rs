//! Streaming statistics and experiment-output helpers.
//!
//! The experiment drivers record per-client time series (bitrate traces for
//! Fig. 7, stall/framerate metrics for Fig. 8/10) and distributions (the
//! controller call-interval CDF of Fig. 12). These helpers keep that code
//! small and uniform.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Streaming mean/variance via Welford's algorithm.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance, or 0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// A collected sample set supporting percentiles and CDF export.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// Empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// The `p`-th percentile (0–100) by nearest-rank on the sorted samples.
    /// Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Empirical CDF as `(value, cumulative_fraction)` points.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let mut sorted = self.values.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as f64;
        sorted.iter().enumerate().map(|(i, &v)| (v, (i + 1) as f64 / n)).collect()
    }

    /// Borrow the raw samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// A `(time, value)` series recorder, e.g. the per-second send-rate trace of
/// the transient-response experiment (Fig. 7).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a point. Times are expected (but not required) to be monotone.
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t, v));
    }

    /// All recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no point was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of values with `t` in `[from, to)`, or `None` if that window is
    /// empty.
    pub fn window_mean(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let mut acc = 0.0;
        let mut n = 0u64;
        for &(t, v) in &self.points {
            if t >= from && t < to {
                acc += v;
                n += 1;
            }
        }
        (n > 0).then(|| acc / n as f64)
    }

    /// Last value at or before `t`, stepping (zero-order hold).
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        self.points.iter().take_while(|&&(pt, _)| pt <= t).last().map(|&(_, v)| v)
    }
}

/// Normalize a slice so that its maximum maps to 1.0 (as the paper does for
/// all confidential production metrics). An all-zero slice is returned as-is.
pub fn normalize_to_max(values: &[f64]) -> Vec<f64> {
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() || max <= 0.0 {
        return values.to_vec();
    }
    values.iter().map(|v| v / max).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 5);
    }

    #[test]
    fn welford_degenerate() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        w.push(5.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn percentiles() {
        let mut s = Samples::new();
        for i in 1..=100 {
            s.push(f64::from(i));
        }
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert!((s.percentile(50.0) - 50.0).abs() <= 1.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut s = Samples::new();
        for v in [3.0, 1.0, 2.0, 2.0] {
            s.push(v);
        }
        let cdf = s.cdf();
        assert_eq!(cdf.len(), 4);
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn timeseries_window_and_hold() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(0), 1.0);
        ts.push(SimTime::from_secs(1), 2.0);
        ts.push(SimTime::from_secs(2), 4.0);
        assert_eq!(ts.window_mean(SimTime::from_secs(0), SimTime::from_secs(2)), Some(1.5));
        assert_eq!(ts.value_at(SimTime::from_millis(1500)), Some(2.0));
        assert_eq!(ts.value_at(SimTime::from_secs(5)), Some(4.0));
        assert_eq!(ts.window_mean(SimTime::from_secs(10), SimTime::from_secs(11)), None);
    }

    #[test]
    fn normalization() {
        assert_eq!(normalize_to_max(&[1.0, 2.0, 4.0]), vec![0.25, 0.5, 1.0]);
        assert_eq!(normalize_to_max(&[0.0, 0.0]), vec![0.0, 0.0]);
    }
}
