//! Simulated time.
//!
//! Every component in the workspace is driven by an externally supplied
//! [`SimTime`]; nothing reads a wall clock. Time has microsecond resolution,
//! which is fine enough for packet-level simulation of multi-megabit links
//! (one 1200-byte packet at 10 Mbps lasts ~960 µs) while keeping arithmetic
//! in `u64` without overflow for simulations lasting thousands of years.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of a duration.
    pub fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest microsecond.
    ///
    /// Negative inputs clamp to zero: durations are unsigned.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True for the zero-length duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative float, rounding to the nearest microsecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{}ms", self.as_millis())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrip() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 10_500);
        let d = t - SimTime::from_secs(10);
        assert_eq!(d, SimDuration::from_millis(500));
        assert_eq!(d * 4, SimDuration::from_secs(2));
        assert_eq!(SimDuration::from_secs(2) / 4, SimDuration::from_millis(500));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration::from_millis(100).mul_f64(1.5), SimDuration::from_millis(150));
        assert_eq!(SimDuration::from_millis(100).mul_f64(-1.0), SimDuration::ZERO);
    }
}
