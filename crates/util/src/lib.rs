//! Foundation types shared by every GSO-Simulcast crate.
//!
//! All simulation components in this workspace are deterministic and
//! event-driven. This crate provides the primitives that make that possible:
//!
//! * [`time`] — microsecond-resolution simulated clock ([`SimTime`],
//!   [`SimDuration`]); there is no wall-clock anywhere in the simulator.
//! * [`bitrate`] — a strongly-typed [`Bitrate`] in bits per second, used for
//!   stream configurations, link capacities and estimator outputs alike.
//! * [`ids`] — newtype identifiers for clients, SSRCs and media streams.
//! * [`rng`] — seed-derived deterministic random number generation so that
//!   every experiment is exactly reproducible from a scenario seed.
//! * [`stats`] — streaming statistics (mean/variance, percentiles, CDFs,
//!   time-series recorders) used by the metric pipeline.
//! * [`ewma`] — exponentially-weighted moving averages used by filters in
//!   the bandwidth estimator and QoE trackers.

pub mod bitrate;
pub mod ewma;
pub mod ids;
pub mod rng;
pub mod stats;
pub mod time;

pub use bitrate::Bitrate;
pub use ids::{ClientId, Ssrc, StreamKind};
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
