//! Identifier newtypes used across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A conference participant. Each client can act as publisher and subscriber
/// at the same time (§4.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// An RTP synchronization source.
///
/// GSO-Simulcast assigns a distinct SSRC to each (client, stream-kind,
/// resolution) tuple during SDP negotiation so that TMMBR feedback can target
/// an individual simulcast layer (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ssrc(pub u32);

impl fmt::Display for Ssrc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ssrc:{:#010x}", self.0)
    }
}

/// The kind of media a stream carries.
///
/// A camera video and a screen-share video from the same client have
/// different SSRCs and are never merged by the controller (§4.4, footnote 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StreamKind {
    /// Audio; not orchestrated by GSO but protected by a bandwidth headroom
    /// subtraction (§7 "Protecting audios").
    Audio,
    /// Camera video, the main orchestrated media.
    Video,
    /// Screen-share video; typically higher priority than camera video.
    Screen,
}

impl StreamKind {
    /// All kinds, in a stable order.
    pub const ALL: [StreamKind; 3] = [StreamKind::Audio, StreamKind::Video, StreamKind::Screen];

    /// Whether the GSO controller orchestrates this kind (audio is exempt).
    pub fn is_orchestrated(self) -> bool {
        !matches!(self, StreamKind::Audio)
    }
}

impl fmt::Display for StreamKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StreamKind::Audio => "audio",
            StreamKind::Video => "video",
            StreamKind::Screen => "screen",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ClientId(3).to_string(), "client3");
        assert_eq!(Ssrc(0xdead).to_string(), "ssrc:0x0000dead");
        assert_eq!(StreamKind::Screen.to_string(), "screen");
    }

    #[test]
    fn orchestration_exemption() {
        assert!(!StreamKind::Audio.is_orchestrated());
        assert!(StreamKind::Video.is_orchestrated());
        assert!(StreamKind::Screen.is_orchestrated());
    }

    #[test]
    fn ids_order_by_value() {
        assert!(ClientId(1) < ClientId(2));
        assert!(Ssrc(1) < Ssrc(2));
    }
}
