//! Deterministic randomness.
//!
//! Every stochastic element of the simulator (link loss, jitter, frame size
//! variation, population sampling) draws from a [`DetRng`] derived from the
//! scenario seed plus a stable stream label. Re-running a scenario with the
//! same seed reproduces the experiment bit-for-bit, and adding a new consumer
//! of randomness does not perturb existing streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random source, one independent stream per component.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Create the root RNG for a scenario seed.
    pub fn from_seed(seed: u64) -> Self {
        DetRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derive an independent stream for a named component.
    ///
    /// The derivation hashes the label into the seed (FNV-1a), so the stream
    /// depends only on `(seed, label)` and not on the order in which other
    /// components derive their streams.
    pub fn derive(seed: u64, label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        DetRng::from_seed(seed ^ h)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Standard-normal sample via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        // Avoid ln(0) by sampling in (0, 1].
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Exponentially distributed sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = 1.0 - self.inner.gen::<f64>();
        -mean * u.ln()
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        let idx = self.inner.gen_range(0..items.len());
        &items[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::from_seed(42);
        let mut b = DetRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }

    #[test]
    fn derived_streams_are_independent_of_label() {
        let mut a = DetRng::derive(42, "link-loss");
        let mut b = DetRng::derive(42, "frame-size");
        // Streams with different labels should diverge immediately.
        assert_ne!(a.f64().to_bits(), b.f64().to_bits());
        // Same label reproduces.
        let mut a2 = DetRng::derive(42, "link-loss");
        let mut a3 = DetRng::derive(42, "link-loss");
        assert_eq!(a2.f64().to_bits(), a3.f64().to_bits());
    }

    #[test]
    fn chance_edges() {
        let mut r = DetRng::from_seed(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn gaussian_moments() {
        let mut r = DetRng::from_seed(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / f64::from(n);
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / f64::from(n);
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = DetRng::from_seed(9);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn range_bounds() {
        let mut r = DetRng::from_seed(3);
        for _ in 0..1000 {
            let v = r.range_u64(5, 10);
            assert!((5..10).contains(&v));
        }
    }
}
