//! Exponentially-weighted moving average.

use serde::{Deserialize, Serialize};

/// A simple EWMA: `y ← (1-α)·y + α·x`.
///
/// Used by the delay-gradient filter and rate smoothers in `gso-bwe`, and by
/// QoE trackers in the harness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Feed a sample; the first sample initializes the average.
    pub fn push(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(y) => (1.0 - self.alpha) * y + self.alpha * x,
        });
    }

    /// Current average, or `None` before the first sample.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current average, or `default` before the first sample.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Discard state, as if freshly constructed.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.value(), None);
        e.push(10.0);
        assert_eq!(e.value(), Some(10.0));
    }

    #[test]
    fn converges_toward_constant_input() {
        let mut e = Ewma::new(0.5);
        e.push(0.0);
        for _ in 0..50 {
            e.push(100.0);
        }
        assert!((e.value().unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_one_tracks_exactly() {
        let mut e = Ewma::new(1.0);
        e.push(1.0);
        e.push(7.0);
        assert_eq!(e.value(), Some(7.0));
    }

    #[test]
    fn reset_clears() {
        let mut e = Ewma::new(0.2);
        e.push(5.0);
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.value_or(3.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }
}
