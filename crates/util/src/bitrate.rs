//! Strongly-typed bitrates.
//!
//! The control algorithm, the network simulator and the media pipeline all
//! trade in bits per second. Using a newtype rather than bare `u64` keeps
//! bits/bytes and per-second/per-interval confusions out of the codebase.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A bitrate in bits per second.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bitrate(u64);

impl Bitrate {
    /// The zero bitrate, used to encode "stream disabled" (cf. TMMBR with a
    /// zero mantissa in §4.3 of the paper).
    pub const ZERO: Bitrate = Bitrate(0);

    /// Construct from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        Bitrate(bps)
    }

    /// Construct from kilobits per second (SI: 1 kbps = 1000 bps).
    pub const fn from_kbps(kbps: u64) -> Self {
        Bitrate(kbps * 1_000)
    }

    /// Construct from megabits per second (SI: 1 Mbps = 1e6 bps).
    pub const fn from_mbps(mbps: u64) -> Self {
        Bitrate(mbps * 1_000_000)
    }

    /// Construct from fractional megabits per second.
    pub fn from_mbps_f64(mbps: f64) -> Self {
        Bitrate((mbps.max(0.0) * 1e6).round() as u64)
    }

    /// Bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Kilobits per second (truncating).
    pub const fn as_kbps(self) -> u64 {
        self.0 / 1_000
    }

    /// Megabits per second as a float.
    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the disabled/zero bitrate.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Bitrate) -> Bitrate {
        Bitrate(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative factor, rounding to the nearest bps.
    pub fn mul_f64(self, k: f64) -> Bitrate {
        Bitrate((self.0 as f64 * k.max(0.0)).round() as u64)
    }

    /// How long it takes to serialize `bytes` at this rate.
    ///
    /// Returns `None` for the zero bitrate, where the transmission never
    /// completes.
    pub fn serialization_time(self, bytes: usize) -> Option<SimDuration> {
        if self.0 == 0 {
            return None;
        }
        let bits = bytes as u64 * 8;
        // Round up: a partially transmitted microsecond still occupies the link.
        Some(SimDuration::from_micros((bits * 1_000_000).div_ceil(self.0)))
    }

    /// How many bytes this rate delivers in `dur` (truncating).
    pub fn bytes_in(self, dur: SimDuration) -> u64 {
        self.0 * dur.as_micros() / 8 / 1_000_000
    }
}

impl Add for Bitrate {
    type Output = Bitrate;
    fn add(self, rhs: Bitrate) -> Bitrate {
        Bitrate(self.0 + rhs.0)
    }
}

impl AddAssign for Bitrate {
    fn add_assign(&mut self, rhs: Bitrate) {
        self.0 += rhs.0;
    }
}

impl Sub for Bitrate {
    type Output = Bitrate;
    fn sub(self, rhs: Bitrate) -> Bitrate {
        Bitrate(self.0 - rhs.0)
    }
}

impl SubAssign for Bitrate {
    fn sub_assign(&mut self, rhs: Bitrate) {
        self.0 -= rhs.0;
    }
}

impl Sum for Bitrate {
    fn sum<I: Iterator<Item = Bitrate>>(iter: I) -> Bitrate {
        iter.fold(Bitrate::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bitrate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            let mbps = self.0 as f64 / 1e6;
            if (mbps - mbps.round()).abs() < 1e-9 {
                write!(f, "{}Mbps", mbps.round() as u64)
            } else {
                write!(f, "{mbps:.2}Mbps")
            }
        } else if self.0 >= 1_000 {
            write!(f, "{}Kbps", self.as_kbps())
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Bitrate::from_kbps(600).as_bps(), 600_000);
        assert_eq!(Bitrate::from_mbps(2).as_kbps(), 2_000);
        assert_eq!(Bitrate::from_mbps_f64(1.5).as_kbps(), 1_500);
    }

    #[test]
    fn serialization_time_rounds_up() {
        // 1200 bytes at 1 Mbps = 9600 bits / 1e6 bps = 9.6 ms.
        let t = Bitrate::from_mbps(1).serialization_time(1200).unwrap();
        assert_eq!(t.as_micros(), 9_600);
        // Zero rate never completes.
        assert!(Bitrate::ZERO.serialization_time(100).is_none());
        // Non-divisible case rounds up.
        let t = Bitrate::from_bps(3).serialization_time(1).unwrap();
        assert_eq!(t.as_micros(), 2_666_667);
    }

    #[test]
    fn bytes_in_interval() {
        assert_eq!(Bitrate::from_mbps(8).bytes_in(SimDuration::from_secs(1)), 1_000_000);
        assert_eq!(Bitrate::from_kbps(8).bytes_in(SimDuration::from_millis(500)), 500);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bitrate::from_kbps(600).to_string(), "600Kbps");
        assert_eq!(Bitrate::from_mbps(2).to_string(), "2Mbps");
        assert_eq!(Bitrate::from_kbps(1_500).to_string(), "1.50Mbps");
        assert_eq!(Bitrate::from_bps(900).to_string(), "900bps");
    }

    #[test]
    fn sum_and_saturating() {
        let total: Bitrate = [Bitrate::from_kbps(100), Bitrate::from_kbps(200)].into_iter().sum();
        assert_eq!(total, Bitrate::from_kbps(300));
        assert_eq!(Bitrate::from_kbps(100).saturating_sub(Bitrate::from_kbps(200)), Bitrate::ZERO);
    }
}
