//! Keyframe-aligned stream switching.
//!
//! When the SFU changes which simulcast layer a subscriber receives, it must
//! not splice mid-GoP: the subscriber's decoder needs a keyframe on the new
//! layer. The [`LayerSwitcher`] forwards the current layer until the target
//! layer produces a frame-starting keyframe packet, then switches atomically.

use gso_util::{SimDuration, SimTime, Ssrc};

/// Per-(subscriber, publisher-source) switching state.
#[derive(Debug, Clone, Default)]
pub struct LayerSwitcher {
    current: Option<Ssrc>,
    pending: Option<Ssrc>,
    /// When the pending switch was requested (for latency metrics).
    pending_since: Option<SimTime>,
    /// Request→keyframe-landing latency of the most recent completed
    /// switch, until drained by [`LayerSwitcher::take_switch_latency`].
    completed_latency: Option<SimDuration>,
}

impl LayerSwitcher {
    /// New switcher with no layer selected.
    pub fn new() -> Self {
        Self::default()
    }

    /// The layer currently forwarded.
    pub fn current(&self) -> Option<Ssrc> {
        self.current
    }

    /// The layer we are trying to switch to, if any.
    pub fn pending(&self) -> Option<Ssrc> {
        self.pending
    }

    /// Request that the subscriber receive `target` (or nothing).
    ///
    /// Switching down to `None` (unsubscribe) is immediate. A first-ever
    /// selection waits for a keyframe like any other switch.
    pub fn request(&mut self, target: Option<Ssrc>) {
        self.request_at(target, SimTime::ZERO);
    }

    /// [`LayerSwitcher::request`] with the request time recorded, so the
    /// eventual keyframe landing can report its latency.
    pub fn request_at(&mut self, target: Option<Ssrc>, now: SimTime) {
        match target {
            None => {
                self.current = None;
                self.pending = None;
                self.pending_since = None;
            }
            Some(t) if Some(t) == self.current => {
                self.pending = None;
                self.pending_since = None;
            }
            Some(t) => {
                // A re-request of the same pending target keeps the original
                // request time: the subscriber has been waiting since then.
                if self.pending != Some(t) {
                    self.pending_since = Some(now);
                }
                self.pending = Some(t);
            }
        }
    }

    /// Should a packet from `ssrc` be forwarded? `keyframe_start` must be
    /// true for the first packet of a keyframe.
    pub fn should_forward(&mut self, ssrc: Ssrc, keyframe_start: bool) -> bool {
        self.should_forward_at(ssrc, keyframe_start, SimTime::ZERO)
    }

    /// [`LayerSwitcher::should_forward`] with the current time, so a switch
    /// landing on this packet records its request→landing latency.
    // sentinel: hot_path(sfu-packet-switch)
    pub fn should_forward_at(&mut self, ssrc: Ssrc, keyframe_start: bool, now: SimTime) -> bool {
        let previous = self.current;
        if self.pending == Some(ssrc) && keyframe_start {
            self.current = Some(ssrc);
            self.pending = None;
            if let Some(since) = self.pending_since.take() {
                self.completed_latency = Some(now.saturating_since(since));
            }
        }
        // Trust boundary: a layer switch must land exactly on the first
        // packet of a keyframe of the target layer — never mid-GoP.
        debug_assert!(
            self.current == previous || (keyframe_start && self.current == Some(ssrc)),
            "layer switch landed mid-GoP: {previous:?} -> {:?}",
            self.current
        );
        self.current == Some(ssrc)
    }

    /// Drain the latency of the most recently completed switch, if one
    /// landed since the last drain.
    pub fn take_switch_latency(&mut self) -> Option<SimDuration> {
        self.completed_latency.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_selection_waits_for_keyframe() {
        let mut sw = LayerSwitcher::new();
        sw.request(Some(Ssrc(1)));
        assert!(!sw.should_forward(Ssrc(1), false), "no splice mid-GoP");
        assert!(sw.should_forward(Ssrc(1), true));
        assert!(sw.should_forward(Ssrc(1), false), "forwarding continues");
        assert_eq!(sw.current(), Some(Ssrc(1)));
    }

    #[test]
    fn switch_keeps_old_layer_until_new_keyframe() {
        let mut sw = LayerSwitcher::new();
        sw.request(Some(Ssrc(1)));
        assert!(sw.should_forward(Ssrc(1), true));
        sw.request(Some(Ssrc(2)));
        // Old layer still flows; new layer's delta frames don't.
        assert!(sw.should_forward(Ssrc(1), false));
        assert!(!sw.should_forward(Ssrc(2), false));
        // New keyframe: atomic switch.
        assert!(sw.should_forward(Ssrc(2), true));
        assert!(!sw.should_forward(Ssrc(1), false), "old layer cut after switch");
        assert_eq!(sw.current(), Some(Ssrc(2)));
        assert_eq!(sw.pending(), None);
    }

    #[test]
    fn unsubscribe_is_immediate() {
        let mut sw = LayerSwitcher::new();
        sw.request(Some(Ssrc(1)));
        assert!(sw.should_forward(Ssrc(1), true));
        sw.request(None);
        assert!(!sw.should_forward(Ssrc(1), false));
        assert!(!sw.should_forward(Ssrc(1), true));
    }

    #[test]
    fn rerequesting_current_cancels_pending_switch() {
        let mut sw = LayerSwitcher::new();
        sw.request(Some(Ssrc(1)));
        assert!(sw.should_forward(Ssrc(1), true));
        sw.request(Some(Ssrc(2)));
        sw.request(Some(Ssrc(1))); // controller changed its mind
        assert!(!sw.should_forward(Ssrc(2), true), "cancelled switch must not land");
        assert!(sw.should_forward(Ssrc(1), false));
    }

    #[test]
    fn unrelated_ssrc_never_forwarded() {
        let mut sw = LayerSwitcher::new();
        sw.request(Some(Ssrc(1)));
        assert!(!sw.should_forward(Ssrc(9), true));
    }

    #[test]
    fn switch_latency_measured_from_request_to_keyframe_landing() {
        let mut sw = LayerSwitcher::new();
        sw.request_at(Some(Ssrc(1)), SimTime::from_millis(100));
        assert_eq!(sw.take_switch_latency(), None, "nothing landed yet");
        assert!(!sw.should_forward_at(Ssrc(1), false, SimTime::from_millis(150)));
        assert!(sw.should_forward_at(Ssrc(1), true, SimTime::from_millis(400)));
        assert_eq!(sw.take_switch_latency(), Some(SimDuration::from_millis(300)));
        assert_eq!(sw.take_switch_latency(), None, "latency drains once");

        // A re-request of the same pending target keeps the original clock.
        sw.request_at(Some(Ssrc(2)), SimTime::from_secs(1));
        sw.request_at(Some(Ssrc(2)), SimTime::from_secs(2));
        assert!(sw.should_forward_at(Ssrc(2), true, SimTime::from_secs(3)));
        assert_eq!(sw.take_switch_latency(), Some(SimDuration::from_secs(2)));
    }

    #[test]
    fn cancelled_switch_reports_no_latency() {
        let mut sw = LayerSwitcher::new();
        sw.request_at(Some(Ssrc(1)), SimTime::from_millis(10));
        assert!(sw.should_forward_at(Ssrc(1), true, SimTime::from_millis(20)));
        let _ = sw.take_switch_latency();
        sw.request_at(Some(Ssrc(2)), SimTime::from_millis(30));
        sw.request_at(Some(Ssrc(1)), SimTime::from_millis(40)); // cancelled
        assert!(!sw.should_forward_at(Ssrc(2), true, SimTime::from_millis(50)));
        assert_eq!(sw.take_switch_latency(), None);
    }
}
