//! Keyframe-aligned stream switching.
//!
//! When the SFU changes which simulcast layer a subscriber receives, it must
//! not splice mid-GoP: the subscriber's decoder needs a keyframe on the new
//! layer. The [`LayerSwitcher`] forwards the current layer until the target
//! layer produces a frame-starting keyframe packet, then switches atomically.

use gso_util::Ssrc;

/// Per-(subscriber, publisher-source) switching state.
#[derive(Debug, Clone, Default)]
pub struct LayerSwitcher {
    current: Option<Ssrc>,
    pending: Option<Ssrc>,
}

impl LayerSwitcher {
    /// New switcher with no layer selected.
    pub fn new() -> Self {
        Self::default()
    }

    /// The layer currently forwarded.
    pub fn current(&self) -> Option<Ssrc> {
        self.current
    }

    /// The layer we are trying to switch to, if any.
    pub fn pending(&self) -> Option<Ssrc> {
        self.pending
    }

    /// Request that the subscriber receive `target` (or nothing).
    ///
    /// Switching down to `None` (unsubscribe) is immediate. A first-ever
    /// selection waits for a keyframe like any other switch.
    pub fn request(&mut self, target: Option<Ssrc>) {
        match target {
            None => {
                self.current = None;
                self.pending = None;
            }
            Some(t) if Some(t) == self.current => {
                self.pending = None;
            }
            Some(t) => {
                self.pending = Some(t);
            }
        }
    }

    /// Should a packet from `ssrc` be forwarded? `keyframe_start` must be
    /// true for the first packet of a keyframe.
    pub fn should_forward(&mut self, ssrc: Ssrc, keyframe_start: bool) -> bool {
        let previous = self.current;
        if self.pending == Some(ssrc) && keyframe_start {
            self.current = Some(ssrc);
            self.pending = None;
        }
        // Trust boundary: a layer switch must land exactly on the first
        // packet of a keyframe of the target layer — never mid-GoP.
        debug_assert!(
            self.current == previous || (keyframe_start && self.current == Some(ssrc)),
            "layer switch landed mid-GoP: {previous:?} -> {:?}",
            self.current
        );
        self.current == Some(ssrc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_selection_waits_for_keyframe() {
        let mut sw = LayerSwitcher::new();
        sw.request(Some(Ssrc(1)));
        assert!(!sw.should_forward(Ssrc(1), false), "no splice mid-GoP");
        assert!(sw.should_forward(Ssrc(1), true));
        assert!(sw.should_forward(Ssrc(1), false), "forwarding continues");
        assert_eq!(sw.current(), Some(Ssrc(1)));
    }

    #[test]
    fn switch_keeps_old_layer_until_new_keyframe() {
        let mut sw = LayerSwitcher::new();
        sw.request(Some(Ssrc(1)));
        assert!(sw.should_forward(Ssrc(1), true));
        sw.request(Some(Ssrc(2)));
        // Old layer still flows; new layer's delta frames don't.
        assert!(sw.should_forward(Ssrc(1), false));
        assert!(!sw.should_forward(Ssrc(2), false));
        // New keyframe: atomic switch.
        assert!(sw.should_forward(Ssrc(2), true));
        assert!(!sw.should_forward(Ssrc(1), false), "old layer cut after switch");
        assert_eq!(sw.current(), Some(Ssrc(2)));
        assert_eq!(sw.pending(), None);
    }

    #[test]
    fn unsubscribe_is_immediate() {
        let mut sw = LayerSwitcher::new();
        sw.request(Some(Ssrc(1)));
        assert!(sw.should_forward(Ssrc(1), true));
        sw.request(None);
        assert!(!sw.should_forward(Ssrc(1), false));
        assert!(!sw.should_forward(Ssrc(1), true));
    }

    #[test]
    fn rerequesting_current_cancels_pending_switch() {
        let mut sw = LayerSwitcher::new();
        sw.request(Some(Ssrc(1)));
        assert!(sw.should_forward(Ssrc(1), true));
        sw.request(Some(Ssrc(2)));
        sw.request(Some(Ssrc(1))); // controller changed its mind
        assert!(!sw.should_forward(Ssrc(2), true), "cancelled switch must not land");
        assert!(sw.should_forward(Ssrc(1), false));
    }

    #[test]
    fn unrelated_ssrc_never_forwarded() {
        let mut sw = LayerSwitcher::new();
        sw.request(Some(Ssrc(1)));
        assert!(!sw.should_forward(Ssrc(9), true));
    }
}
