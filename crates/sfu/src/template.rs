//! Publisher-side template policies — the non-GSO uplink half.
//!
//! In traditional Simulcast "a publisher decides what to push based on
//! his/her local view of the upstream network" (§1), using hand-tuned
//! template rules. These templates reproduce that behaviour for the
//! baselines: given only the local uplink estimate (and the participant
//! count the template was tuned for), decide which coarse layers to encode.
//! The publisher has no idea what anyone subscribes to — which is exactly
//! how the wasted-uplink situation of Fig. 3a arises.

use gso_util::Bitrate;

/// A layer a template decides to send: (resolution lines, bitrate).
pub type TemplateLayer = (u16, Bitrate);

/// Which baseline system a template models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateKind {
    /// Traditional 3-level Simulcast (the paper's Non-GSO baseline).
    NonGso,
    /// "Competitor 1": two-level Chime-like template.
    Competitor1,
    /// "Competitor 2": single adaptive stream.
    Competitor2,
}

/// The coarse layer set of the Non-GSO baseline: 1.5M/720P, 600K/360P,
/// 300K/180P (ratios up to 5× between adjacent levels, as §1 describes).
pub const NON_GSO_LAYERS: [TemplateLayer; 3] = [
    (180, Bitrate::from_kbps(300)),
    (360, Bitrate::from_kbps(600)),
    (720, Bitrate::from_kbps(1500)),
];

/// Evaluate a template: which layers should the publisher push given its
/// local uplink estimate?
pub fn layers_for(kind: TemplateKind, uplink_estimate: Bitrate) -> Vec<TemplateLayer> {
    match kind {
        TemplateKind::NonGso => {
            // Enable layers smallest-first while the cumulative rate fits
            // 90% of the estimate — the template has no subscriber
            // knowledge, so it pushes everything it can afford (Fig. 3a).
            let budget = uplink_estimate.mul_f64(0.9);
            let mut total = Bitrate::ZERO;
            let mut out = Vec::new();
            for &(lines, rate) in &NON_GSO_LAYERS {
                if total + rate <= budget {
                    total += rate;
                    out.push((lines, rate));
                }
            }
            out
        }
        TemplateKind::Competitor1 => {
            // §1 footnote 2: 360P at 600 Kbps if the uplink clears 300 Kbps
            // (plus a thumbnail), otherwise nothing but the thumbnail.
            let mut out = vec![(180, Bitrate::from_kbps(150))];
            if uplink_estimate > Bitrate::from_kbps(300) {
                out.push((360, Bitrate::from_kbps(600)));
            }
            out
        }
        TemplateKind::Competitor2 => {
            // One stream, adapted to the local uplink only: resolution by
            // rate band.
            let rate = uplink_estimate.mul_f64(0.85).min(Bitrate::from_kbps(1500));
            if rate < Bitrate::from_kbps(100) {
                return Vec::new();
            }
            let lines = if rate >= Bitrate::from_kbps(900) {
                720
            } else if rate >= Bitrate::from_kbps(400) {
                360
            } else {
                180
            };
            vec![(lines, rate)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: u64) -> Bitrate {
        Bitrate::from_kbps(v)
    }

    #[test]
    fn non_gso_pushes_everything_it_can_afford() {
        // 5 Mbps uplink: all three layers (2.4 Mbps total) — including the
        // 1.5 Mbps stream even if no one wants it (Fig. 3a).
        let ls = layers_for(TemplateKind::NonGso, k(5_000));
        assert_eq!(ls.len(), 3);
        // 2 Mbps uplink: 0.9 × 2M = 1.8M < 2.4M, so the 720P layer is cut.
        let ls = layers_for(TemplateKind::NonGso, k(2_000));
        assert_eq!(ls.len(), 2);
        assert!(ls.iter().all(|&(lines, _)| lines <= 360));
        // 500 Kbps uplink: only the small stream.
        let ls = layers_for(TemplateKind::NonGso, k(500));
        assert_eq!(ls, vec![(180, k(300))]);
        // 100 Kbps: nothing fits.
        assert!(layers_for(TemplateKind::NonGso, k(100)).is_empty());
    }

    #[test]
    fn competitor1_threshold_rule() {
        let ls = layers_for(TemplateKind::Competitor1, k(1_000));
        assert_eq!(ls.len(), 2);
        assert!(ls.contains(&(360, k(600))));
        let ls = layers_for(TemplateKind::Competitor1, k(250));
        assert_eq!(ls, vec![(180, k(150))]);
    }

    #[test]
    fn competitor2_single_adaptive_stream() {
        let ls = layers_for(TemplateKind::Competitor2, k(2_000));
        assert_eq!(ls.len(), 1);
        assert_eq!(ls[0].0, 720);
        assert_eq!(ls[0].1, k(1_500), "capped at the ladder top");
        let ls = layers_for(TemplateKind::Competitor2, k(600));
        assert_eq!(ls[0].0, 360);
        assert_eq!(ls[0].1, k(510));
        assert!(layers_for(TemplateKind::Competitor2, k(50)).is_empty());
    }
}
