//! Inter-accessing-node relay routing.
//!
//! The media plane is a mesh of interconnected accessing nodes (§3): a
//! published stream enters at the publisher's accessing node, which forwards
//! it directly to local subscribers and relays it to the accessing nodes of
//! remote subscribers. The [`RelayTable`] answers "who else needs this
//! SSRC?" — local subscriber endpoints and/or peer accessing nodes — and
//! deduplicates so a stream crosses each inter-node link once regardless of
//! how many remote subscribers need it.

use gso_util::Ssrc;
use std::collections::{BTreeMap, BTreeSet};

/// An opaque endpoint id: a local subscriber or a peer accessing node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RelayTarget {
    /// A subscriber attached to this accessing node.
    Local(u32),
    /// A peer accessing node (which fans out further on its side).
    Peer(u32),
}

/// Routing state of one accessing node.
#[derive(Debug, Clone, Default)]
pub struct RelayTable {
    routes: BTreeMap<Ssrc, BTreeSet<RelayTarget>>,
}

impl RelayTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a target for a stream. Idempotent.
    pub fn subscribe(&mut self, ssrc: Ssrc, target: RelayTarget) {
        self.routes.entry(ssrc).or_default().insert(target);
    }

    /// Remove a target for a stream.
    pub fn unsubscribe(&mut self, ssrc: Ssrc, target: RelayTarget) {
        if let Some(set) = self.routes.get_mut(&ssrc) {
            set.remove(&target);
            if set.is_empty() {
                self.routes.remove(&ssrc);
            }
        }
    }

    /// Remove every route involving a target (client left / node down).
    pub fn remove_target(&mut self, target: RelayTarget) {
        self.routes.retain(|_, set| {
            set.remove(&target);
            !set.is_empty()
        });
    }

    /// Where should a packet with this SSRC go?
    pub fn targets(&self, ssrc: Ssrc) -> Vec<RelayTarget> {
        self.routes.get(&ssrc).map(|s| s.iter().copied().collect()).unwrap_or_default()
    }

    /// True if nobody needs this stream (the accessing node can tell the
    /// controller, which will stop the publisher — Fig. 3d).
    pub fn is_unwanted(&self, ssrc: Ssrc) -> bool {
        self.routes.get(&ssrc).is_none_or(std::collections::BTreeSet::is_empty)
    }

    /// All SSRCs with at least one target.
    pub fn active_ssrcs(&self) -> Vec<Ssrc> {
        self.routes.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_dedupes_per_target() {
        let mut t = RelayTable::new();
        t.subscribe(Ssrc(1), RelayTarget::Local(10));
        t.subscribe(Ssrc(1), RelayTarget::Local(10)); // duplicate
        t.subscribe(Ssrc(1), RelayTarget::Peer(2));
        assert_eq!(t.targets(Ssrc(1)), vec![RelayTarget::Local(10), RelayTarget::Peer(2)]);
    }

    #[test]
    fn one_relay_hop_for_many_remote_subscribers() {
        // Remote subscribers live behind the peer node; only one Peer route
        // exists no matter how many of them subscribe.
        let mut t = RelayTable::new();
        for _ in 0..10 {
            t.subscribe(Ssrc(5), RelayTarget::Peer(3));
        }
        assert_eq!(t.targets(Ssrc(5)).len(), 1);
    }

    #[test]
    fn unsubscribe_cleans_up() {
        let mut t = RelayTable::new();
        t.subscribe(Ssrc(1), RelayTarget::Local(1));
        t.unsubscribe(Ssrc(1), RelayTarget::Local(1));
        assert!(t.is_unwanted(Ssrc(1)));
        assert!(t.targets(Ssrc(1)).is_empty());
        assert!(t.active_ssrcs().is_empty());
    }

    #[test]
    fn remove_target_sweeps_all_streams() {
        let mut t = RelayTable::new();
        t.subscribe(Ssrc(1), RelayTarget::Local(7));
        t.subscribe(Ssrc(2), RelayTarget::Local(7));
        t.subscribe(Ssrc(2), RelayTarget::Local(8));
        t.remove_target(RelayTarget::Local(7));
        assert!(t.is_unwanted(Ssrc(1)));
        assert_eq!(t.targets(Ssrc(2)), vec![RelayTarget::Local(8)]);
    }

    #[test]
    fn unknown_ssrc_is_unwanted() {
        let t = RelayTable::new();
        assert!(t.is_unwanted(Ssrc(42)));
    }
}
