//! Per-subscriber stream selection — the "local view" policies.
//!
//! In traditional Simulcast the SFU picks which simulcast layer to forward
//! to each subscriber using only its local estimate of that subscriber's
//! downlink (§2.3). These selectors implement that behaviour and the two
//! competitor baselines of Fig. 8; the GSO path bypasses them entirely,
//! because the controller has already decided exactly which stream each
//! subscriber gets.

use gso_util::{Bitrate, Ssrc};

/// One simulcast layer a publisher currently offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfferedLayer {
    /// Layer SSRC.
    pub ssrc: Ssrc,
    /// Vertical resolution.
    pub resolution_lines: u16,
    /// The layer's current send bitrate.
    pub bitrate: Bitrate,
}

/// A policy choosing which layer (if any) to forward to a subscriber.
pub trait StreamSelector: Send {
    /// Pick a layer given the subscriber's available downlink budget for
    /// this publisher. Layers are sorted ascending by bitrate.
    fn select(&self, layers: &[OfferedLayer], budget: Bitrate) -> Option<Ssrc>;
}

/// Debug-build trust-boundary check for forwarding decisions: a selected
/// SSRC must identify an offered, currently-active layer, and — when the
/// policy promises one — sit within the margin-adjusted budget. Compiles to
/// nothing in release builds.
#[inline]
fn debug_check_selection(layers: &[OfferedLayer], cap: Option<Bitrate>, pick: Option<Ssrc>) {
    let Some(ssrc) = pick else { return };
    let layer = layers.iter().find(|l| l.ssrc == ssrc);
    debug_assert!(
        layer.is_some_and(|l| !l.bitrate.is_zero()),
        "selector picked {ssrc:?}, which is not an active offered layer"
    );
    if let (Some(layer), Some(cap)) = (layer, cap) {
        debug_assert!(
            layer.bitrate <= cap,
            "selector picked {:?} over the budget cap {cap}",
            layer.bitrate
        );
    }
}

/// The traditional local policy: forward the largest layer whose bitrate
/// fits within `margin × budget`. The safety margin is what produces the
/// video/network mismatch of Fig. 3b — a 1.45 Mbps downlink cannot take a
/// 1.5 Mbps stream, so the subscriber falls all the way to the next coarse
/// level.
#[derive(Debug, Clone)]
pub struct LargestFitSelector {
    /// Fraction of the budget a stream may occupy (headroom for audio,
    /// retransmissions, estimate error).
    pub margin: f64,
}

impl Default for LargestFitSelector {
    fn default() -> Self {
        LargestFitSelector { margin: 0.9 }
    }
}

impl StreamSelector for LargestFitSelector {
    fn select(&self, layers: &[OfferedLayer], budget: Bitrate) -> Option<Ssrc> {
        let cap = budget.mul_f64(self.margin);
        let pick = layers
            .iter()
            .filter(|l| !l.bitrate.is_zero() && l.bitrate <= cap)
            .max_by_key(|l| l.bitrate)
            .map(|l| l.ssrc);
        debug_check_selection(layers, Some(cap), pick);
        pick
    }
}

/// "Competitor 1": a Chime-like two-level template (§1 footnote 2). The
/// medium (360P/600 Kbps) stream is used when the downlink clears a fixed
/// 750 Kbps threshold; otherwise the small stream; below 200 Kbps, nothing.
#[derive(Debug, Clone, Default)]
pub struct TwoLevelSelector;

impl StreamSelector for TwoLevelSelector {
    fn select(&self, layers: &[OfferedLayer], budget: Bitrate) -> Option<Ssrc> {
        let active: Vec<&OfferedLayer> = layers.iter().filter(|l| !l.bitrate.is_zero()).collect();
        if active.is_empty() || budget < Bitrate::from_kbps(200) {
            return None;
        }
        let pick = if budget > Bitrate::from_kbps(750) {
            active.iter().max_by_key(|l| l.bitrate).map(|l| l.ssrc)
        } else {
            active.iter().min_by_key(|l| l.bitrate).map(|l| l.ssrc)
        };
        debug_check_selection(layers, None, pick);
        pick
    }
}

/// "Competitor 2": a single-stream system — whatever the publisher sends is
/// forwarded to everyone, regardless of the subscriber's downlink (the
/// slow-link problem of Fig. 2a in its rawest form).
#[derive(Debug, Clone, Default)]
pub struct PassthroughSelector;

impl StreamSelector for PassthroughSelector {
    fn select(&self, layers: &[OfferedLayer], _budget: Bitrate) -> Option<Ssrc> {
        let pick = layers
            .iter()
            .filter(|l| !l.bitrate.is_zero())
            .max_by_key(|l| l.bitrate)
            .map(|l| l.ssrc);
        debug_check_selection(layers, None, pick);
        pick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layers() -> Vec<OfferedLayer> {
        vec![
            OfferedLayer { ssrc: Ssrc(1), resolution_lines: 180, bitrate: Bitrate::from_kbps(300) },
            OfferedLayer { ssrc: Ssrc(2), resolution_lines: 360, bitrate: Bitrate::from_kbps(600) },
            OfferedLayer {
                ssrc: Ssrc(3),
                resolution_lines: 720,
                bitrate: Bitrate::from_kbps(1500),
            },
        ]
    }

    #[test]
    fn largest_fit_uses_margin() {
        let s = LargestFitSelector::default();
        // Fig. 3b: a 1.45 Mbps downlink with a 0.9 margin caps at 1.305 Mbps,
        // so the 1.5 Mbps layer is rejected and 600 Kbps wins — the mismatch.
        assert_eq!(s.select(&layers(), Bitrate::from_kbps(1_450)), Some(Ssrc(2)));
        assert_eq!(s.select(&layers(), Bitrate::from_mbps(2)), Some(Ssrc(3)));
        assert_eq!(s.select(&layers(), Bitrate::from_kbps(400)), Some(Ssrc(1)));
        assert_eq!(s.select(&layers(), Bitrate::from_kbps(100)), None);
    }

    #[test]
    fn largest_fit_skips_disabled_layers() {
        let s = LargestFitSelector::default();
        let mut ls = layers();
        ls[2].bitrate = Bitrate::ZERO;
        assert_eq!(s.select(&ls, Bitrate::from_mbps(5)), Some(Ssrc(2)));
    }

    #[test]
    fn two_level_thresholds() {
        let s = TwoLevelSelector;
        let ls = vec![
            OfferedLayer { ssrc: Ssrc(1), resolution_lines: 180, bitrate: Bitrate::from_kbps(150) },
            OfferedLayer { ssrc: Ssrc(2), resolution_lines: 360, bitrate: Bitrate::from_kbps(600) },
        ];
        assert_eq!(s.select(&ls, Bitrate::from_mbps(2)), Some(Ssrc(2)));
        assert_eq!(s.select(&ls, Bitrate::from_kbps(700)), Some(Ssrc(1)));
        assert_eq!(s.select(&ls, Bitrate::from_kbps(100)), None);
    }

    #[test]
    fn passthrough_ignores_budget() {
        let s = PassthroughSelector;
        assert_eq!(s.select(&layers(), Bitrate::from_kbps(1)), Some(Ssrc(3)));
        assert_eq!(s.select(&[], Bitrate::from_mbps(5)), None);
    }
}
