//! Selective-forwarding-unit building blocks (the media-plane "accessing
//! node" logic, §3) plus the non-GSO baseline policies.
//!
//! * [`selector`] — per-subscriber layer selection from a local downlink
//!   view: the traditional largest-fit policy and the two competitor
//!   baselines of Fig. 8.
//! * [`template`] — publisher-side template policies (what to push given
//!   only the local uplink estimate) for the same baselines.
//! * [`switcher`] — keyframe-aligned layer switching.
//! * [`relay`] — inter-accessing-node routing with per-link deduplication.
//!
//! The full accessing-node network entity is assembled in `gso-sim`, where
//! these pieces are wired to the packet simulator, the bandwidth estimator
//! and the control plane.

pub mod relay;
pub mod selector;
pub mod switcher;
pub mod template;

pub use relay::{RelayTable, RelayTarget};
pub use selector::{
    LargestFitSelector, OfferedLayer, PassthroughSelector, StreamSelector, TwoLevelSelector,
};
pub use switcher::LayerSwitcher;
pub use template::{layers_for, TemplateKind, TemplateLayer, NON_GSO_LAYERS};
