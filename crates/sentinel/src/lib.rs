//! gso-sentinel — call-graph-aware hot-path static analyzer.
//!
//! The ROADMAP's next performance item rewrites the solver hot path
//! (zero-alloc SIMD MCKP, cross-conference batching); rewrites like that
//! silently reintroduce panics, hidden allocations and unit confusions
//! unless a machine re-checks on every commit. Sentinel parses every
//! workspace crate with the shared token-level source model
//! ([`gso_srcmodel`] — the offline build has no `syn`), builds an
//! approximate intra-workspace call graph, and runs four passes over it:
//!
//! 1. **hot-panic** — panic freedom on everything reachable from a
//!    declared root set (`// sentinel: hot_path` markers on the warm
//!    re-solve, the DP rows, the controller tick, the SFU packet switch);
//! 2. **hot-alloc** — allocation discipline on the same cones, with
//!    per-root site counts in the JSON report so the zero-alloc work has
//!    a tracked baseline;
//! 3. **metric-key** — telemetry recording calls must pass `keys::`
//!    consts, enforcing the DESIGN.md invariant that every metric name
//!    lives in `keys.rs`;
//! 4. **unit-hygiene** — bare-primitive declarations named `*_bps` /
//!    `*_kbps` / `*bitrate*` must use the `Bitrate` newtype.
//!
//! Exemptions are reasoned, line-scoped `// sentinel: allow(rule,
//! reason = "…")` pragmas, themselves checked: unknown rules, missing
//! reasons and unused pragmas are violations, so the allowlist cannot rot.
//! The `sentinel` binary exits nonzero on any violation; CI gates on it
//! and archives the JSON report (see DESIGN.md "Static analysis").

pub mod passes;
pub mod report;

pub use gso_srcmodel::{graph, lex, model, parse};
pub use gso_srcmodel::{parse_path, parse_workspace, workspace_deps};

pub use graph::CallGraph;
pub use model::ParsedFile;
pub use passes::{analyze, analyze_with_deps, RULE_IDS};
pub use report::{Finding, PragmaError, Report, RootReport};

use std::path::Path;

/// Scan a workspace and run all passes.
///
/// # Errors
/// Propagates I/O failures reading the source tree.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let deps = workspace_deps(root)?;
    Ok(analyze_with_deps(&parse_workspace(root)?, &deps))
}

/// Scan a flat directory of standalone fixture files. Each file is treated
/// as its own crate (named after the file stem) so fixtures stay
/// self-contained.
///
/// # Errors
/// Propagates I/O failures reading the directory.
pub fn scan_fixture_dir(dir: &Path) -> std::io::Result<Report> {
    Ok(analyze(&gso_srcmodel::parse_fixture_dir(dir)?))
}
