//! gso-sentinel — call-graph-aware hot-path static analyzer.
//!
//! The ROADMAP's next performance item rewrites the solver hot path
//! (zero-alloc SIMD MCKP, cross-conference batching); rewrites like that
//! silently reintroduce panics, hidden allocations and unit confusions
//! unless a machine re-checks on every commit. Sentinel parses every
//! workspace crate with a hand-rolled token-level parser (the offline
//! build has no `syn`), builds an approximate intra-workspace call graph,
//! and runs four passes over it:
//!
//! 1. **hot-panic** — panic freedom on everything reachable from a
//!    declared root set (`// sentinel: hot_path` markers on the warm
//!    re-solve, the DP rows, the controller tick, the SFU packet switch);
//! 2. **hot-alloc** — allocation discipline on the same cones, with
//!    per-root site counts in the JSON report so the zero-alloc work has
//!    a tracked baseline;
//! 3. **metric-key** — telemetry recording calls must pass `keys::`
//!    consts, enforcing the DESIGN.md invariant that every metric name
//!    lives in `keys.rs`;
//! 4. **unit-hygiene** — bare-primitive declarations named `*_bps` /
//!    `*_kbps` / `*bitrate*` must use the `Bitrate` newtype.
//!
//! Exemptions are reasoned, line-scoped `// sentinel: allow(rule,
//! reason = "…")` pragmas, themselves checked: unknown rules, missing
//! reasons and unused pragmas are violations, so the allowlist cannot rot.
//! The `sentinel` binary exits nonzero on any violation; CI gates on it
//! and archives the JSON report (see DESIGN.md "Static analysis").

pub mod graph;
pub mod lex;
pub mod model;
pub mod parse;
pub mod passes;
pub mod report;

pub use graph::CallGraph;
pub use model::ParsedFile;
pub use passes::{analyze, analyze_with_deps, RULE_IDS};
pub use report::{Finding, PragmaError, Report, RootReport};

use std::collections::BTreeMap;

use std::path::{Path, PathBuf};

/// Recursively collect `.rs` files under `dir`, sorted for deterministic
/// report order.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Module path implied by a file's location under its crate's `src/`:
/// `src/lib.rs` → `[]`, `src/mckp.rs` → `["mckp"]`, `src/bin/x.rs` → `[]`,
/// `src/a/mod.rs` → `["a"]`.
fn module_prefix(rel: &Path) -> Vec<String> {
    let mut parts: Vec<String> = rel
        .with_extension("")
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    if parts.first().is_some_and(|p| p == "bin") {
        return Vec::new();
    }
    if parts.last().is_some_and(|l| l == "lib" || l == "main" || l == "mod") {
        parts.pop();
    }
    parts
}

/// Parse one file from disk into a [`ParsedFile`].
///
/// # Errors
/// Propagates I/O failures reading the file.
pub fn parse_path(
    root: &Path,
    path: &Path,
    krate: &str,
    src_dir: &Path,
) -> std::io::Result<ParsedFile> {
    let src = std::fs::read_to_string(path)?;
    let label = path.strip_prefix(root).unwrap_or(path).to_string_lossy().into_owned();
    let rel = path.strip_prefix(src_dir).unwrap_or(path);
    Ok(parse::parse_file(&label, krate, &module_prefix(rel), &src))
}

/// Parse every crate's `src/` tree under a workspace root, plus the root
/// facade crate's own `src/`.
///
/// # Errors
/// Propagates I/O failures reading the source tree.
pub fn parse_workspace(root: &Path) -> std::io::Result<Vec<ParsedFile>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let krate = dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        let src_dir = dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src_dir, &mut files)?;
        for path in files {
            out.push(parse_path(root, &path, &krate, &src_dir)?);
        }
    }
    // The workspace-root facade crate.
    let root_src = root.join("src");
    if root_src.is_dir() {
        let mut files = Vec::new();
        rust_files(&root_src, &mut files)?;
        for path in files {
            out.push(parse_path(root, &path, "gso_simulcast", &root_src)?);
        }
    }
    Ok(out)
}

/// Intra-workspace dependencies of one crate, read from its `Cargo.toml`
/// `[dependencies]` section: every `gso-x` entry maps to crate directory
/// name `x`. Dev-dependencies are ignored — they only link into tests,
/// which are never call-graph nodes.
fn manifest_deps(manifest: &Path) -> std::io::Result<Vec<String>> {
    let text = std::fs::read_to_string(manifest)?;
    let mut deps = Vec::new();
    let mut in_deps = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if in_deps {
            if let Some(rest) = line.strip_prefix("gso-") {
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
                    .collect();
                deps.push(name.replace('-', "_"));
            }
        }
    }
    Ok(deps)
}

/// The workspace crate-dependency map: crate directory name → direct
/// intra-workspace dependencies, plus the root facade crate.
///
/// # Errors
/// Propagates I/O failures reading the manifests.
pub fn workspace_deps(root: &Path) -> std::io::Result<BTreeMap<String, Vec<String>>> {
    let mut deps = BTreeMap::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for entry in entries.filter_map(Result::ok) {
            let dir = entry.path();
            let manifest = dir.join("Cargo.toml");
            if manifest.is_file() {
                let krate =
                    dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
                deps.insert(krate, manifest_deps(&manifest)?);
            }
        }
    }
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        deps.insert("gso_simulcast".to_string(), manifest_deps(&root_manifest)?);
    }
    Ok(deps)
}

/// Scan a workspace and run all passes.
///
/// # Errors
/// Propagates I/O failures reading the source tree.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let deps = workspace_deps(root)?;
    Ok(analyze_with_deps(&parse_workspace(root)?, &deps))
}

/// Scan a flat directory of standalone fixture files. Each file is treated
/// as its own crate (named after the file stem) so fixtures stay
/// self-contained.
///
/// # Errors
/// Propagates I/O failures reading the directory.
pub fn scan_fixture_dir(dir: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    rust_files(dir, &mut files)?;
    let mut parsed = Vec::new();
    for path in files {
        let src = std::fs::read_to_string(&path)?;
        let stem = path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
        let label = path.file_name().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
        parsed.push(parse::parse_file(&label, &stem, &[], &src));
    }
    Ok(analyze(&parsed))
}
