//! The four semantic passes, plus marker and pragma handling.
//!
//! * `hot-panic` — no `unwrap`/undocumented `expect`/`panic!` family/raw
//!   indexing/runtime division reachable from a declared hot-path root.
//! * `hot-alloc` — no allocator traffic (`Vec::new`, `push`, `collect`,
//!   `clone`, `Box::new`, `to_vec`, `format!`, …) reachable from a root.
//! * `metric-key` — every telemetry recording call outside
//!   `crates/telemetry` must pass a `keys::` const, never a literal or
//!   variable (the "every metric name lives in keys.rs" invariant).
//! * `unit-hygiene` — no bare-primitive declarations whose identifiers
//!   match `*_bps`/`*_kbps`/`*bitrate*` bypassing the `Bitrate` newtype
//!   (the newtype's own module is the one sanctioned boundary).
//!
//! ## Markers and pragmas
//!
//! Roots are declared in source with a marker comment directly above the
//! function (attributes included):
//!
//! ```text
//! // sentinel: hot_path(warm_resolve)
//! pub fn solve(&mut self, …) { … }
//! ```
//!
//! `// sentinel: cold_path(reason = "…")` excludes a function (and
//! everything only reachable through it) from every cone — for slow-path
//! branches like crash recovery that share a caller with the hot loop.
//! Exemptions are detguard-style line-scoped pragmas:
//!
//! ```text
//! // sentinel: allow(hot-alloc, reason = "amortized: buffer reuse")
//! ```
//!
//! A pragma applies to its own line and the line directly below. Unknown
//! rules, missing reasons, and unused pragmas are themselves violations.

use crate::graph::CallGraph;
use crate::model::{ParsedFile, SiteKind};
use crate::report::{Finding, PragmaError, Report, RootReport};
use gso_srcmodel::pragma;
use std::collections::BTreeSet;

/// Sentinel rule identifiers.
pub const RULE_IDS: &[&str] = &["hot-panic", "hot-alloc", "metric-key", "unit-hygiene"];

/// The one file allowed to declare bare-primitive bitrate quantities: the
/// `Bitrate` newtype's own conversion boundary.
const UNIT_BOUNDARY_FILE: &str = "bitrate.rs";

#[derive(Debug)]
struct Pragma {
    file: String,
    line: usize,
    rule: String,
    reason: Option<String>,
    used: bool,
    malformed: Option<String>,
}

#[derive(Debug)]
enum Marker {
    HotPath {
        label: Option<String>,
    },
    /// Reason is validated at parse time; only the exclusion matters here.
    ColdPath,
}

/// Parse `sentinel:` pragmas and markers out of one file's comments.
fn parse_directives(
    file: &str,
    comments: &[(usize, String)],
) -> (Vec<Pragma>, Vec<(usize, Marker)>, Vec<PragmaError>) {
    let mut pragmas = Vec::new();
    let mut markers = Vec::new();
    let mut errors = Vec::new();
    for (line, text) in comments {
        // Doc comments (`///`, `//!`) are rustdoc prose — examples in them
        // must not register as directives. A real directive is a plain
        // `//` comment whose body *starts* with `sentinel:`, so prose that
        // merely mentions the word is ignored too.
        let body = text.trim_start_matches('/');
        if text.len() - body.len() != 2 {
            continue;
        }
        let Some(body) = body.trim_start().strip_prefix("sentinel:") else {
            continue;
        };
        let body = body.trim();
        if body.starts_with(':') {
            continue; // `sentinel::` path reference
        }
        if let Some(rest) = body.strip_prefix("allow(") {
            let allow = pragma::parse_allow(rest, RULE_IDS);
            pragmas.push(Pragma {
                file: file.to_string(),
                line: *line,
                rule: allow.rule,
                reason: allow.reason,
                used: false,
                malformed: allow.malformed,
            });
        } else if body == "hot_path" || body.starts_with("hot_path(") {
            let label = body
                .strip_prefix("hot_path(")
                .and_then(|r| r.rfind(')').map(|p| r[..p].trim().to_string()))
                .filter(|s| !s.is_empty());
            markers.push((*line, Marker::HotPath { label }));
        } else if let Some(rest) = body.strip_prefix("cold_path(") {
            let inner = rest.rfind(')').map(|p| &rest[..p]);
            let reason = inner.and_then(pragma::parse_reason).filter(|r| !r.is_empty());
            if reason.is_none() {
                errors.push(PragmaError {
                    file: file.to_string(),
                    line: *line,
                    message: "cold_path marker must carry `reason = \"…\"`".to_string(),
                });
            } else {
                markers.push((*line, Marker::ColdPath));
            }
        } else {
            errors.push(PragmaError {
                file: file.to_string(),
                line: *line,
                message: format!("unrecognized sentinel directive: `{body}`"),
            });
        }
    }
    (pragmas, markers, errors)
}

/// Run all four passes over the parsed files with no crate-dependency
/// information (single-crate corpora, fixtures, unit tests).
#[must_use]
pub fn analyze(files: &[ParsedFile]) -> Report {
    analyze_with_deps(files, &std::collections::BTreeMap::new())
}

/// Run all four passes over the parsed files, constraining call-graph
/// edges by the workspace dependency relation (see
/// [`CallGraph::build_with_deps`]), and assemble the report.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn analyze_with_deps(
    files: &[ParsedFile],
    deps: &std::collections::BTreeMap<String, Vec<String>>,
) -> Report {
    let graph = CallGraph::build_with_deps(files, deps);
    let mut report =
        Report { files_scanned: files.len(), functions: graph.fns.len(), ..Report::default() };

    // ---- directives -----------------------------------------------------
    let mut pragmas: Vec<Pragma> = Vec::new();
    let mut roots: Vec<(usize, String)> = Vec::new();
    let mut cold: BTreeSet<usize> = BTreeSet::new();
    for pf in files {
        let (mut ps, markers, errors) = parse_directives(&pf.file, &pf.comments);
        pragmas.append(&mut ps);
        report.pragma_errors.extend(errors);
        for (line, marker) in markers {
            // A marker attaches to the function whose item (first
            // attribute included) starts on one of the next few lines, or
            // whose `fn` shares the marker's line (trailing comment).
            let target = graph
                .fns
                .iter()
                .position(|f| {
                    f.file == pf.file
                        && ((f.start_line >= line && f.start_line <= line + 3) || f.line == line)
                })
                .or_else(|| {
                    // Also look among test fns to give a better error.
                    pf.fns
                        .iter()
                        .find(|f| f.is_test && f.start_line >= line && f.start_line <= line + 3)
                        .map(|_| usize::MAX)
                });
            match (target, marker) {
                (Some(usize::MAX), _) => report.pragma_errors.push(PragmaError {
                    file: pf.file.clone(),
                    line,
                    message: "sentinel marker on a test function has no effect".to_string(),
                }),
                (Some(idx), Marker::HotPath { label }) => {
                    let label = label.unwrap_or_else(|| graph.fns[idx].name.clone());
                    roots.push((idx, label));
                }
                (Some(idx), Marker::ColdPath) => {
                    cold.insert(idx);
                }
                (None, _) => report.pragma_errors.push(PragmaError {
                    file: pf.file.clone(),
                    line,
                    message: "sentinel marker is not attached to a function".to_string(),
                }),
            }
        }
    }
    roots.sort_by_key(|a| a.0);

    // ---- passes 1–2: hot-path panic freedom & allocation discipline ----
    let mut per_root: Vec<(usize, String, BTreeSet<usize>)> = roots
        .iter()
        .map(|(idx, label)| (*idx, label.clone(), graph.reachable(&[*idx], &cold)))
        .collect();
    let mut hot: BTreeSet<usize> = BTreeSet::new();
    for (_, _, set) in &per_root {
        hot.extend(set.iter().copied());
    }
    let src_line = |file: &str, line: usize| -> String {
        files
            .iter()
            .find(|p| p.file == file)
            .and_then(|p| p.src_lines.get(line - 1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    for &idx in &hot {
        let f = graph.fns[idx];
        for site in &f.sites {
            let rule = match site.kind {
                SiteKind::Panic => "hot-panic",
                SiteKind::Alloc => "hot-alloc",
                SiteKind::DocumentedInvariant => continue, // counted per root only
            };
            report.findings.push(Finding {
                file: f.file.clone(),
                line: site.line,
                rule: rule.to_string(),
                trigger: site.what.to_string(),
                function: f.qualified(),
                snippet: src_line(&f.file, site.line),
                allowed: false,
                reason: None,
            });
        }
    }

    // ---- pass 3: metric-key literal lint --------------------------------
    for pf in files {
        if pf.krate == "telemetry" {
            continue; // the crate implementing the API is the boundary
        }
        for m in &pf.metric_sites {
            if m.keyed {
                continue;
            }
            report.findings.push(Finding {
                file: pf.file.clone(),
                line: m.line,
                rule: "metric-key".to_string(),
                trigger: format!("{}({})", m.method, m.arg),
                function: String::new(),
                snippet: src_line(&pf.file, m.line),
                allowed: false,
                reason: None,
            });
        }
    }

    // ---- pass 4: bitrate-unit hygiene -----------------------------------
    for pf in files {
        if pf.file.ends_with(UNIT_BOUNDARY_FILE) && pf.krate == "util" {
            continue;
        }
        for u in &pf.unit_sites {
            if u.is_test {
                continue;
            }
            report.findings.push(Finding {
                file: pf.file.clone(),
                line: u.line,
                rule: "unit-hygiene".to_string(),
                trigger: format!("{}: {} ({:?})", u.ident, u.prim, u.ctx).to_lowercase(),
                function: String::new(),
                snippet: src_line(&pf.file, u.line),
                allowed: false,
                reason: None,
            });
        }
    }

    // ---- pragma application ---------------------------------------------
    report.findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report.findings.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.rule == b.rule && a.trigger == b.trigger
    });
    for f in &mut report.findings {
        let pragma = pragmas.iter_mut().find(|p| {
            p.malformed.is_none()
                && p.file == f.file
                && p.rule == f.rule
                && (p.line == f.line || p.line + 1 == f.line)
        });
        if let Some(p) = pragma {
            p.used = true;
            f.allowed = true;
            f.reason = p.reason.clone();
        }
    }
    for p in &pragmas {
        if let Some(msg) = &p.malformed {
            report.pragma_errors.push(PragmaError {
                file: p.file.clone(),
                line: p.line,
                message: msg.clone(),
            });
        } else if !p.used {
            report.pragma_errors.push(PragmaError {
                file: p.file.clone(),
                line: p.line,
                message: format!(
                    "unused pragma: no `{}` finding on this or the next line — remove it",
                    p.rule
                ),
            });
        }
    }
    report.pragma_errors.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    // ---- per-root summaries ----------------------------------------------
    for (idx, label, set) in per_root.drain(..) {
        let mut panic_sites = 0usize;
        let mut documented = 0usize;
        let mut alloc_sites = 0usize;
        for &i in &set {
            for s in &graph.fns[i].sites {
                match s.kind {
                    SiteKind::Panic => panic_sites += 1,
                    SiteKind::DocumentedInvariant => documented += 1,
                    SiteKind::Alloc => alloc_sites += 1,
                }
            }
        }
        report.roots.push(RootReport {
            root: graph.fns[idx].qualified(),
            label,
            reachable_fns: set.len(),
            panic_sites,
            documented_invariants: documented,
            alloc_sites,
        });
    }
    report
}
