//! `sentinel` — hot-path static analysis CLI.
//!
//! Scans the workspace sources, runs the four sentinel passes, and exits
//! nonzero on any unallowlisted finding, malformed/unused pragma, or
//! dangling marker, so CI can gate on it directly.
//!
//! ```text
//! sentinel [--root <workspace-root>] [--json] [--fixtures <dir>] [--ratchet <file>]
//! ```
//!
//! `--root` defaults to the current directory; `--json` prints the
//! machine-readable report (per-root hot-path allocation/panic site
//! counts included) instead of the human summary; `--fixtures <dir>`
//! scans a standalone fixture corpus instead of the workspace — used by
//! CI to prove the analyzer still fails on known-bad code; `--ratchet
//! <file>` additionally enforces per-root allocation-site ceilings from a
//! committed baseline file (`<label> <max-alloc-sites>` per line, `#`
//! comments), failing when a root exceeds its ceiling or disappears — the
//! alloc-discipline ratchet CI gates on.

use gso_sentinel::passes::RULE_IDS;
use gso_sentinel::Report;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Check per-root alloc-site counts against the committed baseline file.
/// Returns human-readable violations; an empty list means the ratchet holds.
fn check_ratchet(report: &Report, path: &Path) -> Result<Vec<String>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut problems = Vec::new();
    let mut seen_any = false;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(label), Some(max), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "{}:{}: expected `<label> <max-alloc-sites>`, got `{line}`",
                path.display(),
                lineno + 1
            ));
        };
        let max: usize = max
            .parse()
            .map_err(|e| format!("{}:{}: bad ceiling `{max}`: {e}", path.display(), lineno + 1))?;
        seen_any = true;
        match report.roots.iter().find(|r| r.label == label) {
            None => problems.push(format!(
                "ratchet root `{label}` is missing from the scan — was its hot_path marker removed?"
            )),
            Some(r) if r.alloc_sites > max => problems.push(format!(
                "root `{label}` has {} alloc site(s), above its ratchet ceiling of {max}",
                r.alloc_sites
            )),
            Some(_) => {}
        }
    }
    if !seen_any {
        return Err(format!("{}: no ratchet entries found", path.display()));
    }
    Ok(problems)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut fixtures: Option<PathBuf> = None;
    let mut ratchet: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(v) = args.next() else {
                    eprintln!("sentinel: --root requires a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(v);
            }
            "--fixtures" => {
                let Some(v) = args.next() else {
                    eprintln!("sentinel: --fixtures requires a path");
                    return ExitCode::from(2);
                };
                fixtures = Some(PathBuf::from(v));
            }
            "--ratchet" => {
                let Some(v) = args.next() else {
                    eprintln!("sentinel: --ratchet requires a path");
                    return ExitCode::from(2);
                };
                ratchet = Some(PathBuf::from(v));
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: sentinel [--root <workspace-root>] [--json] [--fixtures <dir>] [--ratchet <file>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sentinel: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let report = match &fixtures {
        Some(dir) => gso_sentinel::scan_fixture_dir(dir),
        None => gso_sentinel::scan_workspace(&root),
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sentinel: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        println!(
            "sentinel: scanned {} files, {} functions, rules {RULE_IDS:?}",
            report.files_scanned, report.functions
        );
        for r in &report.roots {
            println!(
                "  root {} [{}]: {} reachable fn(s), {} panic site(s), {} documented invariant(s), {} alloc site(s)",
                r.root, r.label, r.reachable_fns, r.panic_sites, r.documented_invariants, r.alloc_sites
            );
        }
        for f in &report.findings {
            if f.allowed {
                println!(
                    "  allowed  {}:{} [{}] {} — reason: {}",
                    f.file,
                    f.line,
                    f.rule,
                    f.trigger,
                    f.reason.as_deref().unwrap_or("<none>")
                );
            }
        }
        for f in report.unallowed() {
            let in_fn =
                if f.function.is_empty() { String::new() } else { format!(" in {}", f.function) };
            println!(
                "  VIOLATION {}:{} [{}] {}{}\n    {}",
                f.file, f.line, f.rule, f.trigger, in_fn, f.snippet
            );
        }
        for e in &report.pragma_errors {
            println!("  VIOLATION {}:{} [directive] {}", e.file, e.line, e.message);
        }
        println!(
            "sentinel: {} finding(s), {} allowed, {} violation(s)",
            report.findings.len(),
            report.findings.iter().filter(|f| f.allowed).count(),
            report.violation_count()
        );
    }

    let mut ratchet_broken = false;
    if let Some(path) = &ratchet {
        match check_ratchet(&report, path) {
            Ok(problems) => {
                for p in &problems {
                    eprintln!("  RATCHET {p}");
                }
                if problems.is_empty() {
                    println!("sentinel: alloc ratchet holds ({})", path.display());
                } else {
                    ratchet_broken = true;
                }
            }
            Err(e) => {
                eprintln!("sentinel: ratchet check failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if report.violation_count() > 0 || ratchet_broken {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
