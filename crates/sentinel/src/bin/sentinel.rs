//! `sentinel` — hot-path static analysis CLI.
//!
//! Scans the workspace sources, runs the four sentinel passes, and exits
//! nonzero on any unallowlisted finding, malformed/unused pragma, or
//! dangling marker, so CI can gate on it directly.
//!
//! ```text
//! sentinel [--root <workspace-root>] [--json] [--fixtures <dir>]
//! ```
//!
//! `--root` defaults to the current directory; `--json` prints the
//! machine-readable report (per-root hot-path allocation/panic site
//! counts included) instead of the human summary; `--fixtures <dir>`
//! scans a standalone fixture corpus instead of the workspace — used by
//! CI to prove the analyzer still fails on known-bad code.

use gso_sentinel::passes::RULE_IDS;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut fixtures: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(v) = args.next() else {
                    eprintln!("sentinel: --root requires a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(v);
            }
            "--fixtures" => {
                let Some(v) = args.next() else {
                    eprintln!("sentinel: --fixtures requires a path");
                    return ExitCode::from(2);
                };
                fixtures = Some(PathBuf::from(v));
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: sentinel [--root <workspace-root>] [--json] [--fixtures <dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sentinel: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let report = match &fixtures {
        Some(dir) => gso_sentinel::scan_fixture_dir(dir),
        None => gso_sentinel::scan_workspace(&root),
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sentinel: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        println!(
            "sentinel: scanned {} files, {} functions, rules {RULE_IDS:?}",
            report.files_scanned, report.functions
        );
        for r in &report.roots {
            println!(
                "  root {} [{}]: {} reachable fn(s), {} panic site(s), {} documented invariant(s), {} alloc site(s)",
                r.root, r.label, r.reachable_fns, r.panic_sites, r.documented_invariants, r.alloc_sites
            );
        }
        for f in &report.findings {
            if f.allowed {
                println!(
                    "  allowed  {}:{} [{}] {} — reason: {}",
                    f.file,
                    f.line,
                    f.rule,
                    f.trigger,
                    f.reason.as_deref().unwrap_or("<none>")
                );
            }
        }
        for f in report.unallowed() {
            let in_fn =
                if f.function.is_empty() { String::new() } else { format!(" in {}", f.function) };
            println!(
                "  VIOLATION {}:{} [{}] {}{}\n    {}",
                f.file, f.line, f.rule, f.trigger, in_fn, f.snippet
            );
        }
        for e in &report.pragma_errors {
            println!("  VIOLATION {}:{} [directive] {}", e.file, e.line, e.message);
        }
        println!(
            "sentinel: {} finding(s), {} allowed, {} violation(s)",
            report.findings.len(),
            report.findings.iter().filter(|f| f.allowed).count(),
            report.violation_count()
        );
    }

    if report.violation_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
