//! Findings, per-root summaries, and the JSON report.
//!
//! The JSON is hand-rolled with stable key order (no serde in the offline
//! build) so CI can diff reports across runs, matching the detguard and
//! telemetry export conventions.

use std::fmt::Write as _;

/// One rule hit, exempted or not.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Scan-root-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier from [`crate::passes::RULE_IDS`].
    pub rule: String,
    /// What fired (e.g. `unwrap`, `index`, `collect`, `literal-name`).
    pub trigger: String,
    /// Qualified function the site sits in (empty for file-scope passes).
    pub function: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Whether a pragma exempts this finding.
    pub allowed: bool,
    /// The pragma's justification, when allowed.
    pub reason: Option<String>,
}

/// A malformed/unused pragma or a dangling marker — always a violation.
#[derive(Debug, Clone)]
pub struct PragmaError {
    /// Scan-root-relative path.
    pub file: String,
    /// 1-based line of the pragma/marker.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

/// Hot-path summary for one declared root.
#[derive(Debug, Clone)]
pub struct RootReport {
    /// Qualified name of the root function.
    pub root: String,
    /// Marker label (defaults to the function name).
    pub label: String,
    /// Functions reachable from this root (including itself).
    pub reachable_fns: usize,
    /// Panic-capable sites in the cone (allowed or not).
    pub panic_sites: usize,
    /// `.expect("invariant: …")` sites in the cone.
    pub documented_invariants: usize,
    /// Allocation sites in the cone (allowed or not) — the number the
    /// zero-alloc work drives to zero.
    pub alloc_sites: usize,
}

/// Aggregate result of a scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of non-test functions in the call graph.
    pub functions: usize,
    /// Per-root hot-path summaries.
    pub roots: Vec<RootReport>,
    /// Every rule hit.
    pub findings: Vec<Finding>,
    /// Malformed/unused pragmas and dangling markers.
    pub pragma_errors: Vec<PragmaError>,
}

impl Report {
    /// Findings not covered by a valid pragma.
    #[must_use]
    pub fn unallowed(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| !f.allowed).collect()
    }

    /// Total violations: unallowed findings plus pragma/marker errors.
    #[must_use]
    pub fn violation_count(&self) -> usize {
        self.unallowed().len() + self.pragma_errors.len()
    }

    /// Machine-readable JSON report (stable key order).
    #[must_use]
    #[allow(clippy::missing_panics_doc)] // write! to String is infallible
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"functions\": {},", self.functions);
        let _ = writeln!(out, "  \"violations\": {},", self.violation_count());
        out.push_str("  \"roots\": [");
        for (i, r) in self.roots.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"root\": {}, \"label\": {}, \"reachable_fns\": {}, \"panic_sites\": {}, \"documented_invariants\": {}, \"alloc_sites\": {}}}",
                json_str(&r.root),
                json_str(&r.label),
                r.reachable_fns,
                r.panic_sites,
                r.documented_invariants,
                r.alloc_sites,
            );
        }
        out.push_str("\n  ],\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"trigger\": {}, \"function\": {}, \"allowed\": {}, \"reason\": {}, \"snippet\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(&f.rule),
                json_str(&f.trigger),
                json_str(&f.function),
                f.allowed,
                f.reason.as_deref().map_or_else(|| "null".to_string(), json_str),
                json_str(&f.snippet),
            );
        }
        out.push_str("\n  ],\n  \"pragma_errors\": [");
        for (i, e) in self.pragma_errors.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(&e.file),
                e.line,
                json_str(&e.message),
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
