//! Fixture-corpus self-tests: each known-bad file must produce exactly the
//! findings it was written to produce — rule, file AND line — so a parser
//! or pass regression that silently stops firing fails CI here even though
//! the workspace scan (which gates on zero violations) would still pass.

use gso_sentinel::{scan_fixture_dir, Report};
use std::path::Path;

fn fixture_report() -> Report {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    scan_fixture_dir(&dir).expect("fixture dir is readable")
}

/// Assert a non-allowed finding exists with this exact (file, line, rule).
fn assert_finding(report: &Report, file: &str, line: usize, rule: &str) {
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.file == file && f.line == line && f.rule == rule && !f.allowed),
        "expected {rule} violation at {file}:{line}; got {:#?}",
        report.findings
    );
}

#[test]
fn hot_panic_fixture_flags_unwrap_index_and_panic_macro() {
    let r = fixture_report();
    assert_finding(&r, "hot_panic.rs", 5, "hot-panic"); // .unwrap()
    assert_finding(&r, "hot_panic.rs", 6, "hot-panic"); // xs[1]
    assert_finding(&r, "hot_panic.rs", 8, "hot-panic"); // panic!()
}

#[test]
fn hot_alloc_fixture_flags_ctor_and_push() {
    let r = fixture_report();
    assert_finding(&r, "hot_alloc.rs", 5, "hot-alloc"); // Vec::new()
    assert_finding(&r, "hot_alloc.rs", 7, "hot-alloc"); // out.push(x)
}

#[test]
fn metric_key_fixture_flags_literal_name_only() {
    let r = fixture_report();
    assert_finding(&r, "metric_key.rs", 7, "metric-key");
    // The `keys::GOOD_METRIC` call on line 6 must NOT fire.
    assert!(
        !r.findings.iter().any(|f| f.file == "metric_key.rs" && f.line == 6),
        "keys:: const call was wrongly flagged"
    );
}

#[test]
fn unit_hygiene_fixture_flags_field_param_and_let() {
    let r = fixture_report();
    assert_finding(&r, "unit_hygiene.rs", 6, "unit-hygiene"); // field
    assert_finding(&r, "unit_hygiene.rs", 10, "unit-hygiene"); // param
    assert_finding(&r, "unit_hygiene.rs", 11, "unit-hygiene"); // let
}

#[test]
fn call_graph_reaches_panic_two_calls_below_root() {
    let r = fixture_report();
    // `leaf` has no marker of its own; the finding exists only because the
    // BFS walked root -> middle -> leaf.
    assert_finding(&r, "two_deep.rs", 14, "hot-panic");
    let f = r
        .findings
        .iter()
        .find(|f| f.file == "two_deep.rs" && f.line == 14)
        .expect("two-deep finding present");
    assert_eq!(f.function, "two_deep::leaf");
    let root = r.roots.iter().find(|root| root.label == "fx-deep").expect("fx-deep root reported");
    assert_eq!(root.reachable_fns, 3, "root + middle + leaf");
    assert_eq!(root.panic_sites, 1);
}

#[test]
fn pragma_errors_cover_unknown_rule_missing_reason_and_unused() {
    let r = fixture_report();
    let err_at = |line: usize, needle: &str| {
        assert!(
            r.pragma_errors
                .iter()
                .any(|e| e.file == "pragma_bad.rs" && e.line == line && e.message.contains(needle)),
            "expected pragma error at pragma_bad.rs:{line} containing {needle:?}; got {:#?}",
            r.pragma_errors
        );
    };
    err_at(4, "unknown rule");
    err_at(7, "reason");
    err_at(10, "unused pragma");
}

#[test]
fn fixture_corpus_is_a_nonzero_exit_for_the_binary() {
    let r = fixture_report();
    // 10 rule findings + 3 pragma errors; the binary exits nonzero whenever
    // this count is nonzero, so the corpus guards the CI gate itself.
    assert_eq!(r.violation_count(), 13);
    assert!(r.findings.iter().all(|f| !f.allowed));
}

#[test]
fn per_root_alloc_counts_are_reported() {
    let r = fixture_report();
    let alloc_root =
        r.roots.iter().find(|root| root.label == "fx-alloc").expect("fx-alloc root reported");
    assert_eq!(alloc_root.alloc_sites, 2);
    assert_eq!(alloc_root.panic_sites, 0);
}
