//! Known-bad fixture: malformed and unused pragmas — the allowlist is
//! itself checked, so each of these is a violation.

// sentinel: allow(not-a-rule, reason = "unknown rule id")
pub fn a() {}

// sentinel: allow(hot-panic)
pub fn b() {}

// sentinel: allow(hot-alloc, reason = "nothing on the next line allocates")
pub fn c() {}
