//! Known-bad fixture: panic-capable sites inside a declared hot root.

// sentinel: hot_path(fx-panic)
pub fn switch_packet(xs: &[u64]) -> u64 {
    let first = xs.first().unwrap();
    let second = xs[1];
    if *first == 0 {
        panic!("zero divisor");
    }
    first + second
}
