//! Known-bad fixture: bare-primitive declarations with bitrate names.

/// A config struct with a raw bitrate field.
pub struct Config {
    /// Uplink budget in bits per second.
    pub uplink_bps: u64,
}

/// Computes a floor from a raw kbps parameter.
pub fn cap(target_kbps: u64) -> u64 {
    let floor_bitrate: u64 = 64;
    target_kbps.max(floor_bitrate)
}
