//! Known-bad fixture: a panic two calls below the declared root. Exercises
//! the call-graph BFS — neither `middle` nor `leaf` carries a marker.

// sentinel: hot_path(fx-deep)
pub fn root(xs: &[u64]) -> u64 {
    middle(xs)
}

fn middle(xs: &[u64]) -> u64 {
    leaf(xs)
}

fn leaf(xs: &[u64]) -> u64 {
    xs[0]
}
