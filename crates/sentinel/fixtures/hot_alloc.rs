//! Known-bad fixture: allocations inside a hot cone.

// sentinel: hot_path(fx-alloc)
pub fn tick(xs: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    for &x in xs {
        out.push(x);
    }
    out
}
