//! Known-bad fixture: a metric recorded under a raw string name instead of
//! a `keys::` const.

/// Records one good and one bad metric.
pub fn record(t: &gso_telemetry::Telemetry) {
    t.incr(keys::GOOD_METRIC, "label");
    t.incr("raw.metric.name", "label");
}
