//! Property test for the split-brain safety kernel.
//!
//! The claim under test is the one §7 failover rests on: **at most one
//! shard per partition ever has a live epoch**. Whatever order lease
//! expiries, heartbeat arrivals (including lost, delayed, and replayed
//! ones), promotions, and writes from both sides interleave in, the
//! [`EpochLedger`] must never accept writes from two different shards at
//! the same epoch, liveness must only ever transfer forward in RFC 1982
//! serial order, and a fenced predecessor must stay fenced forever.

use gso_cluster::{EpochLedger, FailureDetector, LeaseConfig, ShardId};
use gso_util::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Serial (RFC 1982) "newer or equal" for u32 epochs, mirrored here so the
/// test does not trust the crate under test for its own oracle.
fn serial_ge(a: u32, b: u32) -> bool {
    a == b || ((a.wrapping_sub(b) as i32) > 0)
}

const ACTIVE: ShardId = ShardId(0);
const STANDBY: ShardId = ShardId(1);

/// One scripted step: advance the clock by `dt_ms`, then perform `op`.
///
/// * 0 — the active shard emits a heartbeat and it **arrives** at the
///   standby's detector.
/// * 1 — the active emits a heartbeat but the link eats it.
/// * 2 — a stale heartbeat (an old sequence number) is replayed at the
///   detector, as a reordering link would.
/// * 3 — the standby polls its detector; on expiry it promotes under a
///   serially bumped epoch and immediately records its first write.
/// * 4 — the (possibly zombie) active writes at its own epoch.
/// * 5 — the standby writes at its current epoch, if promoted.
fn run_case(steps: &[(u8, u64)], seed: u64) -> Result<(), String> {
    let mut detector = FailureDetector::new(
        LeaseConfig { lease: SimDuration::from_millis(700), jitter_frac: 0.2, seed },
        "s0",
    );
    detector.arm(SimTime::ZERO);
    let mut ledger = EpochLedger::new();

    let mut now = SimTime::ZERO;
    let mut hb_seq = 0u64;
    let mut delivered: Option<u64> = None;
    let active_epoch = 0u32;
    let mut standby_epoch: Option<u32> = None;
    let mut promotions = 0u32;
    // Every accepted write, in order: the history the invariants quantify
    // over ("ever", not just "currently").
    let mut accepted: Vec<(ShardId, u32)> = Vec::new();
    let mut owners: BTreeMap<u32, ShardId> = BTreeMap::new();

    // The active establishes itself before the chaos starts, exactly as a
    // booted conference does.
    prop_assert!(ledger.record_write(ACTIVE, active_epoch));
    accepted.push((ACTIVE, active_epoch));
    owners.insert(active_epoch, ACTIVE);

    for &(op, dt_ms) in steps {
        now += SimDuration::from_millis(dt_ms);
        match op % 6 {
            0 => {
                hb_seq += 1;
                if detector.heartbeat(now, active_epoch, hb_seq) {
                    delivered = Some(hb_seq);
                }
            }
            1 => hb_seq += 1, // emitted, never delivered
            2 => {
                // Replay of an already-delivered sequence (a duplicating
                // link): must never renew the lease.
                if let Some(seq) = delivered {
                    let before = detector.deadline();
                    prop_assert!(!detector.heartbeat(now, active_epoch, seq));
                    prop_assert_eq!(detector.deadline(), before);
                }
            }
            3 => {
                if detector.check_expired(now) {
                    let epoch = detector.last_epoch().wrapping_add(1);
                    standby_epoch = Some(epoch);
                    promotions += 1;
                    prop_assert!(
                        ledger.record_write(STANDBY, epoch),
                        "a serially bumped epoch must always be accepted"
                    );
                    accepted.push((STANDBY, epoch));
                    prop_assert!(
                        owners.insert(epoch, STANDBY).is_none(),
                        "promotion reused an epoch another shard owned"
                    );
                }
            }
            4 => {
                let ok = ledger.record_write(ACTIVE, active_epoch);
                prop_assert!(
                    ok == standby_epoch.is_none(),
                    "active writes are accepted exactly until the standby promotes"
                );
                if ok {
                    accepted.push((ACTIVE, active_epoch));
                }
            }
            _ => {
                if let Some(epoch) = standby_epoch {
                    prop_assert!(
                        ledger.record_write(STANDBY, epoch),
                        "the promoted standby is the live writer"
                    );
                    accepted.push((STANDBY, epoch));
                }
            }
        }

        // Invariants, checked at every interleaving point.
        prop_assert!(promotions <= 1, "the expiry latch must fire at most once");
        for window in accepted.windows(2) {
            prop_assert!(
                serial_ge(window[1].1, window[0].1),
                "accepted epochs went backwards: {:?}",
                window
            );
        }
        for (shard, epoch) in &accepted {
            prop_assert!(
                owners.get(epoch).copied().unwrap_or(*shard) == *shard,
                "two shards had accepted writes at epoch {epoch}"
            );
        }
        if let Some((live_shard, live_epoch)) = ledger.live() {
            let last = accepted.last().copied();
            prop_assert_eq!(last, Some((live_shard, live_epoch)));
        }
    }

    // Terminal check: if the standby ever promoted, the old active is
    // fenced for good — no late write can resurrect it.
    if standby_epoch.is_some() {
        prop_assert!(!ledger.record_write(ACTIVE, active_epoch));
        prop_assert!(ledger.fenced() >= 1);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random interleavings of heartbeat delivery/loss/replay, expiry
    /// polls, and writes from both shards: the fencing invariants hold at
    /// every step.
    #[test]
    fn at_most_one_live_epoch_per_partition(
        steps in prop::collection::vec((0u8..6, 0u64..400), 10..120),
        seed in 0u64..1_000,
    ) {
        run_case(&steps, seed)?;
    }

    /// Heartbeat-heavy interleavings (the lease mostly renews, expiry
    /// races the last delivery): promotion is still exclusive and ordered.
    #[test]
    fn expiry_racing_heartbeats_stays_safe(
        mut steps in prop::collection::vec((0u8..6, 0u64..150), 20..80),
        seed in 0u64..1_000,
    ) {
        // Bias towards the contested region: alternate polls into the
        // stream so expiry is checked between almost every delivery.
        for (i, step) in steps.iter_mut().enumerate() {
            if i % 2 == 0 {
                step.0 = 3;
            }
        }
        run_case(&steps, seed)?;
    }
}
