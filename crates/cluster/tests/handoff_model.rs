//! Miri model of the shard→standby handoff handshake.
//!
//! The `model_*` tests replicate the exact message shape of the failover
//! path — the active shard streaming [`SnapshotDelta`]s to its standby,
//! the standby answering gaps with a NACK that triggers a full resend, and
//! the epoch-fenced write ledger two writers race after a partition — as
//! real cross-thread communication on small, pure data. They run in
//! seconds under Miri (`cargo miri test -p gso-cluster --test
//! handoff_model model_`), which checks the pattern for undefined
//! behaviour and data races; the simulation then drives the same
//! publisher/replica/ledger types over lossy links in `gso-sim` and
//! `gso-chaos`.

use gso_algo::{Ladder, Resolution, SourceId, StreamSpec};
use gso_cluster::StandbyReplica;
use gso_cluster::{ApplyOutcome, EpochLedger, ShardId, SnapshotDelta, SnapshotPublisher};
use gso_control::{ClientSnapshot, SubscribeIntent};
use gso_util::{Bitrate, ClientId, StreamKind};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};

/// A small but realistic per-client snapshot: one video ladder, one
/// intent, tick-varying link estimates.
fn snap(id: u32, uplink_kbps: u64) -> ClientSnapshot {
    let ladder = Ladder::new(vec![
        StreamSpec::new(Resolution::R180, Bitrate::from_kbps(100), 100.0),
        StreamSpec::new(Resolution::R720, Bitrate::from_kbps(1500), 1200.0),
    ])
    .unwrap();
    ClientSnapshot {
        client: ClientId(id),
        ladders: vec![(StreamKind::Video, ladder)],
        intents: vec![SubscribeIntent {
            source: SourceId::video(ClientId(id % 3 + 1)),
            max_resolution: Resolution::R720,
            tag: 0,
        }],
        uplink: Bitrate::from_kbps(uplink_kbps),
        downlink: Bitrate::from_kbps(uplink_kbps * 2),
    }
}

/// The conference state at solving tick `tick`: three clients whose
/// uplink estimates move every tick, so every tick emits a delta.
fn state_at(tick: u64) -> Vec<ClientSnapshot> {
    (1..=3).map(|id| snap(id, 1_000 + 10 * tick + u64::from(id))).collect()
}

/// What the wire delivers to the standby each tick.
enum ToStandby {
    /// A replication delta that survived the link.
    Delta(SnapshotDelta),
    /// The link ate this tick's delta (the publisher thinks it shipped).
    Lost,
    /// The active shard dies; the standby must promote.
    Crash,
}

/// The standby's per-message reply: `true` when it detected a gap and
/// needs a full snapshot.
struct Reply {
    nacked: bool,
}

/// Two threads run the real handoff handshake in lockstep: the active
/// publishes one bounded delta per tick, two of which the "wire" drops;
/// the standby detects each gap (sequence mismatch against the digest-
/// covered stream), NACKs, and the active answers with a full snapshot.
/// After the crash the standby's rebuilt state must equal the last state
/// the active ever published — the exact guarantee a promoted shard needs.
#[test]
fn model_handoff_handshake_recovers_from_losses() {
    const TICKS: u64 = 8;
    const EPOCH: u32 = 0;
    // Publisher sequences the wire eats: tick 2's delta (seq 3) and tick
    // 5's (seq 7, after the seq-5 full resend shifted the numbering).
    const LOST: [u64; 2] = [3, 7];

    let (delta_tx, delta_rx) = channel::<ToStandby>();
    let (reply_tx, reply_rx) = channel::<Reply>();

    std::thread::scope(|s| {
        // Active shard.
        s.spawn(move || {
            let mut publisher = SnapshotPublisher::new(64);
            for tick in 0..TICKS {
                let state = state_at(tick);
                let delta = publisher.tick(EPOCH, &state).expect("state moves every tick");
                let lost = LOST.contains(&delta.seq);
                delta_tx
                    .send(if lost { ToStandby::Lost } else { ToStandby::Delta(delta) })
                    .unwrap();
                let reply = reply_rx.recv().unwrap();
                if reply.nacked {
                    // The §7 handshake: gap answer → full resend.
                    publisher.request_full();
                    let full = publisher.tick(EPOCH, &state).expect("full resend");
                    assert!(full.is_full());
                    delta_tx.send(ToStandby::Delta(full)).unwrap();
                    assert!(!reply_rx.recv().unwrap().nacked, "full snapshot always lands");
                }
            }
            delta_tx.send(ToStandby::Crash).unwrap();
        });

        // Standby shard.
        let standby = s.spawn(move || {
            let mut replica = StandbyReplica::new("s0");
            let mut nacks = 0u32;
            loop {
                match delta_rx.recv().unwrap() {
                    ToStandby::Delta(delta) => {
                        let nacked = match replica.apply(&delta) {
                            ApplyOutcome::Applied => false,
                            ApplyOutcome::NeedFull => {
                                nacks += 1;
                                true
                            }
                            ApplyOutcome::Stale => panic!("no zombie in this model"),
                        };
                        reply_tx.send(Reply { nacked }).unwrap();
                    }
                    ToStandby::Lost => reply_tx.send(Reply { nacked: false }).unwrap(),
                    ToStandby::Crash => break,
                }
            }
            // The replica itself holds a (single-threaded) telemetry
            // handle, so hand back only the rebuilt state.
            (replica.snapshots(), nacks)
        });

        let (rebuilt, nacks) = standby.join().unwrap();
        // Promotion: the rebuilt client set is exactly the active's final
        // published state, despite two dropped deltas mid-stream.
        assert_eq!(rebuilt, state_at(TICKS - 1));
        assert_eq!(nacks, 2, "each loss surfaced as exactly one gap NACK");
    });
}

/// A zombie shard and its promoted successor hammer the shared epoch
/// ledger from two threads. Every acceptance is logged atomically with the
/// write itself; the log must show the split-brain invariants: the zombie
/// is never accepted after the successor's first write, and no epoch is
/// ever owned by both shards.
#[test]
fn model_fencing_race_never_accepts_zombie_after_takeover() {
    const ZOMBIE: ShardId = ShardId(0);
    const PROMOTED: ShardId = ShardId(1);
    let ledger = Arc::new(Mutex::new((EpochLedger::new(), Vec::<(ShardId, u32)>::new())));

    std::thread::scope(|s| {
        for (shard, epoch, writes) in [(ZOMBIE, 0u32, 40u32), (PROMOTED, 1, 40)] {
            let ledger = Arc::clone(&ledger);
            s.spawn(move || {
                for _ in 0..writes {
                    let mut guard = ledger.lock().unwrap();
                    let (ledger, log) = &mut *guard;
                    if ledger.record_write(shard, epoch) {
                        log.push((shard, epoch));
                    }
                }
            });
        }
    });

    let guard = ledger.lock().unwrap();
    let (ledger, log) = &*guard;
    // The promoted shard's epoch-1 writes always win; at least one landed.
    assert_eq!(ledger.live(), Some((PROMOTED, 1)));
    let takeover = log
        .iter()
        .position(|&(s, _)| s == PROMOTED)
        .expect("the promoted shard wrote at least once");
    assert!(
        log[takeover..].iter().all(|&(s, _)| s == PROMOTED),
        "a zombie write was accepted after the takeover: {log:?}"
    );
    for &(shard, epoch) in log {
        let owner = if epoch == 0 { ZOMBIE } else { PROMOTED };
        assert_eq!(shard, owner, "epoch {epoch} accepted from two shards");
    }
    // Whatever the interleaving, every zombie attempt after the takeover
    // was fenced.
    let zombie_accepted = log.iter().filter(|&&(s, _)| s == ZOMBIE).count() as u64;
    assert_eq!(ledger.fenced(), 40 - zombie_accepted);
}
