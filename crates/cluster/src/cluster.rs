//! The sharded controller cluster: partitioned fleets, standby promotion,
//! and the epoch ledger that makes split-brain writes impossible.
//!
//! Each [`Shard`] owns a partition of conferences inside one
//! [`ControllerFleet`] and streams per-conference [`SnapshotDelta`]s to its
//! standby every solving tick. A [`FailureDetector`] watches the shard's
//! heartbeats; on lease expiry the standby is promoted under a bumped
//! epoch (RFC 1982 serial order) and rebuilds every controller from its
//! replicas. The [`EpochLedger`] is the write-side fence: downstream state
//! (access nodes, in the full simulation) accepts a write only if the
//! ledger does, so a zombie shard that survives a network partition can
//! never land a stale GsoTmmbr/GTMB on the conference.

use crate::lease::{FailureDetector, LeaseConfig};
use crate::replica::{ApplyOutcome, SnapshotPublisher, StandbyReplica};
use gso_algo::BatchConfig;
use gso_control::{ControllerConfig, ControllerFleet, FleetTick, GsoController};
use gso_detguard::{StableHasher, StateDigest};
use gso_rtp::epoch_newer;
use gso_telemetry::{keys, Telemetry};
use gso_util::{SimTime, Ssrc};

/// Identifies one shard (one partition of conferences).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl StateDigest for ShardId {
    fn digest(&self, h: &mut StableHasher) {
        self.0.digest(h);
    }
}

/// Per-partition record of which `(shard, epoch)` is allowed to write.
///
/// The safety kernel of split-brain fencing: a write is accepted iff it
/// carries the live epoch from the live shard, or a strictly newer epoch
/// (which atomically transfers liveness to the writer). Two shards can
/// therefore never both have accepted writes at the same epoch, and once
/// a successor's epoch is seen, every write from the fenced predecessor
/// is rejected forever (RFC 1982 ordering, so u32 wraparound is safe).
#[derive(Debug, Default)]
pub struct EpochLedger {
    live: Option<(ShardId, u32)>,
    fenced: u64,
}

impl EpochLedger {
    /// A ledger that has seen no writer yet.
    pub fn new() -> Self {
        EpochLedger::default()
    }

    /// Attempt a write from `shard` at `epoch`. Returns `true` when the
    /// write is accepted (and `shard` becomes/stays the live writer),
    /// `false` when it is fenced off.
    ///
    /// This is the takeover hot path: every conference write crosses it,
    /// and a promotion transfers liveness through it, so it must stay
    /// allocation-free and panic-free. (The one-shot controller *rebuild*
    /// in `promote` allocates by design and is deliberately not a
    /// sentinel cone.)
    // sentinel: hot_path(shard-takeover)
    pub fn record_write(&mut self, shard: ShardId, epoch: u32) -> bool {
        match self.live {
            None => {
                self.live = Some((shard, epoch));
                true
            }
            Some((live_shard, live_epoch)) => {
                if epoch_newer(epoch, live_epoch) {
                    self.live = Some((shard, epoch));
                    true
                } else if epoch == live_epoch && shard == live_shard {
                    true
                } else {
                    self.fenced += 1;
                    false
                }
            }
        }
    }

    /// Is `(shard, epoch)` the current live writer?
    pub fn is_live(&self, shard: ShardId, epoch: u32) -> bool {
        self.live == Some((shard, epoch))
    }

    /// The current live writer, if any write has ever been accepted.
    pub fn live(&self) -> Option<(ShardId, u32)> {
        self.live
    }

    /// How many writes this ledger has fenced off.
    pub fn fenced(&self) -> u64 {
        self.fenced
    }
}

impl StateDigest for EpochLedger {
    fn digest(&self, h: &mut StableHasher) {
        match self.live {
            None => h.write_u8(0),
            Some((s, e)) => {
                h.write_u8(1);
                s.digest(h);
                e.digest(h);
            }
        }
        self.fenced.digest(h);
    }
}

/// Cluster-wide policy.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Batch workers per shard fleet.
    pub workers: usize,
    /// Controller policy for every conference.
    pub ctrl: ControllerConfig,
    /// Failure-detector policy for every standby.
    pub lease: LeaseConfig,
    /// Change-entry budget per replication delta.
    pub max_delta_changes: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 1,
            ctrl: ControllerConfig::paper_defaults(),
            lease: LeaseConfig::default(),
            max_delta_changes: 64,
        }
    }
}

/// The standby half of a shard: replicas mirroring each conference plus
/// the failure detector watching the active's heartbeats.
#[derive(Debug)]
struct Standby {
    detector: FailureDetector,
    replicas: Vec<StandbyReplica>,
}

/// One shard: an active fleet owning a partition of conferences, paired
/// with a standby fed by per-conference snapshot deltas.
struct Shard {
    id: ShardId,
    fleet: ControllerFleet,
    epoch: u32,
    alive: bool,
    hb_seq: u64,
    publishers: Vec<SnapshotPublisher>,
    standby: Standby,
    /// Set at promotion; cleared when the promoted fleet first solves.
    promoted_at: Option<SimTime>,
}

/// A sharded controller cluster with standby failover and write fencing.
pub struct ControllerCluster {
    cfg: ClusterConfig,
    shards: Vec<Shard>,
    ledgers: Vec<EpochLedger>,
    telemetry: Telemetry,
}

impl ControllerCluster {
    /// A cluster of `shards` empty shards.
    pub fn new(shards: u32, cfg: ClusterConfig) -> Self {
        let shards = (0..shards)
            .map(|i| {
                let id = ShardId(i);
                let mut lease = cfg.lease.clone();
                // Each standby jitters from its own stream so colocated
                // expirations never collide on one instant.
                lease.seed = lease.seed.wrapping_add(u64::from(i));
                let mut detector = FailureDetector::new(lease, id.to_string());
                detector.arm(SimTime::ZERO);
                Shard {
                    id,
                    fleet: ControllerFleet::new(&BatchConfig { workers: cfg.workers }),
                    epoch: 0,
                    alive: true,
                    hb_seq: 0,
                    publishers: Vec::new(),
                    standby: Standby { detector, replicas: Vec::new() },
                    promoted_at: None,
                }
            })
            .collect::<Vec<_>>();
        let ledgers = shards.iter().map(|_| EpochLedger::new()).collect();
        ControllerCluster { cfg, shards, ledgers, telemetry: Telemetry::disabled() }
    }

    /// Attach a metrics registry, propagated to fleets, detectors, and
    /// replicas.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for shard in &mut self.shards {
            shard.fleet.set_telemetry(telemetry.clone());
            shard.standby.detector.set_telemetry(telemetry.clone());
            for r in &mut shard.standby.replicas {
                r.set_telemetry(telemetry.clone());
            }
        }
        self.telemetry = telemetry;
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a conference keyed by `key` lands on (stable hash).
    pub fn shard_of(&self, key: u64) -> ShardId {
        let mut h = StableHasher::new();
        h.write_u64(key);
        ShardId((h.finish() % self.shards.len() as u64) as u32)
    }

    /// Add a conference to `shard`'s partition. Returns the conference
    /// index within the shard.
    pub fn push(&mut self, shard: ShardId, mut controller: GsoController) -> usize {
        let s = &mut self.shards[shard.0 as usize];
        controller.set_epoch(s.epoch);
        controller.set_telemetry(self.telemetry.clone());
        let idx = s.fleet.push(controller);
        s.publishers.push(SnapshotPublisher::new(self.cfg.max_delta_changes));
        let mut replica = StandbyReplica::new(shard.to_string());
        replica.set_telemetry(self.telemetry.clone());
        s.standby.replicas.push(replica);
        idx
    }

    /// Mutable access to one conference's controller (e.g. to feed joins
    /// and reports).
    pub fn controller_mut(&mut self, shard: ShardId, conf: usize) -> Option<&mut GsoController> {
        let s = self.shards.get_mut(shard.0 as usize)?;
        if s.alive {
            s.fleet.get_mut(conf)
        } else {
            None
        }
    }

    /// Current epoch of `shard`.
    pub fn epoch(&self, shard: ShardId) -> u32 {
        self.shards[shard.0 as usize].epoch
    }

    /// Is `shard` alive (not crashed, or already re-promoted)?
    pub fn is_alive(&self, shard: ShardId) -> bool {
        self.shards[shard.0 as usize].alive
    }

    /// Kill a shard: it stops ticking, solving, and heartbeating, exactly
    /// as if the process died. Its standby takes over once the lease runs
    /// out.
    pub fn crash(&mut self, shard: ShardId) {
        self.shards[shard.0 as usize].alive = false;
    }

    /// Tick every live shard's fleet, then replicate each conference's
    /// post-tick state to the standby and renew the lease with a
    /// heartbeat. Returns per-shard fleet outputs.
    pub fn tick_all(&mut self, now: SimTime) -> Vec<(ShardId, Vec<FleetTick>)> {
        let mut out = Vec::new();
        for shard in &mut self.shards {
            if !shard.alive {
                continue;
            }
            let ticks = shard.fleet.tick_all(now);
            shard.hb_seq += 1;
            // Replicate: one delta per conference, applied to the paired
            // replica. A gap answer triggers an immediate full resend —
            // in-process replication cannot drop packets, but the same
            // publisher/replica pair is driven over lossy links by the
            // simulation, where this path earns its keep.
            for (conf, publisher) in shard.publishers.iter_mut().enumerate() {
                let Some(controller) = shard.fleet.get_mut(conf) else { continue };
                let snapshot = controller.picture.snapshot();
                if let Some(delta) = publisher.tick(shard.epoch, &snapshot) {
                    self.telemetry.add(
                        keys::CLUSTER_REPLICATION_BYTES,
                        shard.id.to_string(),
                        delta_cost(&delta),
                    );
                    if shard.standby.replicas[conf].apply(&delta) == ApplyOutcome::NeedFull {
                        publisher.request_full();
                        if let Some(full) = publisher.tick(shard.epoch, &snapshot) {
                            shard.standby.replicas[conf].apply(&full);
                        }
                    }
                }
            }
            shard.standby.detector.heartbeat(now, shard.epoch, shard.hb_seq);
            out.push((shard.id, ticks));
        }
        out
    }

    /// Poll every standby's failure detector; promote on expiry. Returns
    /// the shards promoted this call.
    pub fn check_failover(&mut self, now: SimTime) -> Vec<ShardId> {
        let mut promoted = Vec::new();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if !shard.standby.detector.check_expired(now) {
                continue;
            }
            promote(shard, &self.cfg, &self.telemetry, now);
            // The promotion is only legitimate if the ledger accepts the
            // bumped epoch — it always does (serially newer than anything
            // the dead shard wrote), and recording it here is what fences
            // the zombie.
            let accepted = self.ledgers[i].record_write(shard.id, shard.epoch);
            debug_assert!(accepted, "a serially bumped epoch is always newer");
            promoted.push(shard.id);
        }
        promoted
    }

    /// Attempt a conference write (GsoTmmbr/GTMB push) from `shard` at
    /// `epoch` against its partition's ledger. Fenced writes bump the
    /// `cluster.fenced` counter.
    pub fn record_write(&mut self, shard: ShardId, epoch: u32) -> bool {
        let ok = self.ledgers[shard.0 as usize].record_write(shard, epoch);
        if !ok {
            self.telemetry.incr(keys::CLUSTER_FENCED, shard.to_string());
        }
        ok
    }

    /// The partition ledger for `shard`.
    pub fn ledger(&self, shard: ShardId) -> &EpochLedger {
        &self.ledgers[shard.0 as usize]
    }

    /// Close a promoted shard's takeover window: record the elapsed time
    /// into the recovery histogram once its fleet produces a real (non
    /// fallback) solution. The simulation calls this after each tick.
    pub fn observe_takeovers(&mut self, now: SimTime) {
        for shard in &mut self.shards {
            let Some(since) = shard.promoted_at else { continue };
            let solved = shard
                .fleet
                .controllers()
                .iter()
                .all(|c| c.last_solution().is_some() && !c.fallback_active());
            if solved {
                shard.promoted_at = None;
                let elapsed = now.saturating_since(since).as_millis();
                self.telemetry.observe(
                    keys::CLUSTER_TAKEOVER_MS,
                    "takeover",
                    elapsed,
                    keys::RECOVERY_MS_BOUNDS,
                );
            }
        }
    }

    /// Stable digest over shard epochs, fleets, replicas, detectors, and
    /// ledgers.
    pub fn state_digest(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_len(self.shards.len());
        for shard in &self.shards {
            shard.id.digest(&mut h);
            shard.epoch.digest(&mut h);
            shard.alive.digest(&mut h);
            shard.hb_seq.digest(&mut h);
            h.write_u64(shard.fleet.state_digest());
            shard.standby.detector.digest(&mut h);
            for r in &shard.standby.replicas {
                r.digest(&mut h);
            }
        }
        for ledger in &self.ledgers {
            ledger.digest(&mut h);
        }
        h.finish()
    }
}

/// Approximate wire cost of a delta, for the replication-bytes counter:
/// per-client snapshot bodies dominate, headers are a fixed overhead.
fn delta_cost(delta: &crate::replica::SnapshotDelta) -> u64 {
    let mut bytes = 29; // epoch + base_seq + seq + digest + counts
    for c in &delta.changed {
        bytes += 24; // client id + uplink + downlink + vec headers
        for (_, ladder) in &c.ladders {
            bytes += 3 + 19 * ladder.specs().len() as u64;
        }
        bytes += 8 * c.intents.len() as u64;
    }
    bytes + 4 * delta.removed.len() as u64
}

/// Promote `shard`'s standby: bump the epoch serially past everything the
/// dead active ever heartbeat, rebuild every conference controller from
/// the standby replicas, and swap the rebuilt fleet in as the new active.
fn promote(shard: &mut Shard, cfg: &ClusterConfig, telemetry: &Telemetry, now: SimTime) {
    let new_epoch = shard.standby.detector.last_epoch().wrapping_add(1);
    let mut fleet = ControllerFleet::new(&BatchConfig { workers: cfg.workers });
    fleet.set_telemetry(telemetry.clone());
    let mut publishers = Vec::new();
    for replica in &shard.standby.replicas {
        let mut controller = GsoController::new(cfg.ctrl.clone(), Ssrc(0xC0DE));
        controller.set_telemetry(telemetry.clone());
        controller.set_epoch(new_epoch);
        for snap in replica.snapshots() {
            controller.on_join(snap.client, gso_control::CodecCapability { ladders: snap.ladders });
            controller.on_subscriptions(snap.client, snap.intents);
            if !snap.uplink.is_zero() {
                controller.on_uplink_report(now, snap.client, snap.uplink);
            }
            if !snap.downlink.is_zero() {
                controller.on_downlink_report(now, snap.client, snap.downlink);
            }
        }
        fleet.push(controller);
        // The promoted shard's first delta to its (fresh) standby is a
        // full snapshot.
        publishers.push(SnapshotPublisher::new(cfg.max_delta_changes));
    }
    shard.fleet = fleet;
    shard.epoch = new_epoch;
    shard.alive = true;
    shard.hb_seq = 0;
    shard.publishers = publishers;
    shard.promoted_at = Some(now);
    // Fresh standby: empty replicas, re-armed detector watching the
    // promoted shard.
    let mut lease = cfg.lease.clone();
    lease.seed = lease.seed.wrapping_add(u64::from(shard.id.0)).wrapping_add(u64::from(new_epoch));
    let mut detector = FailureDetector::new(lease, shard.id.to_string());
    detector.set_telemetry(telemetry.clone());
    detector.arm(now);
    let replicas = shard
        .standby
        .replicas
        .iter()
        .map(|_| {
            let mut r = StandbyReplica::new(shard.id.to_string());
            r.set_telemetry(telemetry.clone());
            r
        })
        .collect();
    shard.standby = Standby { detector, replicas };
    telemetry.incr(keys::CLUSTER_PROMOTIONS, shard.id.to_string());
    telemetry.event(now, keys::EV_CLUSTER_PROMOTED, shard.id.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;
    use gso_algo::{Ladder, Resolution, SourceId, StreamSpec};
    use gso_control::{CodecCapability, SubscribeIntent};
    use gso_util::{Bitrate, ClientId, StreamKind};

    fn ladder() -> Ladder {
        Ladder::new(vec![
            StreamSpec::new(Resolution::R180, Bitrate::from_kbps(100), 100.0),
            StreamSpec::new(Resolution::R360, Bitrate::from_kbps(600), 530.0),
            StreamSpec::new(Resolution::R720, Bitrate::from_kbps(1500), 1200.0),
        ])
        .unwrap()
    }

    fn populate(cluster: &mut ControllerCluster, shard: ShardId, clients: u32) -> usize {
        let conf = cluster
            .push(shard, GsoController::new(ControllerConfig::paper_defaults(), Ssrc(0xC0DE)));
        let c = cluster.controller_mut(shard, conf).unwrap();
        for i in 0..clients {
            let id = ClientId(i + 1);
            c.on_join(id, CodecCapability { ladders: vec![(StreamKind::Video, ladder())] });
            let intents = (0..clients)
                .filter(|&j| j != i)
                .map(|j| SubscribeIntent {
                    source: SourceId::video(ClientId(j + 1)),
                    max_resolution: Resolution::R720,
                    tag: 0,
                })
                .collect();
            c.on_subscriptions(id, intents);
            c.on_uplink_report(SimTime::ZERO, id, Bitrate::from_mbps(6));
            c.on_downlink_report(SimTime::ZERO, id, Bitrate::from_mbps(10));
        }
        conf
    }

    fn run(cluster: &mut ControllerCluster, from_ms: u64, to_ms: u64) {
        let mut t = from_ms;
        while t <= to_ms {
            let now = SimTime::from_millis(t);
            cluster.tick_all(now);
            cluster.check_failover(now);
            cluster.observe_takeovers(now);
            t += 100;
        }
    }

    #[test]
    fn crash_promotes_standby_with_replicated_state() {
        let mut cluster = ControllerCluster::new(1, ClusterConfig::default());
        let conf = populate(&mut cluster, ShardId(0), 3);
        run(&mut cluster, 0, 2_000);
        assert_eq!(cluster.epoch(ShardId(0)), 0);

        cluster.crash(ShardId(0));
        assert!(cluster.controller_mut(ShardId(0), conf).is_none(), "dead shard unreachable");
        run(&mut cluster, 2_100, 4_000);

        // Promoted under a bumped epoch, state rebuilt from the replica.
        assert!(cluster.is_alive(ShardId(0)));
        assert_eq!(cluster.epoch(ShardId(0)), 1);
        let c = cluster.controller_mut(ShardId(0), conf).expect("promoted shard serves again");
        assert_eq!(c.picture.snapshot().len(), 3, "all clients survived the failover");
        assert!(c.last_solution().is_some(), "promoted controller solves");
        assert!(!c.fallback_active());
        assert_eq!(cluster.ledger(ShardId(0)).live(), Some((ShardId(0), 1)));
    }

    #[test]
    fn takeover_happens_within_recovery_bound() {
        let telemetry = Telemetry::new("cluster-test");
        let mut cluster = ControllerCluster::new(1, ClusterConfig::default());
        cluster.set_telemetry(telemetry.clone());
        populate(&mut cluster, ShardId(0), 3);
        run(&mut cluster, 0, 2_000);
        cluster.crash(ShardId(0));
        run(&mut cluster, 2_100, 8_000);

        assert_eq!(telemetry.counter_total(keys::CLUSTER_PROMOTIONS), 1);
        let hist = telemetry
            .histogram(keys::CLUSTER_TAKEOVER_MS, "takeover")
            .expect("takeover window observed");
        assert_eq!(hist.total, 1);
        // RECOVERY_MS_BOUNDS: every sample must land in a bucket with an
        // upper bound <= 5000 ms (the §7 recovery requirement).
        let cutoff = keys::RECOVERY_MS_BOUNDS.partition_point(|&b| b <= 5_000);
        let above: u64 = hist.counts[cutoff..].iter().sum();
        assert_eq!(above, 0, "takeover breached the 5 s §7 bound");
        assert!(hist.sum <= 5_000, "single takeover sample within bound");
    }

    #[test]
    fn zombie_writes_fenced_after_promotion() {
        let mut cluster = ControllerCluster::new(1, ClusterConfig::default());
        let telemetry = Telemetry::new("cluster-test");
        cluster.set_telemetry(telemetry.clone());
        populate(&mut cluster, ShardId(0), 2);
        run(&mut cluster, 0, 1_000);
        // The active establishes itself as the live writer at epoch 0.
        assert!(cluster.record_write(ShardId(0), 0));

        cluster.crash(ShardId(0));
        run(&mut cluster, 1_100, 3_000);
        assert_eq!(cluster.epoch(ShardId(0)), 1);

        // The zombie (partitioned old active) keeps trying at epoch 0.
        assert!(!cluster.record_write(ShardId(0), 0), "stale epoch fenced");
        assert!(cluster.record_write(ShardId(0), 1), "live epoch accepted");
        assert_eq!(cluster.ledger(ShardId(0)).fenced(), 1);
        assert_eq!(telemetry.counter_total(keys::CLUSTER_FENCED), 1);
    }

    #[test]
    fn ledger_orders_epochs_serially_across_wrap() {
        let mut ledger = EpochLedger::new();
        assert!(ledger.record_write(ShardId(0), u32::MAX - 1));
        assert!(ledger.record_write(ShardId(1), u32::MAX), "newer epoch transfers liveness");
        assert!(!ledger.record_write(ShardId(0), u32::MAX - 1), "fenced predecessor");
        assert!(ledger.record_write(ShardId(0), 0), "wrapped epoch is serially newer");
        assert!(!ledger.record_write(ShardId(1), u32::MAX));
        assert!(!ledger.record_write(ShardId(1), 0), "same epoch, different shard: fenced");
        assert_eq!(ledger.live(), Some((ShardId(0), 0)));
        assert_eq!(ledger.fenced(), 3);
    }

    #[test]
    fn multi_shard_failover_is_independent_and_deterministic() {
        let build = || {
            let mut cluster = ControllerCluster::new(2, ClusterConfig::default());
            populate(&mut cluster, ShardId(0), 2);
            populate(&mut cluster, ShardId(1), 3);
            run(&mut cluster, 0, 1_500);
            cluster.crash(ShardId(0));
            run(&mut cluster, 1_600, 4_000);
            cluster
        };
        let a = build();
        assert_eq!(a.epoch(ShardId(0)), 1, "crashed shard failed over");
        assert_eq!(a.epoch(ShardId(1)), 0, "healthy shard untouched");
        assert!(a.is_alive(ShardId(1)));
        assert_eq!(a.state_digest(), build().state_digest(), "failover replays bit-identically");
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let cluster = ControllerCluster::new(4, ClusterConfig::default());
        for key in 0..64u64 {
            let s = cluster.shard_of(key);
            assert!(s.0 < 4);
            assert_eq!(s, cluster.shard_of(key));
        }
    }
}
