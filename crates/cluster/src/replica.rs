//! Delta replication of controller state from an active shard to its
//! standby.
//!
//! Each solving tick the active shard diffs its current
//! [`ClientSnapshot`] set against what it last shipped and emits a bounded
//! [`SnapshotDelta`] — changed clients, removed clients, and a digest of
//! the *post-apply* state so the standby can detect divergence from lost,
//! truncated, or reordered deltas. The standby's [`StandbyReplica`] applies
//! deltas in sequence; any gap or digest mismatch makes it request a full
//! snapshot (`base_seq == 0`) instead of silently drifting, because a
//! promoted standby rebuilds the controller's global picture from exactly
//! this replica.

use gso_control::ClientSnapshot;
use gso_detguard::{StableHasher, StateDigest};
use gso_telemetry::{keys, Telemetry};
use gso_util::ClientId;
use std::collections::BTreeMap;

/// One replication message: apply on top of `base_seq` to reach `seq`.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDelta {
    /// Epoch of the publishing shard (fencing: replicas ignore deltas from
    /// epochs older than what they have already accepted).
    pub epoch: u32,
    /// Sequence this delta applies on top of. `0` marks a full snapshot:
    /// `changed` is the entire client set and `removed` is empty.
    pub base_seq: u64,
    /// Sequence reached after applying this delta.
    pub seq: u64,
    /// Clients added or modified since `base_seq`.
    pub changed: Vec<ClientSnapshot>,
    /// Clients that left since `base_seq`.
    pub removed: Vec<ClientId>,
    /// Stable digest of the publisher's full client map *after* this
    /// delta; the replica verifies its own post-apply state against it.
    pub digest: u64,
}

impl SnapshotDelta {
    /// True for a full-state snapshot (`base_seq == 0`).
    pub fn is_full(&self) -> bool {
        self.base_seq == 0
    }
}

impl StateDigest for SnapshotDelta {
    fn digest(&self, h: &mut StableHasher) {
        self.epoch.digest(h);
        self.base_seq.digest(h);
        self.seq.digest(h);
        self.changed.digest(h);
        self.removed.digest(h);
        self.digest.digest(h);
    }
}

fn full_digest(clients: &BTreeMap<ClientId, ClientSnapshot>) -> u64 {
    clients.state_digest()
}

/// Active-shard side: diffs successive snapshot sets into bounded deltas.
#[derive(Debug)]
pub struct SnapshotPublisher {
    seq: u64,
    last: BTreeMap<ClientId, ClientSnapshot>,
    /// Next emission must be a full snapshot (first tick, or after the
    /// standby reported a gap / digest mismatch).
    pending_full: bool,
    /// Change-entry budget per delta (changed + removed); excess spills to
    /// the next tick so one delta never balloons past the wire budget.
    max_changes: usize,
}

impl SnapshotPublisher {
    /// A publisher emitting at most `max_changes` change entries per delta.
    pub fn new(max_changes: usize) -> Self {
        SnapshotPublisher {
            seq: 0,
            last: BTreeMap::new(),
            pending_full: true,
            max_changes: max_changes.max(1),
        }
    }

    /// Sequence of the last emitted delta.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Force the next emission to be a full snapshot (standby reported a
    /// gap, or a fresh standby attached).
    pub fn request_full(&mut self) {
        self.pending_full = true;
    }

    /// Diff `current` against the last shipped state. Returns `None` when
    /// nothing changed (and no full snapshot is pending); otherwise one
    /// bounded delta, with any overflow deferred to the next tick.
    pub fn tick(&mut self, epoch: u32, current: &[ClientSnapshot]) -> Option<SnapshotDelta> {
        let current: BTreeMap<ClientId, ClientSnapshot> =
            current.iter().map(|c| (c.client, c.clone())).collect();

        if self.pending_full {
            self.pending_full = false;
            self.last = current;
            self.seq += 1;
            return Some(SnapshotDelta {
                epoch,
                base_seq: 0,
                seq: self.seq,
                changed: self.last.values().cloned().collect(),
                removed: Vec::new(),
                digest: full_digest(&self.last),
            });
        }

        let mut changed = Vec::new();
        let mut removed = Vec::new();
        let mut budget = self.max_changes;
        // BTreeMap iteration makes the diff order (and thus the spill
        // schedule) deterministic.
        for (id, snap) in &current {
            if budget == 0 {
                break;
            }
            if self.last.get(id) != Some(snap) {
                changed.push(snap.clone());
                budget -= 1;
            }
        }
        for id in self.last.keys() {
            if budget == 0 {
                break;
            }
            if !current.contains_key(id) {
                removed.push(*id);
                budget -= 1;
            }
        }
        if changed.is_empty() && removed.is_empty() {
            return None;
        }
        // Commit only what this delta carries; leftovers re-diff next tick.
        for snap in &changed {
            self.last.insert(snap.client, snap.clone());
        }
        for id in &removed {
            self.last.remove(id);
        }
        let base_seq = self.seq;
        self.seq += 1;
        Some(SnapshotDelta {
            epoch,
            base_seq,
            seq: self.seq,
            changed,
            removed,
            digest: full_digest(&self.last),
        })
    }
}

/// Result of applying one delta to a [`StandbyReplica`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// Delta accepted; replica advanced to its sequence.
    Applied,
    /// Stale-epoch delta from a fenced publisher; dropped.
    Stale,
    /// Sequence gap or digest mismatch — the replica rolled the delta back
    /// and the caller must ask the publisher for a full snapshot.
    NeedFull,
}

/// Standby-side mirror of the active shard's client state.
#[derive(Debug)]
pub struct StandbyReplica {
    label: String,
    seq: u64,
    epoch: u32,
    clients: BTreeMap<ClientId, ClientSnapshot>,
    telemetry: Telemetry,
}

impl StandbyReplica {
    /// An empty replica for the shard named `label` (telemetry label).
    pub fn new(label: impl Into<String>) -> Self {
        StandbyReplica {
            label: label.into(),
            seq: 0,
            epoch: 0,
            clients: BTreeMap::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a metrics registry (replication-gap counter).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Sequence of the last applied delta.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Epoch of the publisher this replica last accepted state from.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Number of mirrored clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// True when no client state has been replicated yet.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Apply one delta. Full snapshots always reset the replica; partial
    /// deltas must extend the current sequence exactly and reproduce the
    /// publisher's post-apply digest, otherwise the replica reports
    /// [`ApplyOutcome::NeedFull`] without mutating its state.
    pub fn apply(&mut self, delta: &SnapshotDelta) -> ApplyOutcome {
        use gso_rtp::epoch_newer;
        if epoch_newer(self.epoch, delta.epoch) {
            return ApplyOutcome::Stale;
        }
        if delta.is_full() {
            self.clients = delta.changed.iter().map(|c| (c.client, c.clone())).collect();
            self.seq = delta.seq;
            self.epoch = delta.epoch;
            if full_digest(&self.clients) != delta.digest {
                // A corrupted full snapshot still replaces nothing useful;
                // flag it and ask again.
                self.note_gap();
                return ApplyOutcome::NeedFull;
            }
            return ApplyOutcome::Applied;
        }
        if delta.base_seq != self.seq {
            self.note_gap();
            return ApplyOutcome::NeedFull;
        }
        let mut next = self.clients.clone();
        for snap in &delta.changed {
            next.insert(snap.client, snap.clone());
        }
        for id in &delta.removed {
            next.remove(id);
        }
        if full_digest(&next) != delta.digest {
            self.note_gap();
            return ApplyOutcome::NeedFull;
        }
        self.clients = next;
        self.seq = delta.seq;
        self.epoch = delta.epoch;
        ApplyOutcome::Applied
    }

    fn note_gap(&mut self) {
        self.telemetry.incr(keys::CLUSTER_REPLICATION_GAPS, &self.label);
    }

    /// The mirrored client set, in client-id order — exactly what a
    /// promoted shard feeds back into a fresh controller.
    pub fn snapshots(&self) -> Vec<ClientSnapshot> {
        self.clients.values().cloned().collect()
    }
}

impl StateDigest for StandbyReplica {
    fn digest(&self, h: &mut StableHasher) {
        self.seq.digest(h);
        self.epoch.digest(h);
        self.clients.digest(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gso_algo::{Ladder, Resolution, SourceId, StreamSpec};
    use gso_control::SubscribeIntent;
    use gso_util::{Bitrate, StreamKind};

    fn snap(id: u32, kbps: u64) -> ClientSnapshot {
        let ladder = Ladder::new(vec![
            StreamSpec::new(Resolution::R180, Bitrate::from_kbps(100), 100.0),
            StreamSpec::new(Resolution::R720, Bitrate::from_kbps(1500), 1200.0),
        ])
        .unwrap();
        ClientSnapshot {
            client: ClientId(id),
            ladders: vec![(StreamKind::Video, ladder)],
            intents: vec![SubscribeIntent {
                source: SourceId::video(ClientId(id ^ 1)),
                max_resolution: Resolution::R720,
                tag: 0,
            }],
            uplink: Bitrate::from_kbps(kbps),
            downlink: Bitrate::from_kbps(kbps * 2),
        }
    }

    #[test]
    fn full_then_incremental_round_trip() {
        let mut publisher = SnapshotPublisher::new(64);
        let mut replica = StandbyReplica::new("s0");

        let state = vec![snap(1, 500), snap(2, 700)];
        let full = publisher.tick(0, &state).expect("first tick emits full snapshot");
        assert!(full.is_full());
        assert_eq!(replica.apply(&full), ApplyOutcome::Applied);
        assert_eq!(replica.snapshots(), state);

        // No change: nothing to ship.
        assert!(publisher.tick(0, &state).is_none());

        // Modify one client, add one, remove one.
        let state = vec![snap(1, 900), snap(3, 300)];
        let delta = publisher.tick(0, &state).expect("diff emits a delta");
        assert!(!delta.is_full());
        assert_eq!(delta.changed.len(), 2);
        assert_eq!(delta.removed, vec![ClientId(2)]);
        assert_eq!(replica.apply(&delta), ApplyOutcome::Applied);
        assert_eq!(replica.snapshots(), state);
        assert_eq!(replica.seq(), publisher.seq());
    }

    #[test]
    fn truncated_stream_detected_and_recovered_by_full_snapshot() {
        let mut publisher = SnapshotPublisher::new(64);
        let mut replica = StandbyReplica::new("s0");
        replica.apply(&publisher.tick(0, &[snap(1, 500)]).unwrap());

        // Delta 2 is lost in transit; delta 3 arrives against the wrong
        // base and must be refused without corrupting the replica.
        let _lost = publisher.tick(0, &[snap(1, 600)]).unwrap();
        let next = publisher.tick(0, &[snap(1, 600), snap(2, 200)]).unwrap();
        let before = replica.state_digest();
        assert_eq!(replica.apply(&next), ApplyOutcome::NeedFull);
        assert_eq!(replica.state_digest(), before, "failed apply must not mutate");

        // Recovery: the publisher re-ships everything.
        publisher.request_full();
        let full = publisher.tick(0, &[snap(1, 600), snap(2, 200)]).unwrap();
        assert!(full.is_full());
        assert_eq!(replica.apply(&full), ApplyOutcome::Applied);
        assert_eq!(replica.snapshots(), vec![snap(1, 600), snap(2, 200)]);
    }

    #[test]
    fn reordered_deltas_detected() {
        let mut publisher = SnapshotPublisher::new(64);
        let mut replica = StandbyReplica::new("s0");
        replica.apply(&publisher.tick(0, &[snap(1, 500)]).unwrap());
        let d2 = publisher.tick(0, &[snap(1, 600)]).unwrap();
        let d3 = publisher.tick(0, &[snap(1, 700)]).unwrap();
        // d3 before d2: gap. d2 after the failed d3: applies. d3 again:
        // applies, converging to the publisher state.
        assert_eq!(replica.apply(&d3), ApplyOutcome::NeedFull);
        assert_eq!(replica.apply(&d2), ApplyOutcome::Applied);
        assert_eq!(replica.apply(&d3), ApplyOutcome::Applied);
        assert_eq!(replica.snapshots(), vec![snap(1, 700)]);
    }

    #[test]
    fn stale_epoch_delta_ignored() {
        let mut old_pub = SnapshotPublisher::new(64);
        let mut new_pub = SnapshotPublisher::new(64);
        let mut replica = StandbyReplica::new("s0");
        // Replica has accepted epoch 5 state.
        replica.apply(&new_pub.tick(5, &[snap(1, 500)]).unwrap());
        // A zombie publisher still on epoch 4 keeps streaming.
        let stale = old_pub.tick(4, &[snap(9, 100)]).unwrap();
        assert_eq!(replica.apply(&stale), ApplyOutcome::Stale);
        assert_eq!(replica.epoch(), 5);
        assert_eq!(replica.snapshots(), vec![snap(1, 500)]);
    }

    #[test]
    fn bounded_delta_spills_to_next_tick() {
        let mut publisher = SnapshotPublisher::new(2);
        let mut replica = StandbyReplica::new("s0");
        replica.apply(&publisher.tick(0, &[]).unwrap());

        // Five new clients with a budget of two per delta: three deltas,
        // each internally consistent (digest matches its partial commit).
        let state: Vec<_> = (1..=5).map(|i| snap(i, 100 * u64::from(i))).collect();
        let mut deltas = 0;
        while let Some(d) = publisher.tick(0, &state) {
            assert!(d.changed.len() + d.removed.len() <= 2, "budget respected");
            assert_eq!(replica.apply(&d), ApplyOutcome::Applied);
            deltas += 1;
            assert!(deltas <= 5, "must converge");
        }
        assert_eq!(deltas, 3);
        assert_eq!(replica.snapshots(), state);
    }

    #[test]
    fn corrupted_digest_rejected() {
        let mut publisher = SnapshotPublisher::new(64);
        let mut replica = StandbyReplica::new("s0");
        replica.apply(&publisher.tick(0, &[snap(1, 500)]).unwrap());
        let mut d = publisher.tick(0, &[snap(1, 600)]).unwrap();
        d.digest ^= 0xdead_beef;
        assert_eq!(replica.apply(&d), ApplyOutcome::NeedFull);
        assert_eq!(replica.snapshots(), vec![snap(1, 500)], "state untouched");
    }
}
