//! Lease-based failure detection on the deterministic sim clock.
//!
//! An active shard emits heartbeats at its tick cadence; the standby's
//! [`FailureDetector`] renews a lease on each accepted heartbeat and
//! declares the shard dead when the lease expires without renewal. The
//! lease interval carries seeded [`DetRng`] jitter so colocated standbys
//! never stampede their promotions onto the same instant, and the jitter
//! stream is derived from `(seed, label)` so every run replays
//! bit-identically.

use gso_detguard::{StableHasher, StateDigest};
use gso_rtp::epoch_newer;
use gso_telemetry::{keys, Telemetry};
use gso_util::{DetRng, SimDuration, SimTime};

/// Failure-detector policy.
#[derive(Debug, Clone)]
pub struct LeaseConfig {
    /// How long a heartbeat keeps the shard's lease alive. Must cover
    /// several heartbeat intervals so a single lost heartbeat (or a short
    /// loss window) does not trigger a spurious promotion.
    pub lease: SimDuration,
    /// Up to this fraction of the lease is added as deterministic jitter
    /// on every renewal, drawn from a [`DetRng`] stream keyed by
    /// `(seed, label)`.
    pub jitter_frac: f64,
    /// Seed for the jitter stream (derive from the scenario seed).
    pub seed: u64,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        // Heartbeats ride the 100 ms controller tick; a 700 ms lease
        // tolerates six consecutive losses before declaring death, and
        // expiry + resync + first solve stays well inside the 5 s §7
        // recovery bound.
        LeaseConfig { lease: SimDuration::from_millis(700), jitter_frac: 0.2, seed: 0 }
    }
}

/// Standby-side lease bookkeeping for one watched shard.
#[derive(Debug)]
pub struct FailureDetector {
    cfg: LeaseConfig,
    label: String,
    rng: DetRng,
    /// Lease deadline; no accepted heartbeat by this instant = dead.
    deadline: SimTime,
    /// `(epoch, seq)` of the newest accepted heartbeat; `None` until the
    /// first one arrives (any epoch is acceptable then — the standby must
    /// not fence a shard it has never heard from).
    last: Option<(u32, u64)>,
    /// Latched once the lease expires; late heartbeats from the declared
    /// shard are ignored from then on (the standby has moved on).
    expired: bool,
    telemetry: Telemetry,
}

impl FailureDetector {
    /// A detector for the shard named `label` (also the telemetry label
    /// and the jitter-stream derivation key).
    pub fn new(cfg: LeaseConfig, label: impl Into<String>) -> Self {
        let label = label.into();
        let rng = DetRng::derive(cfg.seed, &format!("cluster-lease-{label}"));
        FailureDetector {
            cfg,
            label,
            rng,
            deadline: SimTime::ZERO,
            last: None,
            expired: false,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a metrics registry (lease grant/expiry counters).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Arm the initial lease at boot: the shard gets one full (jittered)
    /// lease interval to produce its first heartbeat.
    pub fn arm(&mut self, now: SimTime) {
        self.deadline = now + self.jittered_lease();
    }

    fn jittered_lease(&mut self) -> SimDuration {
        if self.cfg.jitter_frac <= 0.0 {
            return self.cfg.lease;
        }
        self.cfg.lease + self.cfg.lease.mul_f64(self.cfg.jitter_frac * self.rng.f64())
    }

    /// Process a heartbeat from the watched shard. Returns `true` when the
    /// heartbeat renewed the lease; stale heartbeats (older epoch, or a
    /// replayed/reordered sequence within the same epoch) and heartbeats
    /// arriving after the lease already expired are ignored.
    pub fn heartbeat(&mut self, now: SimTime, epoch: u32, seq: u64) -> bool {
        if self.expired {
            return false;
        }
        if let Some((last_epoch, last_seq)) = self.last {
            if epoch_newer(last_epoch, epoch) {
                return false; // stale epoch: a fenced predecessor's heartbeat
            }
            if epoch == last_epoch && seq <= last_seq {
                return false; // duplicate or reordered within the epoch
            }
        }
        self.last = Some((epoch, seq));
        self.deadline = now + self.jittered_lease();
        self.telemetry.incr(keys::CLUSTER_LEASE_GRANTED, &self.label);
        true
    }

    /// Poll for expiry. Returns `true` exactly once, on the first poll at
    /// or past the (jittered) deadline — the caller promotes the standby
    /// then. Further polls return `false` (the latch stays set).
    pub fn check_expired(&mut self, now: SimTime) -> bool {
        if self.expired || now < self.deadline {
            return false;
        }
        self.expired = true;
        self.telemetry.incr(keys::CLUSTER_LEASE_EXPIRED, &self.label);
        true
    }

    /// Has the lease expired (latched)?
    pub fn expired(&self) -> bool {
        self.expired
    }

    /// Highest epoch seen in an accepted heartbeat (0 before the first) —
    /// the promotion bumps past this with RFC 1982 serial arithmetic.
    pub fn last_epoch(&self) -> u32 {
        self.last.map_or(0, |(e, _)| e)
    }

    /// Current lease deadline (for tests / digests).
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }
}

impl StateDigest for FailureDetector {
    fn digest(&self, h: &mut StableHasher) {
        self.deadline.digest(h);
        self.last.digest(h);
        self.expired.digest(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> LeaseConfig {
        LeaseConfig { lease: SimDuration::from_millis(700), jitter_frac: 0.2, seed }
    }

    #[test]
    fn heartbeats_renew_until_silence_expires_the_lease() {
        let mut d = FailureDetector::new(cfg(7), "s0");
        d.arm(SimTime::ZERO);
        let mut t = SimTime::ZERO;
        for seq in 1..=20u64 {
            t += SimDuration::from_millis(100);
            assert!(!d.check_expired(t), "lease must hold while heartbeats flow");
            assert!(d.heartbeat(t, 0, seq));
        }
        // Silence: the lease (700–840 ms) expires within one second.
        let expiry_poll = t + SimDuration::from_secs(1);
        assert!(d.check_expired(expiry_poll), "silence must expire the lease");
        assert!(!d.check_expired(expiry_poll), "expiry fires exactly once");
        assert!(d.expired());
        // A late heartbeat from the declared-dead shard is ignored.
        assert!(!d.heartbeat(expiry_poll, 0, 21));
    }

    #[test]
    fn short_loss_window_does_not_expire() {
        let mut d = FailureDetector::new(cfg(7), "s0");
        d.arm(SimTime::ZERO);
        d.heartbeat(SimTime::from_millis(100), 0, 1);
        // 300 ms of silence (3 lost heartbeats) then resume: under the
        // 700 ms lease, never expires.
        for ms in [200u64, 300, 400] {
            assert!(!d.check_expired(SimTime::from_millis(ms)));
        }
        assert!(d.heartbeat(SimTime::from_millis(500), 0, 5));
        assert!(!d.check_expired(SimTime::from_millis(1_100)));
    }

    #[test]
    fn stale_epoch_and_replayed_seq_rejected() {
        let mut d = FailureDetector::new(cfg(7), "s0");
        d.arm(SimTime::ZERO);
        assert!(d.heartbeat(SimTime::from_millis(100), 5, 3));
        assert!(!d.heartbeat(SimTime::from_millis(200), 4, 9), "older epoch");
        assert!(!d.heartbeat(SimTime::from_millis(200), 5, 3), "replayed seq");
        assert!(!d.heartbeat(SimTime::from_millis(200), 5, 2), "reordered seq");
        assert!(d.heartbeat(SimTime::from_millis(200), 5, 4));
        // A *newer* epoch (post-wrap) is accepted even though numerically
        // smaller.
        let mut d = FailureDetector::new(cfg(7), "s0");
        d.arm(SimTime::ZERO);
        assert!(d.heartbeat(SimTime::from_millis(100), u32::MAX, 1));
        assert!(d.heartbeat(SimTime::from_millis(200), 0, 1), "wrapped epoch is newer");
        assert_eq!(d.last_epoch(), 0);
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let deadlines = |seed| {
            let mut d = FailureDetector::new(cfg(seed), "s0");
            d.arm(SimTime::ZERO);
            let mut out = Vec::new();
            for seq in 1..=8u64 {
                d.heartbeat(SimTime::from_millis(100 * seq), 0, seq);
                out.push(d.deadline());
            }
            out
        };
        let a = deadlines(1);
        assert_eq!(a, deadlines(1), "same seed, same deadlines");
        assert_ne!(a, deadlines(2), "different seed perturbs the schedule");
        for (i, deadline) in a.iter().enumerate() {
            let hb = SimTime::from_millis(100 * (i as u64 + 1));
            let lo = hb + SimDuration::from_millis(700);
            let hi = hb + SimDuration::from_millis(840);
            assert!((lo..=hi).contains(deadline), "deadline within jitter bounds");
        }
    }
}
