//! gso-cluster: sharded controller failover for GSO-Simulcast.
//!
//! The paper's conference node is a single logical controller; at fleet
//! scale it becomes a set of **shards**, each owning a partition of
//! conferences, and a controller crash must not take its partition down
//! for longer than the §7 recovery budget. This crate supplies the three
//! mechanisms that make that true, all on the deterministic sim clock:
//!
//! * [`lease`] — heartbeat/lease failure detection with seeded jitter
//!   ([`FailureDetector`]): a standby declares its shard dead only after a
//!   full lease of silence, so transient heartbeat loss never flaps into a
//!   promotion.
//! * [`replica`] — bounded, digest-covered delta replication of controller
//!   state ([`SnapshotPublisher`] / [`StandbyReplica`]): the standby holds
//!   everything a promoted controller needs to re-register every client
//!   without a resync round trip, and detects gaps instead of drifting.
//! * [`cluster`] — the sharded [`ControllerCluster`] and the
//!   [`EpochLedger`] write fence: promotions bump the epoch in RFC 1982
//!   serial order, and a partition's ledger accepts a write only from the
//!   live `(shard, epoch)` — a zombie shard on the wrong side of a network
//!   partition is fenced, never merged (split-brain safety).

pub mod cluster;
pub mod lease;
pub mod replica;

pub use cluster::{ClusterConfig, ControllerCluster, EpochLedger, ShardId};
pub use lease::{FailureDetector, LeaseConfig};
pub use replica::{ApplyOutcome, SnapshotDelta, SnapshotPublisher, StandbyReplica};
