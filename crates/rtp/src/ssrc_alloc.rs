//! Deterministic SSRC allocation.
//!
//! §4.2: "we assign a different synchronization source (SSRC) for each
//! stream resolution to facilitate the feedback control". The allocator
//! packs (client, stream kind, resolution slot) into the 32-bit SSRC so any
//! component can map an SSRC back to its layer without a lookup table.
//!
//! Layout: `client_id (16) | kind (4) | slot (12)`, where `slot` is the
//! resolution's line count / 4 (180 → 45, 360 → 90, 720 → 180, 1080 → 270),
//! all of which fit 12 bits.

use gso_util::{ClientId, Ssrc, StreamKind};

fn kind_code(kind: StreamKind) -> u32 {
    match kind {
        StreamKind::Audio => 0,
        StreamKind::Video => 1,
        StreamKind::Screen => 2,
    }
}

fn kind_from_code(code: u32) -> Option<StreamKind> {
    match code {
        0 => Some(StreamKind::Audio),
        1 => Some(StreamKind::Video),
        2 => Some(StreamKind::Screen),
        _ => None,
    }
}

/// SSRC for a client's layer at a given resolution (vertical lines; 0 for
/// audio).
pub fn ssrc_for(client: ClientId, kind: StreamKind, resolution_lines: u16) -> Ssrc {
    let slot = (u32::from(resolution_lines) / 4) & 0xfff;
    Ssrc(((client.0 & 0xffff) << 16) | (kind_code(kind) << 12) | slot)
}

/// Decompose an SSRC produced by [`ssrc_for`].
pub fn decode_ssrc(ssrc: Ssrc) -> Option<(ClientId, StreamKind, u16)> {
    let client = ClientId(ssrc.0 >> 16);
    let kind = kind_from_code((ssrc.0 >> 12) & 0xf)?;
    let lines = ((ssrc.0 & 0xfff) * 4) as u16;
    Some((client, kind, lines))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds_and_resolutions() {
        for kind in StreamKind::ALL {
            for lines in [0u16, 180, 360, 720, 1080] {
                let s = ssrc_for(ClientId(4242), kind, lines);
                assert_eq!(decode_ssrc(s), Some((ClientId(4242), kind, lines)));
            }
        }
    }

    #[test]
    fn distinct_per_layer() {
        let a = ssrc_for(ClientId(1), StreamKind::Video, 180);
        let b = ssrc_for(ClientId(1), StreamKind::Video, 720);
        let c = ssrc_for(ClientId(1), StreamKind::Screen, 720);
        let d = ssrc_for(ClientId(2), StreamKind::Video, 180);
        let all = [a, b, c, d];
        for i in 0..all.len() {
            for j in 0..all.len() {
                if i != j {
                    assert_ne!(all[i], all[j]);
                }
            }
        }
    }

    #[test]
    fn unknown_kind_code_rejected() {
        assert_eq!(decode_ssrc(Ssrc(0xf000)), None);
    }
}
