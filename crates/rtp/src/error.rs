//! Parse errors for RTP/RTCP wire formats.

use std::fmt;

/// Why a packet failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Fewer bytes than the fixed header (or declared length) requires.
    Truncated {
        /// Bytes the header or declared length requires.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The RTP/RTCP version field is not 2.
    BadVersion(u8),
    /// An RTCP packet type we do not understand.
    UnknownPacketType(u8),
    /// A feedback message (FMT) we do not understand for a known type.
    UnknownFormat {
        /// The RTCP packet type.
        packet_type: u8,
        /// The unrecognized feedback message type.
        fmt: u8,
    },
    /// An APP packet whose 4-byte name is not one of ours.
    UnknownAppName([u8; 4]),
    /// A declared length field is inconsistent with the payload.
    BadLength,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated { needed, got } => {
                write!(f, "truncated packet: needed {needed} bytes, got {got}")
            }
            ParseError::BadVersion(v) => write!(f, "bad protocol version {v}"),
            ParseError::UnknownPacketType(t) => write!(f, "unknown RTCP packet type {t}"),
            ParseError::UnknownFormat { packet_type, fmt } => {
                write!(f, "unknown FMT {fmt} for RTCP type {packet_type}")
            }
            ParseError::UnknownAppName(n) => {
                write!(f, "unknown APP name {:?}", String::from_utf8_lossy(n))
            }
            ParseError::BadLength => write!(f, "inconsistent length field"),
        }
    }
}

impl std::error::Error for ParseError {}
