//! The RTP fixed header (RFC 3550 §5.1).
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |V=2|P|X|  CC   |M|     PT      |       sequence number         |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                           timestamp                           |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |           synchronization source (SSRC) identifier            |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! ```
//!
//! CSRC lists, padding and header extensions are not used by the simulator
//! and parse to an error if flagged, keeping the implementation honest about
//! what it supports (in the spirit of explicitly-scoped stacks like smoltcp).

use crate::error::ParseError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gso_util::Ssrc;

/// Size of the fixed RTP header in bytes.
pub const RTP_HEADER_LEN: usize = 12;

/// A parsed RTP fixed header plus payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtpPacket {
    /// Marker bit; set on the last packet of a video frame.
    pub marker: bool,
    /// Payload type (96–127 are dynamic; the simulator assigns per codec).
    pub payload_type: u8,
    /// Sequence number, increments per packet per SSRC.
    pub sequence: u16,
    /// Media timestamp in the stream's clock rate.
    pub timestamp: u32,
    /// Synchronization source; one per simulcast layer in GSO (§4.2).
    pub ssrc: Ssrc,
    /// Opaque payload bytes.
    pub payload: Bytes,
}

impl RtpPacket {
    /// Serialized size in bytes.
    pub fn wire_len(&self) -> usize {
        RTP_HEADER_LEN + self.payload.len()
    }

    /// Serialize to wire format.
    pub fn serialize(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.wire_len());
        // V=2, P=0, X=0, CC=0.
        b.put_u8(0b1000_0000);
        b.put_u8((u8::from(self.marker) << 7) | (self.payload_type & 0x7f));
        b.put_u16(self.sequence);
        b.put_u32(self.timestamp);
        b.put_u32(self.ssrc.0);
        b.extend_from_slice(&self.payload);
        b.freeze()
    }

    /// Parse from wire format.
    pub fn parse(mut data: Bytes) -> Result<RtpPacket, ParseError> {
        if data.len() < RTP_HEADER_LEN {
            return Err(ParseError::Truncated { needed: RTP_HEADER_LEN, got: data.len() });
        }
        let b0 = data.get_u8();
        let version = b0 >> 6;
        if version != 2 {
            return Err(ParseError::BadVersion(version));
        }
        let padding = b0 & 0b0010_0000 != 0;
        let extension = b0 & 0b0001_0000 != 0;
        let csrc_count = b0 & 0x0f;
        if padding || extension || csrc_count != 0 {
            // Unsupported features are rejected rather than silently skipped.
            return Err(ParseError::BadLength);
        }
        let b1 = data.get_u8();
        let marker = b1 & 0x80 != 0;
        let payload_type = b1 & 0x7f;
        let sequence = data.get_u16();
        let timestamp = data.get_u32();
        let ssrc = Ssrc(data.get_u32());
        Ok(RtpPacket { marker, payload_type, sequence, timestamp, ssrc, payload: data })
    }
}

/// Compare two sequence numbers with wrap-around (RFC 3550 A.1 style):
/// returns true if `a` is newer than `b`.
pub fn seq_newer(a: u16, b: u16) -> bool {
    a != b && a.wrapping_sub(b) < 0x8000
}

/// Compare two controller epochs with wrap-around (RFC 1982 serial-number
/// arithmetic): returns true if `a` is newer than `b`.
///
/// Epochs are bumped on every controller restart and live forever, so a
/// deployment that restarts often enough eventually wraps `u32`. A plain
/// `<`/`>` comparison then misclassifies the freshly wrapped epoch as
/// ancient and the client rejects every valid configuration from the new
/// controller generation — a permanent deadlock. Serial comparison keeps
/// ordering correct as long as live generations stay within `2^31` of each
/// other, which restart cadences cannot violate.
pub fn epoch_newer(a: u32, b: u32) -> bool {
    a != b && a.wrapping_sub(b) < 0x8000_0000
}

/// Distance from `b` forward to `a` with wrap-around.
pub fn seq_distance(a: u16, b: u16) -> u16 {
    a.wrapping_sub(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RtpPacket {
        RtpPacket {
            marker: true,
            payload_type: 96,
            sequence: 0xfffe,
            timestamp: 0x01020304,
            ssrc: Ssrc(0xdeadbeef),
            payload: Bytes::from_static(&[1, 2, 3, 4, 5]),
        }
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let wire = p.serialize();
        assert_eq!(wire.len(), p.wire_len());
        let q = RtpPacket::parse(wire).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn marker_bit_independent_of_payload_type() {
        let mut p = sample();
        p.marker = false;
        p.payload_type = 127;
        let q = RtpPacket::parse(p.serialize()).unwrap();
        assert!(!q.marker);
        assert_eq!(q.payload_type, 127);
    }

    #[test]
    fn rejects_truncated() {
        let err = RtpPacket::parse(Bytes::from_static(&[0x80, 0x60, 0, 1])).unwrap_err();
        assert!(matches!(err, ParseError::Truncated { .. }));
    }

    #[test]
    fn rejects_bad_version() {
        let mut wire = BytesMut::from(&sample().serialize()[..]);
        wire[0] = 0x40; // version 1
        let err = RtpPacket::parse(wire.freeze()).unwrap_err();
        assert_eq!(err, ParseError::BadVersion(1));
    }

    #[test]
    fn rejects_unsupported_features() {
        let mut wire = BytesMut::from(&sample().serialize()[..]);
        wire[0] = 0xa0; // padding bit
        assert!(RtpPacket::parse(wire.freeze()).is_err());
    }

    #[test]
    fn empty_payload_ok() {
        let mut p = sample();
        p.payload = Bytes::new();
        let q = RtpPacket::parse(p.serialize()).unwrap();
        assert!(q.payload.is_empty());
    }

    #[test]
    fn sequence_wraparound_compare() {
        assert!(seq_newer(1, 0xffff));
        assert!(!seq_newer(0xffff, 1));
        assert!(seq_newer(100, 99));
        assert!(!seq_newer(99, 99));
        assert_eq!(seq_distance(1, 0xffff), 2);
        assert_eq!(seq_distance(5, 3), 2);
    }

    #[test]
    fn epoch_comparison_survives_wraparound() {
        assert!(epoch_newer(1, 0));
        assert!(!epoch_newer(0, 1));
        assert!(!epoch_newer(7, 7));
        // The wrap boundary: epoch 0/1 follow u32::MAX, they do not precede
        // it. A plain `<` gets every one of these wrong.
        assert!(epoch_newer(0, u32::MAX));
        assert!(epoch_newer(1, u32::MAX));
        assert!(epoch_newer(3, u32::MAX - 1));
        assert!(!epoch_newer(u32::MAX, 0));
        assert!(!epoch_newer(u32::MAX - 1, 3));
    }
}
