//! RTP/RTCP wire formats for GSO-Simulcast.
//!
//! Implements the subset of RFC 3550/4585/5104 plus the paper's custom APP
//! messages (§4.2–4.3) that the conferencing stack needs:
//!
//! * [`header`] — the RTP fixed header and sequence-number arithmetic.
//! * [`report`] — RTCP sender/receiver reports with report blocks.
//! * [`feedback`] — TMMBR/TMMBN (RFC 5104), generic NACK, REMB, and
//!   transport-wide feedback for sender-side bandwidth estimation.
//! * [`app`] — GSO's application-defined RTCP (type 204) messages: the SEMB
//!   uplink bandwidth report and the orchestration GTMB/GTBN
//!   request/notification pair with reliability sequence numbers.
//! * [`compound`] — RTCP packet framing and compound packets.
//! * [`mantissa`] — the mantissa·2^exp bitrate encodings shared by
//!   TMMBR/REMB/SEMB.
//! * [`ssrc_alloc`] — deterministic per-(client, kind, resolution) SSRC
//!   assignment (§4.2).

pub mod app;
pub mod compound;
pub mod error;
pub mod feedback;
pub mod header;
pub mod mantissa;
pub mod report;
pub mod ssrc_alloc;

pub use app::{GsoTmmbn, GsoTmmbr, Semb};
pub use compound::RtcpPacket;
pub use error::ParseError;
pub use feedback::{Nack, Remb, Tmmbn, Tmmbr, TmmbrEntry, TransportFeedback};
pub use header::{epoch_newer, seq_distance, seq_newer, RtpPacket, RTP_HEADER_LEN};
pub use report::{ReceiverReport, ReportBlock, SenderReport};
pub use ssrc_alloc::{decode_ssrc, ssrc_for};
