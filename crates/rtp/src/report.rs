//! RTCP sender/receiver reports (RFC 3550 §6.4).
//!
//! The simulator uses these for RTT measurement (LSR/DLSR) and loss
//! accounting. NTP timestamps are carried as microseconds of simulated time
//! in a 64-bit field, which keeps the math exact without implementing the
//! 1900-epoch fixed-point format.

use crate::error::ParseError;
use bytes::{Buf, BufMut, BytesMut};
use gso_util::Ssrc;

/// One reception report block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportBlock {
    /// Stream this block reports on.
    pub ssrc: Ssrc,
    /// Fraction of packets lost since the previous report, as a fixed-point
    /// value out of 256.
    pub fraction_lost: u8,
    /// Cumulative packets lost (24-bit on the wire).
    pub cumulative_lost: u32,
    /// Extended highest sequence number received.
    pub highest_seq: u32,
    /// Interarrival jitter estimate, in timestamp units.
    pub jitter: u32,
    /// Middle 32 bits of the last SR's timestamp (here: µs truncated).
    pub last_sr: u32,
    /// Delay since that SR, in µs (RFC uses 1/65536 s; µs is our unit).
    pub delay_since_last_sr: u32,
}

impl ReportBlock {
    pub(crate) fn write(&self, b: &mut BytesMut) {
        b.put_u32(self.ssrc.0);
        b.put_u8(self.fraction_lost);
        b.put_u8(((self.cumulative_lost >> 16) & 0xff) as u8);
        b.put_u16((self.cumulative_lost & 0xffff) as u16);
        b.put_u32(self.highest_seq);
        b.put_u32(self.jitter);
        b.put_u32(self.last_sr);
        b.put_u32(self.delay_since_last_sr);
    }

    pub(crate) fn read(b: &mut impl Buf) -> ReportBlock {
        let ssrc = Ssrc(b.get_u32());
        let fraction_lost = b.get_u8();
        let hi = u32::from(b.get_u8());
        let lo = u32::from(b.get_u16());
        ReportBlock {
            ssrc,
            fraction_lost,
            cumulative_lost: (hi << 16) | lo,
            highest_seq: b.get_u32(),
            jitter: b.get_u32(),
            last_sr: b.get_u32(),
            delay_since_last_sr: b.get_u32(),
        }
    }

    /// Wire size of one block.
    pub(crate) const WIRE_LEN: usize = 24;

    /// Fraction lost as a float in [0, 1].
    pub fn loss_fraction(&self) -> f64 {
        f64::from(self.fraction_lost) / 256.0
    }
}

/// A sender report (PT 200).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SenderReport {
    /// Reporting sender.
    pub sender_ssrc: Ssrc,
    /// Send time, µs of simulated time (stands in for the NTP timestamp).
    pub ntp_micros: u64,
    /// RTP timestamp corresponding to `ntp_micros`.
    pub rtp_timestamp: u32,
    /// Total packets sent.
    pub packet_count: u32,
    /// Total payload bytes sent.
    pub octet_count: u32,
    /// Reception reports piggybacked by a sender that also receives.
    pub reports: Vec<ReportBlock>,
}

/// A receiver report (PT 201).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceiverReport {
    /// Reporting receiver.
    pub sender_ssrc: Ssrc,
    /// One block per stream received.
    pub reports: Vec<ReportBlock>,
}

impl SenderReport {
    pub(crate) fn write_body(&self, b: &mut BytesMut) {
        b.put_u32(self.sender_ssrc.0);
        b.put_u64(self.ntp_micros);
        b.put_u32(self.rtp_timestamp);
        b.put_u32(self.packet_count);
        b.put_u32(self.octet_count);
        for r in &self.reports {
            r.write(b);
        }
    }

    pub(crate) fn read_body(count: u8, b: &mut impl Buf) -> Result<SenderReport, ParseError> {
        let needed = 24 + count as usize * ReportBlock::WIRE_LEN;
        if b.remaining() < needed {
            return Err(ParseError::Truncated { needed, got: b.remaining() });
        }
        let sender_ssrc = Ssrc(b.get_u32());
        let ntp_micros = b.get_u64();
        let rtp_timestamp = b.get_u32();
        let packet_count = b.get_u32();
        let octet_count = b.get_u32();
        let reports = (0..count).map(|_| ReportBlock::read(b)).collect();
        Ok(SenderReport {
            sender_ssrc,
            ntp_micros,
            rtp_timestamp,
            packet_count,
            octet_count,
            reports,
        })
    }
}

impl ReceiverReport {
    pub(crate) fn write_body(&self, b: &mut BytesMut) {
        b.put_u32(self.sender_ssrc.0);
        for r in &self.reports {
            r.write(b);
        }
    }

    pub(crate) fn read_body(count: u8, b: &mut impl Buf) -> Result<ReceiverReport, ParseError> {
        let needed = 4 + count as usize * ReportBlock::WIRE_LEN;
        if b.remaining() < needed {
            return Err(ParseError::Truncated { needed, got: b.remaining() });
        }
        let sender_ssrc = Ssrc(b.get_u32());
        let reports = (0..count).map(|_| ReportBlock::read(b)).collect();
        Ok(ReceiverReport { sender_ssrc, reports })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_block_roundtrip_with_24bit_loss() {
        let block = ReportBlock {
            ssrc: Ssrc(7),
            fraction_lost: 128,
            cumulative_lost: 0x00ab_cdef,
            highest_seq: 0x1234_5678,
            jitter: 99,
            last_sr: 0x0a0b_0c0d,
            delay_since_last_sr: 1_000_000,
        };
        let mut buf = BytesMut::new();
        block.write(&mut buf);
        assert_eq!(buf.len(), ReportBlock::WIRE_LEN);
        let back = ReportBlock::read(&mut buf.freeze());
        assert_eq!(back, block);
        assert!((back.loss_fraction() - 0.5).abs() < 1e-9);
    }
}
