//! Mantissa·2^exp bitrate encodings.
//!
//! Both the TMMBR/TMMBN messages of RFC 5104 (17-bit mantissa, 6-bit
//! exponent) and the REMB draft (18-bit mantissa, 6-bit exponent) encode a
//! bitrate as `mantissa × 2^exp`. The paper's SEMB message reuses the REMB
//! encoding, and its orchestration feedback reuses the TMMBR field layout
//! (§4.2–4.3). Encoding picks the smallest exponent that fits, which gives
//! the best precision; a disabled stream is the zero mantissa.

use gso_util::Bitrate;

/// Encode a bitrate into `(exp, mantissa)` with a mantissa of `mantissa_bits`
/// bits. Values too large for the 6-bit exponent saturate at the maximum
/// representable bitrate.
pub fn encode(bitrate: Bitrate, mantissa_bits: u32) -> (u8, u32) {
    let max_mantissa: u64 = (1 << mantissa_bits) - 1;
    let mut value = bitrate.as_bps();
    let mut exp = 0u8;
    while value > max_mantissa {
        value >>= 1;
        exp += 1;
        if exp >= 64 {
            break;
        }
    }
    if exp > 63 {
        // Saturate: the largest representable value.
        return (63, max_mantissa as u32);
    }
    (exp, value as u32)
}

/// Decode `(exp, mantissa)` back to a bitrate.
pub fn decode(exp: u8, mantissa: u32) -> Bitrate {
    Bitrate::from_bps(u64::from(mantissa) << exp.min(63))
}

/// Mantissa width used by TMMBR/TMMBN (RFC 5104).
pub const TMMBR_MANTISSA_BITS: u32 = 17;

/// Mantissa width used by REMB and the paper's SEMB.
pub const REMB_MANTISSA_BITS: u32 = 18;

/// Worst-case relative encoding error for a 17-bit mantissa: one part in
/// 2^17, i.e. < 0.001 %. Exposed for tests.
pub fn max_relative_error(mantissa_bits: u32) -> f64 {
    1.0 / (1u64 << mantissa_bits) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_small_values() {
        for bps in [0u64, 1, 1000, 100_000, (1 << 17) - 1] {
            let (e, m) = encode(Bitrate::from_bps(bps), TMMBR_MANTISSA_BITS);
            assert_eq!(decode(e, m).as_bps(), bps);
        }
    }

    #[test]
    fn near_exact_for_large_values() {
        for kbps in [500u64, 1_500, 10_000, 1_000_000] {
            let b = Bitrate::from_kbps(kbps);
            let (e, m) = encode(b, TMMBR_MANTISSA_BITS);
            let back = decode(e, m);
            let rel = (b.as_bps() as f64 - back.as_bps() as f64).abs() / b.as_bps() as f64;
            assert!(rel <= max_relative_error(TMMBR_MANTISSA_BITS), "{kbps} kbps: rel {rel}");
            // Encoding truncates, never rounds up: back ≤ original, so an
            // encoded constraint is always conservative.
            assert!(back <= b);
        }
    }

    #[test]
    fn zero_means_disabled() {
        let (e, m) = encode(Bitrate::ZERO, TMMBR_MANTISSA_BITS);
        assert_eq!(m, 0);
        assert_eq!(decode(e, m), Bitrate::ZERO);
    }

    #[test]
    fn remb_width_covers_more_precisely() {
        let b = Bitrate::from_kbps(1_234_567);
        let (e17, m17) = encode(b, TMMBR_MANTISSA_BITS);
        let (e18, m18) = encode(b, REMB_MANTISSA_BITS);
        let err17 = b.as_bps() - decode(e17, m17).as_bps();
        let err18 = b.as_bps() - decode(e18, m18).as_bps();
        assert!(err18 <= err17);
    }

    #[test]
    fn mantissa_fits_width() {
        for kbps in 1..2000u64 {
            let (_, m) = encode(Bitrate::from_kbps(kbps * 13), TMMBR_MANTISSA_BITS);
            assert!(m < (1 << TMMBR_MANTISSA_BITS));
        }
    }
}
