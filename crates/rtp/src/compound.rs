//! RTCP packet framing and compound packets (RFC 3550 §6.1).
//!
//! Every RTCP packet starts with the common header
//! `V(2)|P(1)|RC/FMT(5)|PT(8)|length(16)`, where `length` counts 32-bit
//! words minus one. Packets whose body is not word-aligned are padded with
//! zeros (the simulator keeps packet bodies aligned by construction, so the
//! padding bit itself is unused).

use crate::app::{GsoTmmbn, GsoTmmbr, Semb};
use crate::error::ParseError;
use crate::feedback::{Nack, Remb, Tmmbn, Tmmbr, TransportFeedback};
use crate::report::{ReceiverReport, SenderReport};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gso_util::Ssrc;

/// RTCP packet types used in this stack.
mod pt {
    pub const SR: u8 = 200;
    pub const RR: u8 = 201;
    pub const APP: u8 = 204;
    pub const RTPFB: u8 = 205;
    pub const PSFB: u8 = 206;
}

/// FMT values for PT 205 (transport feedback).
mod fmt {
    pub const NACK: u8 = 1;
    pub const TMMBR: u8 = 3;
    pub const TMMBN: u8 = 4;
    pub const TRANSPORT_CC: u8 = 15;
    /// FMT 15 for PT 206 is application-layer feedback (REMB).
    pub const ALFB: u8 = 15;
}

/// APP subtypes for our three messages.
mod subtype {
    pub const SEMB: u8 = 0;
    pub const GTMB: u8 = 1;
    pub const GTBN: u8 = 2;
}

/// Any RTCP packet this stack understands.
#[derive(Debug, Clone, PartialEq)]
pub enum RtcpPacket {
    /// Sender report (PT 200).
    SenderReport(SenderReport),
    /// Receiver report (PT 201).
    ReceiverReport(ReceiverReport),
    /// RFC 5104 TMMBR (PT 205 FMT 3) — congestion-control use.
    Tmmbr(Tmmbr),
    /// RFC 5104 TMMBN (PT 205 FMT 4).
    Tmmbn(Tmmbn),
    /// Generic NACK (PT 205 FMT 1).
    Nack(Nack),
    /// REMB (PT 206 FMT 15).
    Remb(Remb),
    /// Transport-wide feedback (PT 205 FMT 15).
    TransportFeedback(TransportFeedback),
    /// GSO uplink bandwidth report (APP "SEMB").
    Semb(Semb),
    /// GSO orchestration feedback (APP "GTMB").
    GsoTmmbr(GsoTmmbr),
    /// GSO orchestration acknowledgement (APP "GTBN").
    GsoTmmbn(GsoTmmbn),
}

impl RtcpPacket {
    /// Serialize one packet including its RTCP header.
    pub fn serialize(&self) -> Bytes {
        let mut body = BytesMut::new();
        let (count_or_fmt, packet_type, name): (u8, u8, Option<&[u8; 4]>) = match self {
            RtcpPacket::SenderReport(p) => {
                p.write_body(&mut body);
                (p.reports.len() as u8, pt::SR, None)
            }
            RtcpPacket::ReceiverReport(p) => {
                p.write_body(&mut body);
                (p.reports.len() as u8, pt::RR, None)
            }
            RtcpPacket::Tmmbr(p) => {
                p.write_body(&mut body);
                (fmt::TMMBR, pt::RTPFB, None)
            }
            RtcpPacket::Tmmbn(p) => {
                p.write_body(&mut body);
                (fmt::TMMBN, pt::RTPFB, None)
            }
            RtcpPacket::Nack(p) => {
                p.write_body(&mut body);
                (fmt::NACK, pt::RTPFB, None)
            }
            RtcpPacket::Remb(p) => {
                p.write_body(&mut body);
                (fmt::ALFB, pt::PSFB, None)
            }
            RtcpPacket::TransportFeedback(p) => {
                p.write_body(&mut body);
                (fmt::TRANSPORT_CC, pt::RTPFB, None)
            }
            RtcpPacket::Semb(p) => {
                body.put_u32(p.sender_ssrc.0);
                body.extend_from_slice(Semb::NAME);
                p.write_body(&mut body);
                (subtype::SEMB, pt::APP, None)
            }
            RtcpPacket::GsoTmmbr(p) => {
                body.put_u32(p.sender_ssrc.0);
                body.extend_from_slice(GsoTmmbr::NAME);
                p.write_body(&mut body);
                (subtype::GTMB, pt::APP, None)
            }
            RtcpPacket::GsoTmmbn(p) => {
                body.put_u32(p.sender_ssrc.0);
                body.extend_from_slice(GsoTmmbn::NAME);
                p.write_body(&mut body);
                (subtype::GTBN, pt::APP, None)
            }
        };
        let _ = name;
        // Pad the body to a 32-bit boundary.
        while !body.len().is_multiple_of(4) {
            body.put_u8(0);
        }
        let words = body.len() / 4; // header adds one word; length = words
        let mut out = BytesMut::with_capacity(4 + body.len());
        out.put_u8(0b1000_0000 | (count_or_fmt & 0x1f));
        out.put_u8(packet_type);
        out.put_u16(words as u16);
        out.extend_from_slice(&body);
        out.freeze()
    }

    /// Parse exactly one packet from the front of `data`, returning it and
    /// the remaining bytes.
    pub fn parse(mut data: Bytes) -> Result<(RtcpPacket, Bytes), ParseError> {
        if data.len() < 4 {
            return Err(ParseError::Truncated { needed: 4, got: data.len() });
        }
        let b0 = data.get_u8();
        let version = b0 >> 6;
        if version != 2 {
            return Err(ParseError::BadVersion(version));
        }
        let count_or_fmt = b0 & 0x1f;
        let packet_type = data.get_u8();
        let words = data.get_u16() as usize;
        let body_len = words * 4;
        if data.len() < body_len {
            return Err(ParseError::Truncated { needed: body_len, got: data.len() });
        }
        let rest = data.split_off(body_len);
        let mut body = data;

        let packet = match packet_type {
            pt::SR => RtcpPacket::SenderReport(SenderReport::read_body(count_or_fmt, &mut body)?),
            pt::RR => {
                RtcpPacket::ReceiverReport(ReceiverReport::read_body(count_or_fmt, &mut body)?)
            }
            pt::RTPFB => match count_or_fmt {
                fmt::NACK => RtcpPacket::Nack(Nack::read_body(&mut body)?),
                fmt::TMMBR => RtcpPacket::Tmmbr(Tmmbr::read_body(&mut body)?),
                fmt::TMMBN => RtcpPacket::Tmmbn(Tmmbn::read_body(&mut body)?),
                fmt::TRANSPORT_CC => {
                    RtcpPacket::TransportFeedback(TransportFeedback::read_body(&mut body)?)
                }
                other => {
                    return Err(ParseError::UnknownFormat { packet_type, fmt: other });
                }
            },
            pt::PSFB => match count_or_fmt {
                fmt::ALFB => RtcpPacket::Remb(Remb::read_body(&mut body)?),
                other => {
                    return Err(ParseError::UnknownFormat { packet_type, fmt: other });
                }
            },
            pt::APP => {
                if body.remaining() < 8 {
                    return Err(ParseError::Truncated { needed: 8, got: body.remaining() });
                }
                let sender = Ssrc(body.get_u32());
                let mut name = [0u8; 4];
                body.copy_to_slice(&mut name);
                match &name {
                    n if n == Semb::NAME => RtcpPacket::Semb(Semb::read_body(sender, &mut body)?),
                    n if n == GsoTmmbr::NAME => {
                        RtcpPacket::GsoTmmbr(GsoTmmbr::read_body(sender, &mut body)?)
                    }
                    n if n == GsoTmmbn::NAME => {
                        RtcpPacket::GsoTmmbn(GsoTmmbn::read_body(sender, &mut body)?)
                    }
                    _ => return Err(ParseError::UnknownAppName(name)),
                }
            }
            other => return Err(ParseError::UnknownPacketType(other)),
        };
        Ok((packet, rest))
    }

    /// Serialize a compound packet (several RTCP packets back to back).
    pub fn serialize_compound(packets: &[RtcpPacket]) -> Bytes {
        let mut out = BytesMut::new();
        for p in packets {
            out.extend_from_slice(&p.serialize());
        }
        out.freeze()
    }

    /// Parse a full compound packet into its parts.
    pub fn parse_compound(mut data: Bytes) -> Result<Vec<RtcpPacket>, ParseError> {
        let mut packets = Vec::new();
        while !data.is_empty() {
            let (p, rest) = RtcpPacket::parse(data)?;
            packets.push(p);
            data = rest;
        }
        Ok(packets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::TmmbrEntry;
    use crate::report::ReportBlock;
    use gso_util::Bitrate;

    fn sample_rr() -> RtcpPacket {
        RtcpPacket::ReceiverReport(ReceiverReport {
            sender_ssrc: Ssrc(1),
            reports: vec![ReportBlock {
                ssrc: Ssrc(2),
                fraction_lost: 10,
                cumulative_lost: 5,
                highest_seq: 1000,
                jitter: 3,
                last_sr: 7,
                delay_since_last_sr: 11,
            }],
        })
    }

    fn sample_sr() -> RtcpPacket {
        RtcpPacket::SenderReport(SenderReport {
            sender_ssrc: Ssrc(3),
            ntp_micros: 123_456_789,
            rtp_timestamp: 90_000,
            packet_count: 42,
            octet_count: 42_000,
            reports: vec![],
        })
    }

    fn sample_gtmb() -> RtcpPacket {
        RtcpPacket::GsoTmmbr(GsoTmmbr {
            sender_ssrc: Ssrc(4),
            epoch: 0,
            request_seq: 9,
            entries: vec![TmmbrEntry {
                ssrc: Ssrc(100),
                bitrate: Bitrate::from_kbps(512),
                overhead: 40,
            }],
        })
    }

    #[test]
    fn single_packet_roundtrips() {
        for p in [sample_rr(), sample_sr(), sample_gtmb()] {
            let wire = p.serialize();
            let (back, rest) = RtcpPacket::parse(wire).unwrap();
            assert!(rest.is_empty());
            assert_eq!(back, p);
        }
    }

    #[test]
    fn all_variants_roundtrip() {
        let packets = vec![
            sample_sr(),
            sample_rr(),
            RtcpPacket::Tmmbr(Tmmbr {
                sender_ssrc: Ssrc(1),
                entries: vec![TmmbrEntry {
                    ssrc: Ssrc(5),
                    bitrate: Bitrate::from_kbps(256),
                    overhead: 0,
                }],
            }),
            RtcpPacket::Tmmbn(Tmmbn { sender_ssrc: Ssrc(1), entries: vec![] }),
            RtcpPacket::Nack(Nack { sender_ssrc: Ssrc(1), media_ssrc: Ssrc(2), lost: vec![5, 6] }),
            RtcpPacket::Remb(Remb {
                sender_ssrc: Ssrc(1),
                bitrate: Bitrate::from_kbps(1024),
                ssrcs: vec![Ssrc(7)],
            }),
            RtcpPacket::TransportFeedback(TransportFeedback {
                sender_ssrc: Ssrc(1),
                feedback_seq: 3,
                base_seq: 100,
                arrivals: vec![Some(10), None],
            }),
            RtcpPacket::Semb(Semb {
                sender_ssrc: Ssrc(1),
                bitrate: Bitrate::from_kbps(2048),
                ssrcs: vec![],
            }),
            sample_gtmb(),
            RtcpPacket::GsoTmmbn(GsoTmmbn {
                sender_ssrc: Ssrc(2),
                epoch: 0,
                request_seq: 9,
                entries: vec![],
            }),
        ];
        let wire = RtcpPacket::serialize_compound(&packets);
        let back = RtcpPacket::parse_compound(wire).unwrap();
        assert_eq!(back, packets);
    }

    #[test]
    fn compound_parse_stops_at_garbage() {
        let mut wire = BytesMut::from(&sample_rr().serialize()[..]);
        wire.extend_from_slice(&[0x80, 199, 0, 0]); // unknown PT 199
        let err = RtcpPacket::parse_compound(wire.freeze()).unwrap_err();
        assert_eq!(err, ParseError::UnknownPacketType(199));
    }

    #[test]
    fn length_field_counts_words() {
        let wire = sample_sr().serialize();
        let words = u16::from_be_bytes([wire[2], wire[3]]) as usize;
        assert_eq!(wire.len(), 4 + words * 4);
    }

    #[test]
    fn truncated_header_rejected() {
        let err = RtcpPacket::parse(Bytes::from_static(&[0x80, 200])).unwrap_err();
        assert!(matches!(err, ParseError::Truncated { .. }));
    }
}
