//! RTCP transport-layer and payload-specific feedback.
//!
//! * TMMBR/TMMBN (RFC 5104, PT 205 FMT 3/4) — temporary maximum media
//!   stream bitrate request/notification. The paper notes that using these
//!   *as-is* for stream orchestration would be ambiguous with congestion
//!   control (RFC 8888), which is why GSO wraps its orchestration variant in
//!   an APP packet (see [`crate::app`]). The plain messages here remain for
//!   congestion-control use.
//! * Generic NACK (RFC 4585, PT 205 FMT 1) — retransmission requests used
//!   by the loss-recovery path in the media simulator.
//! * REMB (draft-alvestrand-rmcat-remb, PT 206 FMT 15) — receiver estimated
//!   maximum bitrate.
//! * Transport-wide feedback (PT 205 FMT 15) — per-packet arrival times for
//!   the sender-side bandwidth estimator (§4.2: "we rely on sender-side
//!   bandwidth estimation"). The body layout is a simplified fixed-width
//!   variant of draft-holmer-rmcat-transport-wide-cc: explicit 64-bit µs
//!   arrival times instead of delta compression. Semantics are identical;
//!   only the packing differs (documented simulator substitution).

use crate::error::ParseError;
use crate::mantissa;
use bytes::{Buf, BufMut, BytesMut};
use gso_util::{Bitrate, Ssrc};

/// One (SSRC, bitrate, overhead) tuple in a TMMBR/TMMBN message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmmbrEntry {
    /// The stream being limited; GSO assigns one SSRC per simulcast layer,
    /// so this field selects the layer to configure (§4.3).
    pub ssrc: Ssrc,
    /// Maximum total media bitrate. Zero disables the stream.
    pub bitrate: Bitrate,
    /// Per-packet overhead in bytes (9 bits on the wire).
    pub overhead: u16,
}

impl TmmbrEntry {
    pub(crate) const WIRE_LEN: usize = 8;

    pub(crate) fn write(&self, b: &mut BytesMut) {
        b.put_u32(self.ssrc.0);
        let (exp, mantissa) = mantissa::encode(self.bitrate, mantissa::TMMBR_MANTISSA_BITS);
        let word: u32 =
            (u32::from(exp) << 26) | (mantissa << 9) | (u32::from(self.overhead) & 0x1ff);
        b.put_u32(word);
    }

    pub(crate) fn read(b: &mut impl Buf) -> TmmbrEntry {
        let ssrc = Ssrc(b.get_u32());
        let word = b.get_u32();
        let exp = (word >> 26) as u8;
        let m = (word >> 9) & 0x1ffff;
        let overhead = (word & 0x1ff) as u16;
        TmmbrEntry { ssrc, bitrate: mantissa::decode(exp, m), overhead }
    }
}

/// TMMBR: a request to cap a stream's bitrate (PT 205, FMT 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tmmbr {
    /// Sender of the request.
    pub sender_ssrc: Ssrc,
    /// Per-stream limits.
    pub entries: Vec<TmmbrEntry>,
}

/// TMMBN: the acknowledging notification (PT 205, FMT 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tmmbn {
    /// Sender of the notification.
    pub sender_ssrc: Ssrc,
    /// Echoed bounding set.
    pub entries: Vec<TmmbrEntry>,
}

fn tmmb_write_body(sender: Ssrc, entries: &[TmmbrEntry], b: &mut BytesMut) {
    b.put_u32(sender.0);
    b.put_u32(0); // media SSRC is zero for TMMB* per RFC 5104
    for e in entries {
        e.write(b);
    }
}

fn tmmb_read_body(b: &mut impl Buf) -> Result<(Ssrc, Vec<TmmbrEntry>), ParseError> {
    if b.remaining() < 8 {
        return Err(ParseError::Truncated { needed: 8, got: b.remaining() });
    }
    let sender = Ssrc(b.get_u32());
    let _media = b.get_u32();
    if !b.remaining().is_multiple_of(TmmbrEntry::WIRE_LEN) {
        return Err(ParseError::BadLength);
    }
    let n = b.remaining() / TmmbrEntry::WIRE_LEN;
    Ok((sender, (0..n).map(|_| TmmbrEntry::read(b)).collect()))
}

impl Tmmbr {
    pub(crate) fn write_body(&self, b: &mut BytesMut) {
        tmmb_write_body(self.sender_ssrc, &self.entries, b);
    }

    pub(crate) fn read_body(b: &mut impl Buf) -> Result<Tmmbr, ParseError> {
        let (sender_ssrc, entries) = tmmb_read_body(b)?;
        Ok(Tmmbr { sender_ssrc, entries })
    }
}

impl Tmmbn {
    pub(crate) fn write_body(&self, b: &mut BytesMut) {
        tmmb_write_body(self.sender_ssrc, &self.entries, b);
    }

    pub(crate) fn read_body(b: &mut impl Buf) -> Result<Tmmbn, ParseError> {
        let (sender_ssrc, entries) = tmmb_read_body(b)?;
        Ok(Tmmbn { sender_ssrc, entries })
    }
}

/// Generic NACK (PT 205, FMT 1): lost-packet sequence numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nack {
    /// The requesting receiver.
    pub sender_ssrc: Ssrc,
    /// The stream the losses belong to.
    pub media_ssrc: Ssrc,
    /// Lost sequence numbers (encoded as PID+BLP pairs on the wire).
    pub lost: Vec<u16>,
}

impl Nack {
    /// Encode the lost list into PID+BLP items.
    fn items(&self) -> Vec<(u16, u16)> {
        let mut sorted = self.lost.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let mut items: Vec<(u16, u16)> = Vec::new();
        for seq in sorted {
            if let Some(last) = items.last_mut() {
                let delta = seq.wrapping_sub(last.0);
                if (1..=16).contains(&delta) {
                    last.1 |= 1 << (delta - 1);
                    continue;
                }
            }
            items.push((seq, 0));
        }
        items
    }

    pub(crate) fn write_body(&self, b: &mut BytesMut) {
        b.put_u32(self.sender_ssrc.0);
        b.put_u32(self.media_ssrc.0);
        for (pid, blp) in self.items() {
            b.put_u16(pid);
            b.put_u16(blp);
        }
    }

    pub(crate) fn read_body(b: &mut impl Buf) -> Result<Nack, ParseError> {
        if b.remaining() < 8 {
            return Err(ParseError::Truncated { needed: 8, got: b.remaining() });
        }
        let sender_ssrc = Ssrc(b.get_u32());
        let media_ssrc = Ssrc(b.get_u32());
        if !b.remaining().is_multiple_of(4) {
            return Err(ParseError::BadLength);
        }
        let mut lost = Vec::new();
        while b.remaining() >= 4 {
            let pid = b.get_u16();
            let blp = b.get_u16();
            lost.push(pid);
            for i in 0..16 {
                if blp & (1 << i) != 0 {
                    lost.push(pid.wrapping_add(i + 1));
                }
            }
        }
        Ok(Nack { sender_ssrc, media_ssrc, lost })
    }
}

/// REMB: receiver estimated maximum bitrate (PT 206, FMT 15, name "REMB").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Remb {
    /// The estimating receiver.
    pub sender_ssrc: Ssrc,
    /// Estimated available bitrate.
    pub bitrate: Bitrate,
    /// Streams the estimate applies to.
    pub ssrcs: Vec<Ssrc>,
}

impl Remb {
    pub(crate) fn write_body(&self, b: &mut BytesMut) {
        b.put_u32(self.sender_ssrc.0);
        b.put_u32(0);
        b.extend_from_slice(b"REMB");
        let (exp, m) = mantissa::encode(self.bitrate, mantissa::REMB_MANTISSA_BITS);
        let word = ((self.ssrcs.len() as u32 & 0xff) << 24) | (u32::from(exp) << 18) | m;
        b.put_u32(word);
        for s in &self.ssrcs {
            b.put_u32(s.0);
        }
    }

    pub(crate) fn read_body(b: &mut impl Buf) -> Result<Remb, ParseError> {
        if b.remaining() < 16 {
            return Err(ParseError::Truncated { needed: 16, got: b.remaining() });
        }
        let sender_ssrc = Ssrc(b.get_u32());
        let _media = b.get_u32();
        let mut name = [0u8; 4];
        b.copy_to_slice(&mut name);
        if &name != b"REMB" {
            return Err(ParseError::UnknownAppName(name));
        }
        let word = b.get_u32();
        let n = (word >> 24) as usize;
        let exp = ((word >> 18) & 0x3f) as u8;
        let m = word & 0x3ffff;
        if b.remaining() < n * 4 {
            return Err(ParseError::Truncated { needed: n * 4, got: b.remaining() });
        }
        let ssrcs = (0..n).map(|_| Ssrc(b.get_u32())).collect();
        Ok(Remb { sender_ssrc, bitrate: mantissa::decode(exp, m), ssrcs })
    }
}

/// Transport-wide feedback (PT 205, FMT 15): per-packet arrival times for
/// the sender-side estimator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportFeedback {
    /// The reporting receiver (or accessing node, for downlink estimation).
    pub sender_ssrc: Ssrc,
    /// Feedback message counter, wraps.
    pub feedback_seq: u32,
    /// Transport-wide sequence number of the first reported packet.
    pub base_seq: u16,
    /// Arrival time in µs for each packet from `base_seq` on; `None` = lost.
    pub arrivals: Vec<Option<u64>>,
}

impl TransportFeedback {
    const LOST: u64 = u64::MAX;

    pub(crate) fn write_body(&self, b: &mut BytesMut) {
        b.put_u32(self.sender_ssrc.0);
        b.put_u32(self.feedback_seq);
        b.put_u16(self.base_seq);
        b.put_u16(self.arrivals.len() as u16);
        for a in &self.arrivals {
            b.put_u64(a.unwrap_or(Self::LOST));
        }
    }

    pub(crate) fn read_body(b: &mut impl Buf) -> Result<TransportFeedback, ParseError> {
        if b.remaining() < 12 {
            return Err(ParseError::Truncated { needed: 12, got: b.remaining() });
        }
        let sender_ssrc = Ssrc(b.get_u32());
        let feedback_seq = b.get_u32();
        let base_seq = b.get_u16();
        let n = b.get_u16() as usize;
        if b.remaining() < n * 8 {
            return Err(ParseError::Truncated { needed: n * 8, got: b.remaining() });
        }
        let arrivals = (0..n)
            .map(|_| {
                let v = b.get_u64();
                (v != Self::LOST).then_some(v)
            })
            .collect();
        Ok(TransportFeedback { sender_ssrc, feedback_seq, base_seq, arrivals })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tmmbr_entry_roundtrip() {
        let e = TmmbrEntry { ssrc: Ssrc(42), bitrate: Bitrate::from_kbps(1400), overhead: 40 };
        let mut b = BytesMut::new();
        e.write(&mut b);
        assert_eq!(b.len(), TmmbrEntry::WIRE_LEN);
        let back = TmmbrEntry::read(&mut b.freeze());
        assert_eq!(back.ssrc, e.ssrc);
        assert_eq!(back.overhead, 40);
        // 1.4 Mbps fits a 17-bit mantissa only approximately.
        let rel = (back.bitrate.as_bps() as f64 - e.bitrate.as_bps() as f64).abs()
            / e.bitrate.as_bps() as f64;
        assert!(rel < 1e-4);
    }

    #[test]
    fn tmmbr_zero_bitrate_disables() {
        let e = TmmbrEntry { ssrc: Ssrc(1), bitrate: Bitrate::ZERO, overhead: 0 };
        let mut b = BytesMut::new();
        e.write(&mut b);
        let back = TmmbrEntry::read(&mut b.freeze());
        assert!(back.bitrate.is_zero());
    }

    #[test]
    fn nack_blp_compression() {
        let n = Nack {
            sender_ssrc: Ssrc(1),
            media_ssrc: Ssrc(2),
            lost: vec![100, 101, 105, 116, 117, 200],
        };
        // 100 carries 101,105,116 in its BLP (offsets 1,5,16); 117 starts a
        // new item carrying nothing; 200 a third.
        let items = n.items();
        assert_eq!(items.len(), 3);
        let mut b = BytesMut::new();
        n.write_body(&mut b);
        let back = Nack::read_body(&mut b.freeze()).unwrap();
        let mut lost = back.lost.clone();
        lost.sort_unstable();
        assert_eq!(lost, vec![100, 101, 105, 116, 117, 200]);
    }

    #[test]
    fn nack_wraparound_sequences() {
        let n = Nack { sender_ssrc: Ssrc(1), media_ssrc: Ssrc(2), lost: vec![0xffff, 0, 1] };
        let mut b = BytesMut::new();
        n.write_body(&mut b);
        let back = Nack::read_body(&mut b.freeze()).unwrap();
        let mut lost = back.lost.clone();
        lost.sort_unstable();
        assert_eq!(lost, vec![0, 1, 0xffff]);
    }

    #[test]
    fn remb_roundtrip() {
        let r = Remb {
            sender_ssrc: Ssrc(9),
            bitrate: Bitrate::from_kbps(2048),
            ssrcs: vec![Ssrc(1), Ssrc(2), Ssrc(3)],
        };
        let mut b = BytesMut::new();
        r.write_body(&mut b);
        let back = Remb::read_body(&mut b.freeze()).unwrap();
        assert_eq!(back.ssrcs, r.ssrcs);
        assert_eq!(back.bitrate, r.bitrate); // power-of-two kbps is exact
    }

    #[test]
    fn transport_feedback_roundtrip_with_losses() {
        let tf = TransportFeedback {
            sender_ssrc: Ssrc(5),
            feedback_seq: 77,
            base_seq: 1000,
            arrivals: vec![Some(1_000_000), None, Some(1_020_000), None, None, Some(1_100_123)],
        };
        let mut b = BytesMut::new();
        tf.write_body(&mut b);
        let back = TransportFeedback::read_body(&mut b.freeze()).unwrap();
        assert_eq!(back, tf);
    }
}
