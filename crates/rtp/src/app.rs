//! Application-defined RTCP packets (type 204) — GSO's control channel.
//!
//! §4.2–4.3 of the paper: both the uplink bandwidth reports and the
//! orchestration feedback ride in APP packets (RTCP type 204, reserved for
//! experimental use by RFC 3550) so they cannot be confused with the
//! congestion-control TMMBR of RFC 8888.
//!
//! Three messages are defined:
//!
//! * **SEMB** (`"SEMB"`) — *sender estimated maximum bitrate*: a client
//!   reports its sender-side uplink estimate, encoded exactly like REMB
//!   (mantissa·2^exp, 18-bit mantissa).
//! * **GTMB** (`"GTMB"`) — the orchestration TMMBR: per-SSRC bitrate
//!   configuration from the controller (zero mantissa disables a stream),
//!   carrying a request sequence number for reliability.
//! * **GTBN** (`"GTBN"`) — the corresponding notification echoed by the
//!   client; the accessing node retransmits GTMB until the matching GTBN
//!   arrives (§4.3).

use crate::error::ParseError;
use crate::feedback::TmmbrEntry;
use crate::mantissa;
use bytes::{Buf, BufMut, BytesMut};
use gso_util::{Bitrate, Ssrc};

/// Sender estimated maximum bitrate report (APP name `SEMB`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Semb {
    /// Reporting client (its primary SSRC).
    pub sender_ssrc: Ssrc,
    /// Sender-side uplink bandwidth estimate (`B = Mantissa · 2^Exp`).
    pub bitrate: Bitrate,
    /// Streams covered by the estimate (may be empty = whole transport).
    pub ssrcs: Vec<Ssrc>,
}

impl Semb {
    pub(crate) const NAME: &'static [u8; 4] = b"SEMB";

    pub(crate) fn write_body(&self, b: &mut BytesMut) {
        let (exp, m) = mantissa::encode(self.bitrate, mantissa::REMB_MANTISSA_BITS);
        let word = ((self.ssrcs.len() as u32 & 0xff) << 24) | (u32::from(exp) << 18) | m;
        b.put_u32(word);
        for s in &self.ssrcs {
            b.put_u32(s.0);
        }
    }

    pub(crate) fn read_body(sender_ssrc: Ssrc, b: &mut impl Buf) -> Result<Semb, ParseError> {
        if b.remaining() < 4 {
            return Err(ParseError::Truncated { needed: 4, got: b.remaining() });
        }
        let word = b.get_u32();
        let n = (word >> 24) as usize;
        let exp = ((word >> 18) & 0x3f) as u8;
        let m = word & 0x3ffff;
        if b.remaining() < n * 4 {
            return Err(ParseError::Truncated { needed: n * 4, got: b.remaining() });
        }
        let ssrcs = (0..n).map(|_| Ssrc(b.get_u32())).collect();
        Ok(Semb { sender_ssrc, bitrate: mantissa::decode(exp, m), ssrcs })
    }
}

/// Orchestration TMMBR in APP framing (name `GTMB`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GsoTmmbr {
    /// The accessing node issuing the configuration.
    pub sender_ssrc: Ssrc,
    /// Controller generation that issued the configuration; clients reject
    /// requests from an older epoch so a restarted controller's messages
    /// cannot race with a predecessor's late retransmissions (§7).
    pub epoch: u32,
    /// Sequence number matched by the GTBN acknowledgement; used for the
    /// retransmission scheme of §4.3.
    pub request_seq: u32,
    /// Per-layer bitrate configuration; zero bitrate disables the layer.
    pub entries: Vec<TmmbrEntry>,
}

/// Orchestration TMMBN acknowledgement (name `GTBN`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GsoTmmbn {
    /// The acknowledging client.
    pub sender_ssrc: Ssrc,
    /// Echo of the request's controller epoch.
    pub epoch: u32,
    /// Echo of the request's sequence number.
    pub request_seq: u32,
    /// Echo of the applied configuration.
    pub entries: Vec<TmmbrEntry>,
}

impl GsoTmmbr {
    pub(crate) const NAME: &'static [u8; 4] = b"GTMB";

    pub(crate) fn write_body(&self, b: &mut BytesMut) {
        b.put_u32(self.epoch);
        b.put_u32(self.request_seq);
        for e in &self.entries {
            e.write(b);
        }
    }

    pub(crate) fn read_body(sender_ssrc: Ssrc, b: &mut impl Buf) -> Result<GsoTmmbr, ParseError> {
        let (epoch, request_seq, entries) = read_seq_entries(b)?;
        Ok(GsoTmmbr { sender_ssrc, epoch, request_seq, entries })
    }
}

impl GsoTmmbn {
    pub(crate) const NAME: &'static [u8; 4] = b"GTBN";

    pub(crate) fn write_body(&self, b: &mut BytesMut) {
        b.put_u32(self.epoch);
        b.put_u32(self.request_seq);
        for e in &self.entries {
            e.write(b);
        }
    }

    pub(crate) fn read_body(sender_ssrc: Ssrc, b: &mut impl Buf) -> Result<GsoTmmbn, ParseError> {
        let (epoch, request_seq, entries) = read_seq_entries(b)?;
        Ok(GsoTmmbn { sender_ssrc, epoch, request_seq, entries })
    }
}

fn read_seq_entries(b: &mut impl Buf) -> Result<(u32, u32, Vec<TmmbrEntry>), ParseError> {
    if b.remaining() < 8 {
        return Err(ParseError::Truncated { needed: 8, got: b.remaining() });
    }
    let epoch = b.get_u32();
    let seq = b.get_u32();
    if !b.remaining().is_multiple_of(TmmbrEntry::WIRE_LEN) {
        return Err(ParseError::BadLength);
    }
    let n = b.remaining() / TmmbrEntry::WIRE_LEN;
    Ok((epoch, seq, (0..n).map(|_| TmmbrEntry::read(b)).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semb_roundtrip() {
        let s = Semb {
            sender_ssrc: Ssrc(11),
            bitrate: Bitrate::from_kbps(4096),
            ssrcs: vec![Ssrc(100), Ssrc(101)],
        };
        let mut b = BytesMut::new();
        s.write_body(&mut b);
        let back = Semb::read_body(Ssrc(11), &mut b.freeze()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn gtmb_roundtrip_with_disable_entry() {
        let g = GsoTmmbr {
            sender_ssrc: Ssrc(1),
            epoch: 3,
            request_seq: 0xdeadbeef,
            entries: vec![
                TmmbrEntry { ssrc: Ssrc(100), bitrate: Bitrate::from_kbps(800), overhead: 40 },
                TmmbrEntry { ssrc: Ssrc(101), bitrate: Bitrate::ZERO, overhead: 0 },
            ],
        };
        let mut b = BytesMut::new();
        g.write_body(&mut b);
        let back = GsoTmmbr::read_body(Ssrc(1), &mut b.freeze()).unwrap();
        assert_eq!(back.epoch, 3);
        assert_eq!(back.request_seq, 0xdeadbeef);
        assert_eq!(back.entries[0].bitrate, Bitrate::from_kbps(800));
        assert!(back.entries[1].bitrate.is_zero(), "zero mantissa disables the stream");
    }

    #[test]
    fn gtbn_echoes_request() {
        let n = GsoTmmbn { sender_ssrc: Ssrc(2), epoch: 1, request_seq: 7, entries: vec![] };
        let mut b = BytesMut::new();
        n.write_body(&mut b);
        let back = GsoTmmbn::read_body(Ssrc(2), &mut b.freeze()).unwrap();
        assert_eq!(back.epoch, 1);
        assert_eq!(back.request_seq, 7);
        assert!(back.entries.is_empty());
    }

    #[test]
    fn rejects_ragged_entry_list() {
        let mut b = BytesMut::new();
        b.put_u32(0); // epoch
        b.put_u32(1); // seq
        b.put_u32(2); // half an entry
        let err = GsoTmmbr::read_body(Ssrc(1), &mut b.freeze()).unwrap_err();
        assert_eq!(err, ParseError::BadLength);
    }
}
