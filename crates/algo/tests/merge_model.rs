//! Unit model of the sharded Step-1 in-order merge, plus digest-equivalence
//! checks for the sharded engine at 1/2/8 threads.
//!
//! The `model_*` tests replicate the exact concurrency shape of
//! `SolveEngine::knapsack_step` — `std::thread::scope` workers writing
//! disjoint `chunks_mut` shards, the calling thread merging afterwards in
//! ascending index order — on a small, pure computation. They run in
//! seconds under Miri (`cargo miri test -p gso-algo --test merge_model
//! model_`), which checks the pattern for undefined behaviour and data
//! races; the `engine_*` tests then tie the model back to the real engine by
//! asserting digest-identical solutions and traces across thread counts.

use gso_algo::{
    ladders, solver, ClientSpec, EngineConfig, Problem, Resolution, SolveEngine, SolverConfig,
    SourceId, Subscription,
};
use gso_detguard::StateDigest;
use gso_util::{Bitrate, ClientId};

/// The computation each "subscriber" shard performs in the model: something
/// order-sensitive enough that a wrong merge order or a torn write would
/// change the result.
fn work(id: u64) -> u64 {
    let mut acc = id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for i in 0..32 {
        acc = acc.rotate_left(7) ^ (id.wrapping_add(i));
    }
    acc
}

/// Sequential reference: process every entry in index order.
fn sequential(ids: &[u64]) -> Vec<u64> {
    ids.iter().map(|&id| work(id)).collect()
}

/// The engine's pattern: shard `entries` across scoped threads with
/// `chunks_mut`, each worker filling only its shard, then merge on the
/// calling thread in index order.
fn sharded(ids: &[u64], threads: usize) -> Vec<u64> {
    let mut out: Vec<Option<u64>> = vec![None; ids.len()];
    let chunk = ids.len().div_ceil(threads.max(1)).max(1);
    std::thread::scope(|s| {
        for (in_shard, out_shard) in ids.chunks(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(move || {
                for (id, slot) in in_shard.iter().zip(out_shard.iter_mut()) {
                    *slot = Some(work(*id));
                }
            });
        }
    });
    // In-order merge on the calling thread: identical to the sequential
    // iteration order regardless of worker completion order.
    out.into_iter().map(|v| v.expect("every slot filled exactly once")).collect()
}

#[test]
fn model_sharded_merge_matches_sequential() {
    let ids: Vec<u64> = (0..37).map(|i| i * 3 + 1).collect();
    let expect = sequential(&ids);
    for threads in [1, 2, 3, 8] {
        assert_eq!(sharded(&ids, threads), expect, "threads = {threads}");
    }
}

#[test]
fn model_uneven_shards_cover_all_entries() {
    // 10 entries across 8 threads: chunks of 2, last shards short/empty.
    let ids: Vec<u64> = (100..110).collect();
    assert_eq!(sharded(&ids, 8), sequential(&ids));
}

#[test]
fn model_single_entry_and_empty() {
    assert_eq!(sharded(&[42], 8), sequential(&[42]));
    assert_eq!(sharded(&[], 4), Vec::<u64>::new());
}

// ---------------------------------------------------------------------------
// Engine digest equivalence across thread counts (not run under Miri; the
// CI Miri job filters to `model_`).
// ---------------------------------------------------------------------------

fn mesh_problem(n: u32) -> Problem {
    let ladder = ladders::paper_table1();
    let clients: Vec<ClientSpec> = (1..=n)
        .map(|i| {
            ClientSpec::new(
                ClientId(i),
                Bitrate::from_kbps(2_000 + u64::from(i) * 97),
                Bitrate::from_kbps(1_200 + u64::from(i) * 131),
                ladder.clone(),
            )
        })
        .collect();
    let mut subs = Vec::new();
    for a in 1..=n {
        for b in 1..=n {
            if a != b {
                let cap = if (a + b) % 3 == 0 { Resolution::R360 } else { Resolution::R720 };
                subs.push(Subscription::new(ClientId(a), SourceId::video(ClientId(b)), cap));
            }
        }
    }
    Problem::new(clients, subs).unwrap()
}

#[test]
fn engine_digest_identical_across_1_2_8_threads() {
    let problem = mesh_problem(9);
    let cfg = SolverConfig::default();
    let (ref_solution, ref_trace) = solver::solve_traced(&problem, &cfg);
    let (ref_sol_digest, ref_trace_digest) =
        (ref_solution.state_digest(), ref_trace.state_digest());

    for threads in [1usize, 2, 8] {
        // parallel_threshold 1 forces the sharded path even on 9 clients.
        let mut engine = SolveEngine::with_engine_config(
            cfg.clone(),
            EngineConfig { threads, parallel_threshold: 1 },
        );
        // Cold solve, then warm re-solve: both must match the sequential
        // solver bit-for-bit.
        for pass in 0..2 {
            let (sol, trace) = engine.solve_traced(&problem);
            assert_eq!(
                sol.state_digest(),
                ref_sol_digest,
                "solution digest, threads={threads} pass={pass}"
            );
            assert_eq!(
                trace.state_digest(),
                ref_trace_digest,
                "trace digest, threads={threads} pass={pass}"
            );
        }
    }
}

#[test]
fn engine_digest_stable_across_repeated_construction() {
    let problem = mesh_problem(6);
    let cfg = SolverConfig::default();
    let digest = |threads: usize| {
        let mut engine = SolveEngine::with_engine_config(
            cfg.clone(),
            EngineConfig { threads, parallel_threshold: 1 },
        );
        engine.solve(&problem).state_digest()
    };
    assert_eq!(digest(2), digest(2));
    assert_eq!(digest(2), digest(8));
}
