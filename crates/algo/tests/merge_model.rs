//! Unit model of the batch scheduler's concurrency shape, plus
//! digest-equivalence checks for `BatchScheduler` at 1/2/8 workers.
//!
//! The `model_*` tests replicate the exact concurrency shape of
//! `BatchScheduler::solve_batch` — persistent workers stealing owned tasks
//! from per-worker deques and sending `(index, result)` pairs over a
//! channel, the submitter re-ordering by index — on a small, pure
//! computation. They run in seconds under Miri (`cargo miri test -p
//! gso-algo --test merge_model model_`), which checks the pattern for
//! undefined behaviour and data races; the `engine_*` tests then tie the
//! model back to the real scheduler by asserting digest-identical solutions
//! and traces across worker counts.

use gso_algo::{
    ladders, solver, BatchConfig, BatchJob, BatchScheduler, ClientSpec, Problem, Resolution,
    SolveEngine, SolverConfig, SourceId, Subscription,
};
use gso_detguard::StateDigest;
use gso_util::{Bitrate, ClientId};
use std::collections::VecDeque;
use std::sync::mpsc::channel;
use std::sync::{Arc, Condvar, Mutex};

/// The computation each "conference job" performs in the model: something
/// order-sensitive enough that a wrong merge order or a lost task would
/// change the result.
fn work(id: u64) -> u64 {
    let mut acc = id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for i in 0..32 {
        acc = acc.rotate_left(7) ^ (id.wrapping_add(i));
    }
    acc
}

/// Sequential reference: process every entry in index order.
fn sequential(ids: &[u64]) -> Vec<u64> {
    ids.iter().map(|&id| work(id)).collect()
}

/// The scheduler's pattern: tasks distributed round-robin over per-worker
/// deques, workers popping their own front and stealing others' backs,
/// results sent as `(index, value)` and re-ordered by the submitter.
fn batched(ids: &[u64], workers: usize) -> Vec<u64> {
    #[allow(clippy::type_complexity)]
    let queues: Arc<Vec<Mutex<VecDeque<(usize, u64)>>>> =
        Arc::new((0..workers).map(|_| Mutex::new(VecDeque::new())).collect());
    for (idx, &id) in ids.iter().enumerate() {
        queues[idx % workers].lock().unwrap().push_back((idx, id));
    }
    let (tx, rx) = channel();
    std::thread::scope(|s| {
        for wid in 0..workers {
            let queues = Arc::clone(&queues);
            let tx = tx.clone();
            s.spawn(move || loop {
                let mut task = None;
                for off in 0..workers {
                    let mut q = queues[(wid + off) % workers].lock().unwrap();
                    task = if off == 0 { q.pop_front() } else { q.pop_back() };
                    if task.is_some() {
                        break;
                    }
                }
                let Some((idx, id)) = task else { return };
                tx.send((idx, work(id))).unwrap();
            });
        }
        drop(tx);
        // Index-keyed merge: identical to the sequential iteration order
        // regardless of which worker finished first.
        let mut out: Vec<Option<u64>> = vec![None; ids.len()];
        for (idx, value) in rx {
            assert!(out[idx].replace(value).is_none(), "task {idx} completed twice");
        }
        out.into_iter().map(|v| v.expect("every slot filled exactly once")).collect()
    })
}

#[test]
fn model_batched_merge_matches_sequential() {
    let ids: Vec<u64> = (0..37).map(|i| i * 3 + 1).collect();
    let expect = sequential(&ids);
    for workers in [1, 2, 3, 8] {
        assert_eq!(batched(&ids, workers), expect, "workers = {workers}");
    }
}

#[test]
fn model_more_workers_than_tasks_covers_all_entries() {
    let ids: Vec<u64> = (100..110).collect();
    assert_eq!(batched(&ids, 8), sequential(&ids));
    assert_eq!(batched(&ids, 16), sequential(&ids));
}

#[test]
fn model_single_entry_and_empty() {
    assert_eq!(batched(&[42], 8), sequential(&[42]));
    assert_eq!(batched(&[], 4), Vec::<u64>::new());
}

/// Regression model for the submission/`Condvar::wait` race in the
/// *persistent* scheduler. The scoped-thread model above tears its workers
/// down after one batch; the real `BatchScheduler` parks idle workers on a
/// condvar between batches, which opens the classic lost-wakeup window: a
/// worker observes empty queues, a submitter pushes tasks and calls
/// `notify_all`, and only then does the worker go to sleep — forever, since
/// the single-wakeup `Sink` submitter is itself blocked waiting for that
/// worker. `batch.rs` closes the window by re-scanning the queues *while
/// holding the signal lock* (the submitter must take that lock to bump the
/// epoch, so the worker either sees the tasks or sleeps strictly before the
/// notify). This test replicates that exact handshake on a pure
/// computation and hammers it with many tiny back-to-back batches; a lost
/// wakeup manifests as a hang (caught by the test/Miri timeout).
#[test]
fn model_lost_wakeup_submission_race() {
    const WORKERS: usize = 2;
    const ROUNDS: u64 = 24;

    struct Task {
        idx: usize,
        id: u64,
        out: Arc<Sink>,
    }
    struct SignalState {
        epoch: u64,
        shutdown: bool,
    }
    struct Shared {
        queues: Vec<Mutex<VecDeque<Task>>>,
        signal: Mutex<SignalState>,
        cv: Condvar,
    }
    struct SinkState {
        slots: Vec<Option<u64>>,
        remaining: usize,
    }
    struct Sink {
        state: Mutex<SinkState>,
        done: Condvar,
    }

    impl Shared {
        fn grab(&self, wid: usize) -> Option<Task> {
            let n = self.queues.len();
            for off in 0..n {
                let mut q = self.queues[(wid + off) % n].lock().unwrap();
                let task = if off == 0 { q.pop_front() } else { q.pop_back() };
                if task.is_some() {
                    return task;
                }
            }
            None
        }
    }

    fn run_task(task: &Task) {
        let value = work(task.id);
        let mut st = task.out.state.lock().unwrap();
        assert!(st.slots[task.idx].replace(value).is_none(), "task {} completed twice", task.idx);
        st.remaining -= 1;
        if st.remaining == 0 {
            task.out.done.notify_one();
        }
    }

    let shared = Arc::new(Shared {
        queues: (0..WORKERS).map(|_| Mutex::new(VecDeque::new())).collect(),
        signal: Mutex::new(SignalState { epoch: 0, shutdown: false }),
        cv: Condvar::new(),
    });

    std::thread::scope(|s| {
        for wid in 0..WORKERS {
            let shared = Arc::clone(&shared);
            s.spawn(move || loop {
                while let Some(task) = shared.grab(wid) {
                    run_task(&task);
                }
                let mut sig = shared.signal.lock().unwrap();
                if sig.shutdown {
                    return;
                }
                // The lost-wakeup defence under test: re-scan with the
                // signal lock held. Deleting this block makes the test hang.
                if let Some(task) = shared.grab(wid) {
                    drop(sig);
                    run_task(&task);
                    continue;
                }
                let epoch = sig.epoch;
                while sig.epoch == epoch && !sig.shutdown {
                    sig = shared.cv.wait(sig).unwrap();
                }
                if sig.shutdown {
                    return;
                }
            });
        }

        // Submitter: many tiny batches back to back, so workers repeatedly
        // drain everything and race their way back onto the condvar just as
        // the next submission lands.
        for round in 0..ROUNDS {
            let n = 1 + (round as usize) % 3;
            let ids: Vec<u64> = (0..n as u64).map(|i| round * 17 + i).collect();
            let sink = Arc::new(Sink {
                state: Mutex::new(SinkState { slots: vec![None; n], remaining: n }),
                done: Condvar::new(),
            });
            for (idx, &id) in ids.iter().enumerate() {
                shared.queues[idx % WORKERS].lock().unwrap().push_back(Task {
                    idx,
                    id,
                    out: Arc::clone(&sink),
                });
            }
            {
                let mut sig = shared.signal.lock().unwrap();
                sig.epoch = sig.epoch.wrapping_add(1);
                shared.cv.notify_all();
            }
            let mut st = sink.state.lock().unwrap();
            while st.remaining > 0 {
                st = sink.done.wait(st).unwrap();
            }
            let got: Vec<u64> =
                st.slots.iter().map(|v| v.expect("every slot filled exactly once")).collect();
            assert_eq!(got, sequential(&ids), "round {round}");
        }

        let mut sig = shared.signal.lock().unwrap();
        sig.shutdown = true;
        shared.cv.notify_all();
    });
}

// ---------------------------------------------------------------------------
// Scheduler digest equivalence across worker counts (not run under Miri; the
// CI Miri job filters to `model_`).
// ---------------------------------------------------------------------------

fn mesh_problem(n: u32) -> Problem {
    let ladder = ladders::paper_table1();
    let clients: Vec<ClientSpec> = (1..=n)
        .map(|i| {
            ClientSpec::new(
                ClientId(i),
                Bitrate::from_kbps(2_000 + u64::from(i) * 97),
                Bitrate::from_kbps(1_200 + u64::from(i) * 131),
                ladder.clone(),
            )
        })
        .collect();
    let mut subs = Vec::new();
    for a in 1..=n {
        for b in 1..=n {
            if a != b {
                let cap = if (a + b) % 3 == 0 { Resolution::R360 } else { Resolution::R720 };
                subs.push(Subscription::new(ClientId(a), SourceId::video(ClientId(b)), cap));
            }
        }
    }
    Problem::new(clients, subs).unwrap()
}

#[test]
fn engine_digest_identical_across_1_2_8_workers() {
    let conferences: Vec<Arc<Problem>> = (6..=9).map(|n| Arc::new(mesh_problem(n))).collect();
    let cfg = SolverConfig::default();
    let reference: Vec<_> = conferences
        .iter()
        .map(|p| {
            let (sol, trace) = solver::solve_traced(p, &cfg);
            (sol.state_digest(), trace.state_digest())
        })
        .collect();

    for workers in [1usize, 2, 8] {
        let mut sched = BatchScheduler::new(&BatchConfig { workers });
        let mut jobs: Vec<BatchJob> = conferences
            .iter()
            .map(|p| BatchJob {
                engine: SolveEngine::new(cfg.clone()),
                problem: Arc::clone(p),
                traced: true,
            })
            .collect();
        // Cold batch, then warm re-batch with the returned engines: both
        // must match the sequential solver bit-for-bit.
        for pass in 0..2 {
            let results = sched.solve_batch(jobs);
            for (ci, (res, (sol_digest, trace_digest))) in
                results.iter().zip(&reference).enumerate()
            {
                assert_eq!(
                    res.solution.state_digest(),
                    *sol_digest,
                    "solution digest, workers={workers} pass={pass} conference={ci}"
                );
                assert_eq!(
                    res.trace.as_ref().map(StateDigest::state_digest),
                    Some(*trace_digest),
                    "trace digest, workers={workers} pass={pass} conference={ci}"
                );
            }
            jobs = results
                .into_iter()
                .zip(&conferences)
                .map(|(r, p)| BatchJob { engine: r.engine, problem: Arc::clone(p), traced: true })
                .collect();
        }
    }
}

#[test]
fn engine_digest_stable_across_repeated_construction() {
    let problem = Arc::new(mesh_problem(6));
    let cfg = SolverConfig::default();
    let digest = |workers: usize| {
        let mut sched = BatchScheduler::new(&BatchConfig { workers });
        let mut results = sched.solve_batch(vec![BatchJob {
            engine: SolveEngine::new(cfg.clone()),
            problem: Arc::clone(&problem),
            traced: false,
        }]);
        results.pop().expect("one result").solution.state_digest()
    };
    assert_eq!(digest(2), digest(2));
    assert_eq!(digest(2), digest(8));
}
