//! Incremental driver for the GSO control algorithm.
//!
//! [`SolveEngine`] produces exactly the same solutions and [`SolveTrace`]s as
//! [`solver::solve`] / [`solver::solve_traced`] — bit-identical, enforced by
//! sharing the Merge/Reduction/assembly code through the solver's internal
//! ladder-view trait — but amortizes work across calls:
//!
//! * **MCKP memoization** — each subscriber keeps a [`McState`] holding the
//!   per-class DP checkpoint rows of its last knapsack. A Reduction only
//!   changes the classes of that source's subscribers, so everyone else's
//!   Step 1 is a pure cache hit, and even affected subscribers recompute only
//!   the DP suffix from the changed class. Across controller ticks the same
//!   memo absorbs the common case where only one client's bandwidth estimate
//!   moved (the ≥15 % event trigger keeps most clients unchanged).
//! * **Allocation hygiene** — no `problem.clone()` per solve: Reduction
//!   results go into a small ladder *overlay* on the borrowed base problem.
//!   Per-client class lists are built into flat reusable scratch buffers;
//!   each source's ladder is quantized once per iteration into a shared
//!   *item template* instead of once per subscriber; Step-1 requests land in
//!   reusable per-source buckets instead of a fresh `BTreeMap` per
//!   iteration; retired clients' DP slabs return to an [`McPool`] that seeds
//!   joining clients (and, via the batch scheduler, other conferences).
//! * **Batching** — one engine per conference, driven sequentially here or
//!   interleaved across conferences by [`crate::batch::BatchScheduler`],
//!   which owns persistent workers and merges results deterministically.
//!   Per-solve threading was removed: a warm re-solve is microseconds, far
//!   below any spawn/wake cost, so parallelism pays at the conference
//!   granularity, not inside one solve.
//!
//! Dirty detection needs no external versioning protocol: a subscriber's
//! class items (quantized weight + boosted value per candidate stream) *are*
//! the cache key. Rebuilding them is `O(Σ ladder len)` per client — orders of
//! magnitude cheaper than the `O(items × W)` DP they guard — and comparing
//! them against the memo inside [`McState::solve_flat`] finds the first
//! changed class exactly.

use crate::mckp::{self, McItem, McOutcome, McPool, McReuse, McState};
use crate::problem::{Problem, SourceId, Subscription};
use crate::solution::Solution;
use crate::solver::{
    assemble, convergence_bound, merge_step, reduced_ladder, uplink_step, IterationTrace,
    LadderView, ReductionTrace, Request, SolveTrace, SolverConfig,
};
use crate::types::{Ladder, StreamSpec};
use gso_util::{Bitrate, ClientId};
use std::collections::BTreeMap;

/// Cumulative work counters, for benchmarks and regression tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Completed [`SolveEngine::solve`] calls.
    pub solves: u64,
    /// Knapsack–Merge–Reduction iterations across all solves.
    pub iterations: u64,
    /// Per-subscriber knapsack invocations (clients with subscriptions only).
    pub knapsacks: u64,
    /// Knapsacks answered entirely from cache (identical classes+capacity).
    pub full_hits: u64,
    /// Knapsacks that re-ran only the backtrack (capacity moved within the
    /// stored table).
    pub backtracks: u64,
    /// Knapsacks that recomputed only a suffix of their DP rows.
    pub suffix_recomputes: u64,
    /// Knapsacks computed from scratch.
    pub fresh_recomputes: u64,
    /// DP class-rows recomputed (the dominant cost unit of Step 1).
    pub rows_recomputed: u64,
    /// DP class-rows reused from the memo.
    pub rows_reused: u64,
}

/// Per-subscriber cache entry: the memoized DP plus flat scratch buffers.
#[derive(Debug, Default)]
struct ClientEntry {
    /// Incremental MCKP state (checkpoint rows + flat memo keys).
    mc: McState,
    /// Flat quantized items of the current class list, rebuilt each call.
    items: Vec<McItem>,
    /// `ranges[c]` delimits class `c` inside `items`.
    ranges: Vec<(usize, usize)>,
    /// Candidate spec behind each flat item (for request materialization).
    specs: Vec<StreamSpec>,
    /// Outcome of the last knapsack, consumed by the stats merge.
    last: Option<McOutcome>,
    /// Input fingerprint: the subscription slice this entry's scratch and DP
    /// were last built from. Together with `downlink_key` and `tmpl_rev_key`
    /// it captures *every* input `solve_flat` sees, so a match lets Step 1
    /// skip the item rebuild and the DP call outright and materialize
    /// requests from the cached choices.
    subs_key: Vec<Subscription>,
    /// Downlink the cached choices were solved at.
    downlink_key: Bitrate,
    /// Engine template revision the cache was built against; `0` never
    /// matches (revisions start at 1), marking the entry invalid.
    tmpl_rev_key: u64,
}

/// Debug-build invariant check on an assembled solution. Both asserts
/// compile to nothing in release builds, so the validation cone is not part
/// of the hot path.
// sentinel: cold_path(reason = "debug_assertions-only invariant check; release builds compile both asserts out")
fn debug_validate(problem: &Problem, solution: &Solution, max_iters: usize) {
    debug_assert!(
        solution.validate(problem).is_ok(),
        "engine emitted an invalid solution: {:?}",
        solution.validate(problem)
    );
    debug_assert!(
        solution.iterations <= max_iters,
        "engine exceeded the convergence bound: {} > {max_iters}",
        solution.iterations
    );
    let _ = (problem, solution, max_iters);
}

/// Retire a cache entry: its DP slab returns to the pool, its scratch is
/// cleared (capacity kept) and parked in the spare list, and its input
/// fingerprint is invalidated so a recycled entry can never false-hit.
fn retire_entry(pool: &mut McPool, spare: &mut Vec<ClientEntry>, mut entry: ClientEntry) {
    pool.retire(std::mem::take(&mut entry.mc));
    entry.items.clear();
    entry.ranges.clear();
    entry.specs.clear();
    entry.last = None;
    entry.subs_key.clear();
    entry.tmpl_rev_key = 0;
    // sentinel: allow(hot-alloc, reason = "membership-change path only; spare list is bounded by peak roster size")
    spare.push(entry);
}

/// Reduction overlay: the base problem's ladders with this solve's shrunken
/// ones on top. Replaces the one-shot solver's `problem.clone()`.
struct Overlay<'a> {
    base: &'a Problem,
    reduced: BTreeMap<SourceId, Ladder>,
}

impl LadderView for Overlay<'_> {
    fn ladder_of(&self, source: SourceId) -> Option<&Ladder> {
        if let Some(l) = self.reduced.get(&source) {
            return Some(l);
        }
        self.base.source(source).map(|s| &s.ladder)
    }
}

/// A reusable solver instance that carries MCKP memos, scratch buffers and
/// work statistics across [`solve`](Self::solve) calls.
#[derive(Debug)]
pub struct SolveEngine {
    cfg: SolverConfig,
    /// Per-client caches, ascending by id (mirrors `Problem::clients()`).
    caches: Vec<(ClientId, ClientEntry)>,
    /// Retired DP slabs, recycled into joining clients' entries.
    pool: McPool,
    /// Retired scratch buffers (items/ranges/specs) awaiting a new client.
    spare: Vec<ClientEntry>,
    /// Sources with ≥1 candidate template this iteration, ascending.
    src_ids: Vec<SourceId>,
    /// Flat per-source item templates: each source's current ladder specs
    /// paired with their pre-quantized weights, rebuilt once per iteration
    /// and shared by every subscriber of that source.
    tmpl: Vec<(StreamSpec, u64)>,
    /// `tmpl_ranges[i]` delimits `src_ids[i]`'s slice of the template slab.
    tmpl_ranges: Vec<(u32, u32)>,
    /// Monotone revision of the template slabs: bumped whenever a rebuild
    /// produces different content (ladder reduction, roster change, new
    /// solve after a reduced solve). Client fingerprints pin this, so a
    /// client's cache can only hit against the exact templates it saw.
    tmpl_rev: u64,
    /// Previous iteration's template slabs, kept to detect content changes
    /// without allocating (double-buffered via swap).
    prev_src_ids: Vec<SourceId>,
    prev_tmpl: Vec<(StreamSpec, u64)>,
    prev_tmpl_ranges: Vec<(u32, u32)>,
    /// `buckets[i]` collects Step-1 requests for `src_ids[i]`.
    buckets: Vec<Vec<Request>>,
    /// Scratch for uplink-repaired client ids, reused across iterations
    /// (moved into the trace — and so re-grown — only when tracing).
    repaired: Vec<ClientId>,
    stats: EngineStats,
}

impl SolveEngine {
    /// A fresh engine (cold caches) for the given solver configuration.
    #[must_use]
    pub fn new(cfg: SolverConfig) -> Self {
        SolveEngine {
            cfg,
            caches: Vec::new(),
            pool: McPool::new(),
            spare: Vec::new(),
            src_ids: Vec::new(),
            tmpl: Vec::new(),
            tmpl_ranges: Vec::new(),
            tmpl_rev: 1,
            prev_src_ids: Vec::new(),
            prev_tmpl: Vec::new(),
            prev_tmpl_ranges: Vec::new(),
            buckets: Vec::new(),
            repaired: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    /// The solver configuration this engine applies.
    #[must_use]
    pub fn config(&self) -> &SolverConfig {
        &self.cfg
    }

    /// Cumulative work counters since construction (or the last
    /// [`reset_stats`](Self::reset_stats)).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Zero the work counters (cache contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Drop every memoized DP table, forcing the next solve cold. The slabs
    /// go back to the pool, so the rebuild itself stays allocation-light.
    pub fn clear_cache(&mut self) {
        for (_, entry) in self.caches.drain(..) {
            retire_entry(&mut self.pool, &mut self.spare, entry);
        }
    }

    /// Detach this engine's DP-slab pool, e.g. to hand it to a scheduler's
    /// cross-conference reservoir. The engine keeps its live caches.
    pub fn take_pool(&mut self) -> McPool {
        std::mem::take(&mut self.pool)
    }

    /// Merge a pool of retired DP slabs into this engine's pool; joining
    /// clients are seeded from it before touching the allocator.
    pub fn absorb_pool(&mut self, pool: McPool) {
        self.pool.absorb(pool);
    }

    /// Tear the engine down into its recycled slabs: every cached client
    /// state is retired into the pool, which is returned for reuse by other
    /// engines (cross-conference recycling on conference teardown).
    #[must_use]
    pub fn into_pool(mut self) -> McPool {
        self.clear_cache();
        self.pool
    }

    /// Solve the orchestration problem. Output is bit-identical to
    /// [`solver::solve`] on the same problem and configuration.
    // sentinel: hot_path(warm-resolve)
    pub fn solve(&mut self, problem: &Problem) -> Solution {
        self.solve_impl(problem, None)
    }

    /// Like [`solve`](Self::solve), additionally returning the
    /// [`SolveTrace`]; both are bit-identical to [`solver::solve_traced`].
    // sentinel: hot_path(warm-resolve-traced)
    pub fn solve_traced(&mut self, problem: &Problem) -> (Solution, SolveTrace) {
        let mut trace = SolveTrace::default();
        let solution = self.solve_impl(problem, Some(&mut trace));
        (solution, trace)
    }

    fn solve_impl(&mut self, problem: &Problem, mut trace: Option<&mut SolveTrace>) -> Solution {
        self.reconcile(problem);
        self.stats.solves += 1;
        // sentinel: allow(hot-alloc, reason = "empty-map constructor does not allocate; entries appear only on ladder reduction")
        let mut overlay = Overlay { base: problem, reduced: BTreeMap::new() };
        let max_iters: usize = 1 + convergence_bound(problem);

        for iteration in 1..=max_iters {
            self.stats.iterations += 1;
            self.knapsack_step(problem, &overlay);
            // Only sources somebody requested from participate in the merge;
            // skipping empty buckets keeps the policy map's key set (and so
            // every downstream digest) identical to the sequential path.
            let mut policies = merge_step(
                self.src_ids
                    .iter()
                    .zip(&self.buckets)
                    .filter(|(_, b)| !b.is_empty())
                    .map(|(s, b)| (*s, b.as_slice())),
            );

            let mut iter_trace = trace.as_ref().map(|_| IterationTrace {
                requests: self
                    .src_ids
                    .iter()
                    .zip(&self.buckets)
                    .filter(|(_, b)| !b.is_empty())
                    // sentinel: allow(hot-alloc, reason = "solve-trace capture; allocates only when the caller requested tracing")
                    .map(|(s, b)| (*s, b.clone()))
                    // sentinel: allow(hot-alloc, reason = "solve-trace capture; allocates only when the caller requested tracing")
                    .collect(),
                merged: policies
                    .iter()
                    // sentinel: allow(hot-alloc, reason = "solve-trace capture; allocates only when the caller requested tracing")
                    .map(|(src, ps)| (*src, ps.iter().map(|p| (p.resolution, p.bitrate)).collect()))
                    // sentinel: allow(hot-alloc, reason = "solve-trace capture; allocates only when the caller requested tracing")
                    .collect(),
                // sentinel: allow(hot-alloc, reason = "empty-vec constructor does not allocate")
                repaired: Vec::new(),
                reduction: None,
            });

            self.repaired.clear();
            let reduction = uplink_step(
                problem.clients(),
                &overlay,
                &mut policies,
                self.cfg.unit,
                &mut self.repaired,
            );
            if let Some(t) = iter_trace.as_mut() {
                t.repaired = std::mem::take(&mut self.repaired);
            }

            if let Some((source, res)) = reduction {
                let shrunk = reduced_ladder(&overlay, source, res);
                if let Some(t) = iter_trace.take() {
                    if let Some(trace) = trace.as_mut() {
                        // sentinel: allow(hot-alloc, reason = "solve-trace capture; allocates only when the caller requested tracing")
                        trace.iterations.push(IterationTrace {
                            reduction: Some(ReductionTrace {
                                source,
                                resolution: res,
                                remaining_at_resolution: shrunk.at_resolution(res).len(),
                            }),
                            ..t
                        });
                    }
                }
                // sentinel: allow(hot-alloc, reason = "ladder reduction is the iteration-bounded slow branch, not the steady-state re-solve")
                overlay.reduced.insert(source, shrunk);
                continue;
            }

            if let Some(t) = iter_trace.take() {
                if let Some(trace) = trace.as_mut() {
                    // sentinel: allow(hot-alloc, reason = "solve-trace capture; allocates only when the caller requested tracing")
                    trace.iterations.push(t);
                }
            }

            let solution = assemble(problem, &overlay, policies, iteration);
            debug_validate(problem, &solution, max_iters);
            return solution;
        }

        // sentinel: allow(hot-panic, reason = "convergence proof: every iteration without a solution strictly shrinks one ladder, so max_iters bounds the loop")
        unreachable!("the reduction step strictly shrinks a ladder each iteration");
    }

    /// Align the cache vector with the problem's client list: entries for
    /// departed clients are retired to the pool, new clients are seeded from
    /// it, everyone else keeps their memo. The steady-state roster (no
    /// membership change) is a pure comparison — no moves, no allocation.
    fn reconcile(&mut self, problem: &Problem) {
        let clients = problem.clients();
        if self.caches.len() == clients.len()
            && self.caches.iter().zip(clients).all(|((id, _), c)| *id == c.id)
        {
            return;
        }
        let old = std::mem::take(&mut self.caches);
        // sentinel: allow(hot-alloc, reason = "membership-change path only; the steady-state roster short-circuits above")
        self.caches.reserve(clients.len());
        let mut old_iter = old.into_iter().peekable();
        for client in clients {
            while old_iter.peek().is_some_and(|(id, _)| *id < client.id) {
                let (_, entry) = old_iter.next().expect("invariant: just peeked a departed entry");
                retire_entry(&mut self.pool, &mut self.spare, entry);
            }
            if old_iter.peek().is_some_and(|(id, _)| *id == client.id) {
                let entry = old_iter.next().expect("invariant: just peeked");
                // sentinel: allow(hot-alloc, reason = "push into the capacity reserved above; never reallocates")
                self.caches.push(entry);
            } else {
                let mut entry = self.spare.pop().unwrap_or_default();
                entry.mc = self.pool.acquire();
                // sentinel: allow(hot-alloc, reason = "push into the capacity reserved above; never reallocates")
                self.caches.push((client.id, entry));
            }
        }
        for (_, entry) in old_iter {
            retire_entry(&mut self.pool, &mut self.spare, entry);
        }
    }

    /// Rebuild the per-source item templates against the current overlay:
    /// each source's ladder specs with weights quantized once, shared by all
    /// of its subscribers. `O(Σ ladder len)` per iteration instead of per
    /// subscriber — on a 20-party mesh this removes ~95 % of the
    /// `div_ceil` quantization work from Step 1.
    fn build_templates(&mut self, problem: &Problem, overlay: &Overlay<'_>) {
        // Double-buffer the slabs so a rebuild can be diffed against the
        // previous iteration's content without allocating. Weights are a
        // pure function of the specs and the (fixed) quantization unit, so
        // they need no separate comparison.
        std::mem::swap(&mut self.src_ids, &mut self.prev_src_ids);
        std::mem::swap(&mut self.tmpl, &mut self.prev_tmpl);
        std::mem::swap(&mut self.tmpl_ranges, &mut self.prev_tmpl_ranges);
        self.src_ids.clear();
        for client in problem.clients() {
            for s in &client.sources {
                // sentinel: allow(hot-alloc, reason = "per-iteration scratch retained across solves; steady-state pushes reuse capacity")
                self.src_ids.push(s.id);
            }
        }
        // Clients ascend by id, but a client's sources are not guaranteed
        // sorted among themselves; the merge/digest contract needs ascending
        // SourceId order.
        self.src_ids.sort_unstable();
        self.src_ids.dedup();

        self.tmpl.clear();
        self.tmpl_ranges.clear();
        let unit = self.cfg.unit;
        for src in &self.src_ids {
            let lo = self.tmpl.len() as u32;
            if let Some(ladder) = overlay.ladder_of(*src) {
                for spec in ladder.specs() {
                    // sentinel: allow(hot-alloc, reason = "per-iteration scratch retained across solves; steady-state pushes reuse capacity")
                    self.tmpl.push((*spec, mckp::quantize_weight(spec.bitrate, unit)));
                }
            }
            // sentinel: allow(hot-alloc, reason = "per-iteration scratch retained across solves; steady-state pushes reuse capacity")
            self.tmpl_ranges.push((lo, self.tmpl.len() as u32));
        }
        // Any content change (reduction overlay, roster edit, reverting to
        // the base ladders on a fresh solve) invalidates every client
        // fingerprint pinned to the old revision. Float compare is exact
        // here: identical ladders produce bit-identical specs.
        if self.src_ids != self.prev_src_ids
            || self.tmpl_ranges != self.prev_tmpl_ranges
            || self.tmpl != self.prev_tmpl
        {
            self.tmpl_rev += 1;
        }
        while self.buckets.len() < self.src_ids.len() {
            // sentinel: allow(hot-alloc, reason = "bucket list grows to the source count once; buckets themselves are recycled every iteration")
            self.buckets.push(Vec::new());
        }
        for bucket in &mut self.buckets {
            bucket.clear();
        }
    }

    /// Step 1 over all subscribers in ascending client order, materializing
    /// requests into the per-source buckets (identical content and order to
    /// the sequential solver's `BTreeMap` insertion).
    fn knapsack_step(&mut self, problem: &Problem, overlay: &Overlay<'_>) {
        self.build_templates(problem, overlay);
        let unit = self.cfg.unit;

        for (id, entry) in &mut self.caches {
            let subs = problem.subscriptions_of_slice(*id);
            if subs.is_empty() {
                continue;
            }
            let client = problem.client(*id).expect("invariant: caches were reconciled");
            self.stats.knapsacks += 1;

            // Fingerprint fast path: templates, subscriptions and downlink
            // together are *every* input the rebuild below and `solve_flat`
            // read, so a match means the cached choices/specs/ranges are
            // exactly what a re-solve would produce (it would be a Full hit
            // with untouched choices) — skip both and go straight to request
            // materialization.
            if entry.tmpl_rev_key == self.tmpl_rev
                && entry.downlink_key == client.downlink
                && entry.subs_key.as_slice() == subs
            {
                self.stats.full_hits += 1;
                self.stats.rows_reused += entry.ranges.len() as u64;
            } else {
                // Rebuild the flat class items from the templates. Classes in
                // deterministic (source, tag) order — the subscription order —
                // items ascending by bitrate as in the ladder; value =
                // `qoe × boost + presence` exactly as the sequential solver
                // computes it (plain mul+add; no FMA contraction).
                entry.items.clear();
                entry.ranges.clear();
                entry.specs.clear();
                for sub in subs {
                    let lo = entry.items.len();
                    if let Ok(si) = self.src_ids.binary_search(&sub.source) {
                        let &(tlo, thi) =
                            self.tmpl_ranges.get(si).expect("invariant: ranges mirror src_ids");
                        let tmpl = self
                            .tmpl
                            .get(tlo as usize..thi as usize)
                            .expect("invariant: template ranges index into the template slab");
                        for &(spec, weight) in tmpl {
                            if spec.resolution <= sub.max_resolution {
                                // sentinel: allow(hot-alloc, reason = "per-client scratch retained across solves; steady-state pushes reuse capacity")
                                entry.specs.push(spec);
                                // sentinel: allow(hot-alloc, reason = "per-client scratch retained across solves; steady-state pushes reuse capacity")
                                entry.items.push(McItem {
                                    weight,
                                    value: spec.qoe * sub.qoe_boost + sub.presence_bonus,
                                });
                            }
                        }
                    }
                    // sentinel: allow(hot-alloc, reason = "per-client scratch retained across solves; steady-state pushes reuse capacity")
                    entry.ranges.push((lo, entry.items.len()));
                }
                let out = entry.mc.solve_flat(
                    &entry.items,
                    &entry.ranges,
                    mckp::quantize_capacity(client.downlink, unit),
                );
                entry.last = Some(out);

                let k = out.classes as u64;
                match out.reuse {
                    McReuse::Full => {
                        self.stats.full_hits += 1;
                        self.stats.rows_reused += k;
                    }
                    McReuse::Backtrack => {
                        self.stats.backtracks += 1;
                        self.stats.rows_reused += k;
                    }
                    McReuse::Suffix { first_recomputed } => {
                        self.stats.suffix_recomputes += 1;
                        self.stats.rows_reused += first_recomputed as u64;
                        self.stats.rows_recomputed += k - first_recomputed as u64;
                    }
                    McReuse::Fresh => {
                        self.stats.fresh_recomputes += 1;
                        self.stats.rows_recomputed += k;
                    }
                }

                entry.subs_key.clear();
                // sentinel: allow(hot-alloc, reason = "per-client fingerprint retained across solves; steady-state refreshes reuse capacity")
                entry.subs_key.extend_from_slice(subs);
                entry.downlink_key = client.downlink;
                entry.tmpl_rev_key = self.tmpl_rev;
            }

            // Materialize this client's requests straight into the source
            // buckets. The DP solved exactly one class per subscription, so
            // choices and ranges zip against subs without residue.
            for (sub, (&choice, &(lo, _))) in
                subs.iter().zip(entry.mc.choices().iter().zip(entry.ranges.iter()))
            {
                if let Some(i) = choice {
                    let spec = *entry
                        .specs
                        .get(lo + i)
                        .expect("invariant: choice entries index into their class range");
                    let si = self
                        .src_ids
                        .binary_search(&sub.source)
                        .expect("invariant: subscriptions name sources with templates");
                    let bucket =
                        self.buckets.get_mut(si).expect("invariant: buckets mirror src_ids");
                    // sentinel: allow(hot-alloc, reason = "per-source request buckets are recycled across iterations; steady-state pushes reuse capacity")
                    bucket.push(Request { subscriber: *id, tag: sub.tag, spec });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladders;
    use crate::problem::{ClientSpec, Subscription};
    use crate::solver;
    use crate::types::Resolution;
    use gso_util::Bitrate;

    fn kbps(k: u64) -> Bitrate {
        Bitrate::from_kbps(k)
    }

    /// Full-mesh meeting: `n` clients, everyone subscribes to everyone.
    fn mesh(n: u32, downlinks: &dyn Fn(u32) -> u64) -> Problem {
        let ladder = ladders::paper_table1();
        let clients: Vec<ClientSpec> = (1..=n)
            .map(|i| ClientSpec::new(ClientId(i), kbps(2_000), kbps(downlinks(i)), ladder.clone()))
            .collect();
        let mut subs = Vec::new();
        for i in 1..=n {
            for j in 1..=n {
                if i != j {
                    subs.push(Subscription::new(
                        ClientId(i),
                        SourceId::video(ClientId(j)),
                        Resolution::R720,
                    ));
                }
            }
        }
        Problem::new(clients, subs).expect("valid mesh problem")
    }

    fn assert_identical(engine: &mut SolveEngine, problem: &Problem) {
        let (sol_e, trace_e) = engine.solve_traced(problem);
        let (sol_s, trace_s) = solver::solve_traced(problem, engine.config());
        assert_eq!(sol_e, sol_s);
        assert_eq!(trace_e, trace_s);
    }

    #[test]
    fn cold_solve_matches_solver() {
        let p = mesh(6, &|i| 400 + 300 * u64::from(i));
        let mut engine = SolveEngine::new(SolverConfig::default());
        assert_identical(&mut engine, &p);
        assert!(engine.stats().fresh_recomputes > 0);
    }

    #[test]
    fn warm_resolve_is_all_cache_hits() {
        let p = mesh(6, &|i| 400 + 300 * u64::from(i));
        let mut engine = SolveEngine::new(SolverConfig::default());
        engine.solve(&p);
        let sol1 = engine.solve(&p);
        let before = engine.stats();
        // Second warm solve with a converged (single-iteration) problem:
        // every knapsack must be a full hit.
        let sol2 = engine.solve(&p);
        let after = engine.stats();
        assert_eq!(sol1, sol2);
        if after.iterations - before.iterations == 1 {
            assert_eq!(after.full_hits - before.full_hits, after.knapsacks - before.knapsacks);
            assert_eq!(after.rows_recomputed, before.rows_recomputed);
        }
    }

    #[test]
    fn bandwidth_delta_only_recomputes_that_client() {
        let p = mesh(8, &|_| 1_500);
        let mut engine = SolveEngine::new(SolverConfig::default());
        engine.solve(&p);
        assert_eq!(engine.solve(&p).iterations, 1, "mesh must converge in one iteration");

        // Shrink client 3's downlink: its DP backtracks, everyone else hits.
        let mut clients: Vec<ClientSpec> = p.clients().to_vec();
        clients[2].downlink = kbps(1_200);
        let p2 = Problem::new(clients, p.subscriptions().to_vec()).expect("valid problem");
        let before = engine.stats();
        assert_identical(&mut engine, &p2);
        let after = engine.stats();
        assert_eq!(after.fresh_recomputes, before.fresh_recomputes);
        assert_eq!(after.suffix_recomputes, before.suffix_recomputes);
        assert_eq!(after.backtracks - before.backtracks, 1);
    }

    #[test]
    fn reduction_invalidates_only_subscribers_of_that_source() {
        // Client 1's uplink is too small for what subscribers want, forcing
        // Reductions on source 1; other sources' subscribers stay cached
        // after the first iteration.
        let ladder = ladders::paper_table1();
        let mut clients: Vec<ClientSpec> = (1..=6)
            .map(|i| ClientSpec::new(ClientId(i), kbps(2_000), kbps(2_500), ladder.clone()))
            .collect();
        clients[0].uplink = kbps(150);
        let mut subs = Vec::new();
        for i in 1..=6u32 {
            for j in 1..=6u32 {
                if i != j {
                    subs.push(Subscription::new(
                        ClientId(i),
                        SourceId::video(ClientId(j)),
                        Resolution::R720,
                    ));
                }
            }
        }
        let p = Problem::new(clients, subs).expect("valid problem");
        let mut engine = SolveEngine::new(SolverConfig::default());
        assert_identical(&mut engine, &p);
        let s = engine.stats();
        assert!(s.iterations > 1, "the tight uplink must force reductions");
        // Later iterations reuse rows: strictly fewer rows recomputed than
        // a from-scratch engine would need (iterations × knapsacks × rows).
        assert!(s.full_hits > 0, "non-subscribers must hit the cache across iterations");
        assert!(s.rows_reused > 0);
    }

    #[test]
    fn reconcile_handles_joins_and_leaves() {
        let p6 = mesh(6, &|_| 2_000);
        let mut engine = SolveEngine::new(SolverConfig::default());
        assert_identical(&mut engine, &p6);
        // A client leaves…
        let p5 = Problem::new(
            p6.clients()[..5].to_vec(),
            p6.subscriptions()
                .iter()
                .copied()
                .filter(|s| s.subscriber != ClientId(6) && s.source.client != ClientId(6))
                .collect(),
        )
        .expect("valid problem");
        assert_identical(&mut engine, &p5);
        // …and two new ones join, seeded from the departed client's slabs.
        assert!(engine.pool.idle_states() > 0, "the departed client's DP state must be pooled");
        let p8 = mesh(8, &|_| 2_000);
        assert_identical(&mut engine, &p8);
    }

    #[test]
    fn pool_roundtrip_survives_engine_teardown() {
        let p = mesh(5, &|_| 1_800);
        let mut engine = SolveEngine::new(SolverConfig::default());
        engine.solve(&p);
        let pool = engine.into_pool();
        assert_eq!(pool.idle_states(), 5, "every cached client retires into the pool");

        // A new engine seeded from the pool still matches the solver.
        let mut engine = SolveEngine::new(SolverConfig::default());
        engine.absorb_pool(pool);
        assert_identical(&mut engine, &p);
        assert_eq!(engine.pool.idle_states(), 0, "all five states were re-acquired");
    }

    #[test]
    fn table1_cases_identical_via_engine() {
        let ladder = ladders::paper_table1();
        for bw in [
            [(5_000u64, 1_400u64), (5_000, 3_000), (5_000, 500)],
            [(5_000, 5_000), (600, 5_000), (5_000, 5_000)],
            [(5_000, 5_000), (600, 700), (5_000, 5_000)],
        ] {
            let [a, b, c] = [ClientId(1), ClientId(2), ClientId(3)];
            let clients = vec![
                ClientSpec::new(a, kbps(bw[0].0), kbps(bw[0].1), ladder.clone()),
                ClientSpec::new(b, kbps(bw[1].0), kbps(bw[1].1), ladder.clone()),
                ClientSpec::new(c, kbps(bw[2].0), kbps(bw[2].1), ladder.clone()),
            ];
            let subs = vec![
                Subscription::new(a, SourceId::video(b), Resolution::R360),
                Subscription::new(a, SourceId::video(c), Resolution::R180),
                Subscription::new(b, SourceId::video(a), Resolution::R720),
                Subscription::new(b, SourceId::video(c), Resolution::R360),
                Subscription::new(c, SourceId::video(b), Resolution::R360),
                Subscription::new(c, SourceId::video(a), Resolution::R720),
            ];
            let p = Problem::new(clients, subs).expect("valid problem");
            let mut engine = SolveEngine::new(SolverConfig::default());
            // Cold and warm both match.
            assert_identical(&mut engine, &p);
            assert_identical(&mut engine, &p);
        }
    }
}
