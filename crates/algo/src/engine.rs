//! Incremental, optionally parallel driver for the GSO control algorithm.
//!
//! [`SolveEngine`] produces exactly the same solutions and [`SolveTrace`]s as
//! [`solver::solve`] / [`solver::solve_traced`] — bit-identical, enforced by
//! sharing the Merge/Reduction/assembly code through the solver's internal
//! ladder-view trait — but amortizes work across calls:
//!
//! * **MCKP memoization** — each subscriber keeps a [`McState`] holding the
//!   per-class DP checkpoint rows of its last knapsack. A Reduction only
//!   changes the classes of that source's subscribers, so everyone else's
//!   Step 1 is a pure cache hit, and even affected subscribers recompute only
//!   the DP suffix from the changed class. Across controller ticks the same
//!   memo absorbs the common case where only one client's bandwidth estimate
//!   moved (the ≥15 % event trigger keeps most clients unchanged).
//! * **Allocation hygiene** — no `problem.clone()` per solve: Reduction
//!   results go into a small ladder *overlay* on the borrowed base problem.
//!   Per-client class lists are built into flat reusable scratch buffers
//!   instead of fresh `Vec<Vec<…>>`s every iteration.
//! * **Sharded Step 1** — per-subscriber knapsacks are independent, so cold
//!   solves fan the cache entries across `std::thread::scope` workers in
//!   contiguous chunks; the requests are then merged on the calling thread in
//!   ascending client order, which keeps output byte-for-byte deterministic
//!   and identical to the sequential path. On single-core hosts (or below
//!   [`EngineConfig::parallel_threshold`]) the engine stays sequential.
//!
//! Dirty detection needs no external versioning protocol: a subscriber's
//! class items (quantized weight + boosted value per candidate stream) *are*
//! the cache key. Rebuilding them is `O(Σ ladder len)` per client — orders of
//! magnitude cheaper than the `O(items × W)` DP they guard — and comparing
//! them against the memo inside [`McState::solve_flat`] finds the first
//! changed class exactly.

use crate::mckp::{self, McItem, McOutcome, McReuse, McState};
use crate::problem::{ClientSpec, Problem, SourceId, Subscription};
use crate::solution::Solution;
use crate::solver::{
    assemble, merge_step, reduced_ladder, uplink_step, IterationTrace, LadderView, ReductionTrace,
    Request, SolveTrace, SolverConfig,
};
use crate::types::{Ladder, StreamSpec};
use gso_util::{Bitrate, ClientId};
use std::collections::BTreeMap;

/// Tuning knobs for the engine's execution strategy (not the algorithm —
/// results are identical for every setting).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads for the sharded Step 1. `0` (the default) uses
    /// [`std::thread::available_parallelism`]; `1` forces sequential.
    pub threads: usize,
    /// Minimum number of knapsack-carrying clients before threads are
    /// spawned; below this the spawn overhead dominates.
    pub parallel_threshold: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { threads: 0, parallel_threshold: 32 }
    }
}

/// Cumulative work counters, for benchmarks and regression tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Completed [`SolveEngine::solve`] calls.
    pub solves: u64,
    /// Knapsack–Merge–Reduction iterations across all solves.
    pub iterations: u64,
    /// Per-subscriber knapsack invocations (clients with subscriptions only).
    pub knapsacks: u64,
    /// Knapsacks answered entirely from cache (identical classes+capacity).
    pub full_hits: u64,
    /// Knapsacks that re-ran only the backtrack (capacity moved within the
    /// stored table).
    pub backtracks: u64,
    /// Knapsacks that recomputed only a suffix of their DP rows.
    pub suffix_recomputes: u64,
    /// Knapsacks computed from scratch.
    pub fresh_recomputes: u64,
    /// DP class-rows recomputed (the dominant cost unit of Step 1).
    pub rows_recomputed: u64,
    /// DP class-rows reused from the memo.
    pub rows_reused: u64,
}

/// Per-subscriber cache entry: the memoized DP plus flat scratch buffers.
#[derive(Debug, Default)]
struct ClientEntry {
    /// Incremental MCKP state (checkpoint rows + choice table + memo keys).
    mc: McState,
    /// Flat quantized items of the current class list, rebuilt each call.
    items: Vec<McItem>,
    /// `ranges[c]` delimits class `c` inside `items`.
    ranges: Vec<(usize, usize)>,
    /// Candidate spec behind each flat item (for request materialization).
    specs: Vec<StreamSpec>,
    /// Outcome of the last knapsack, consumed by the stats merge.
    last: Option<McOutcome>,
}

/// Reduction overlay: the base problem's ladders with this solve's shrunken
/// ones on top. Replaces the one-shot solver's `problem.clone()`.
struct Overlay<'a> {
    base: &'a Problem,
    reduced: BTreeMap<SourceId, Ladder>,
}

impl LadderView for Overlay<'_> {
    fn ladder_of(&self, source: SourceId) -> Option<&Ladder> {
        if let Some(l) = self.reduced.get(&source) {
            return Some(l);
        }
        self.base.source(source).map(|s| &s.ladder)
    }
}

/// A reusable solver instance that carries MCKP memos, scratch buffers and
/// work statistics across [`solve`](Self::solve) calls.
#[derive(Debug)]
pub struct SolveEngine {
    cfg: SolverConfig,
    engine_cfg: EngineConfig,
    /// Per-client caches, ascending by id (mirrors `Problem::clients()`).
    caches: Vec<(ClientId, ClientEntry)>,
    stats: EngineStats,
}

impl SolveEngine {
    /// Engine with default execution settings.
    #[must_use]
    pub fn new(cfg: SolverConfig) -> Self {
        Self::with_engine_config(cfg, EngineConfig::default())
    }

    /// Engine with explicit execution settings.
    #[must_use]
    pub fn with_engine_config(cfg: SolverConfig, engine_cfg: EngineConfig) -> Self {
        SolveEngine { cfg, engine_cfg, caches: Vec::new(), stats: EngineStats::default() }
    }

    /// The solver configuration this engine applies.
    #[must_use]
    pub fn config(&self) -> &SolverConfig {
        &self.cfg
    }

    /// Cumulative work counters since construction (or the last
    /// [`reset_stats`](Self::reset_stats)).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Zero the work counters (cache contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Drop every memoized DP table, forcing the next solve cold.
    pub fn clear_cache(&mut self) {
        self.caches.clear();
    }

    /// Solve the orchestration problem. Output is bit-identical to
    /// [`solver::solve`] on the same problem and configuration.
    // sentinel: hot_path(warm-resolve)
    pub fn solve(&mut self, problem: &Problem) -> Solution {
        self.solve_impl(problem, None)
    }

    /// Like [`solve`](Self::solve), additionally returning the
    /// [`SolveTrace`]; both are bit-identical to [`solver::solve_traced`].
    // sentinel: hot_path(warm-resolve-traced)
    pub fn solve_traced(&mut self, problem: &Problem) -> (Solution, SolveTrace) {
        let mut trace = SolveTrace::default();
        let solution = self.solve_impl(problem, Some(&mut trace));
        (solution, trace)
    }

    fn solve_impl(&mut self, problem: &Problem, mut trace: Option<&mut SolveTrace>) -> Solution {
        self.reconcile(problem);
        self.stats.solves += 1;
        // sentinel: allow(hot-alloc, reason = "empty-map constructor does not allocate; entries appear only on ladder reduction")
        let mut overlay = Overlay { base: problem, reduced: BTreeMap::new() };
        let max_iters: usize =
            1 + problem.sources().iter().map(|s| s.ladder.resolutions().len()).sum::<usize>();

        for iteration in 1..=max_iters {
            self.stats.iterations += 1;
            let requests_by_source = self.knapsack_step(problem, &overlay);
            let mut policies = merge_step(&requests_by_source);

            let mut iter_trace = trace.as_ref().map(|_| IterationTrace {
                // sentinel: allow(hot-alloc, reason = "solve-trace capture; allocates only when the caller requested tracing")
                requests: requests_by_source.clone(),
                merged: policies
                    .iter()
                    // sentinel: allow(hot-alloc, reason = "solve-trace capture; allocates only when the caller requested tracing")
                    .map(|(src, ps)| (*src, ps.iter().map(|p| (p.resolution, p.bitrate)).collect()))
                    // sentinel: allow(hot-alloc, reason = "solve-trace capture; allocates only when the caller requested tracing")
                    .collect(),
                // sentinel: allow(hot-alloc, reason = "empty-vec constructor does not allocate")
                repaired: Vec::new(),
                reduction: None,
            });

            // sentinel: allow(hot-alloc, reason = "empty-vec constructor does not allocate; grows only on uplink repair")
            let mut repaired = Vec::new();
            let reduction = uplink_step(
                problem.clients(),
                &overlay,
                &mut policies,
                self.cfg.unit,
                &mut repaired,
            );
            if let Some(t) = iter_trace.as_mut() {
                t.repaired = repaired;
            }

            if let Some((source, res)) = reduction {
                let shrunk = reduced_ladder(&overlay, source, res);
                if let Some(t) = iter_trace.take() {
                    if let Some(trace) = trace.as_mut() {
                        // sentinel: allow(hot-alloc, reason = "solve-trace capture; allocates only when the caller requested tracing")
                        trace.iterations.push(IterationTrace {
                            reduction: Some(ReductionTrace {
                                source,
                                resolution: res,
                                remaining_at_resolution: shrunk.at_resolution(res).len(),
                            }),
                            ..t
                        });
                    }
                }
                // sentinel: allow(hot-alloc, reason = "ladder reduction is the iteration-bounded slow branch, not the steady-state re-solve")
                overlay.reduced.insert(source, shrunk);
                continue;
            }

            if let Some(t) = iter_trace.take() {
                if let Some(trace) = trace.as_mut() {
                    // sentinel: allow(hot-alloc, reason = "solve-trace capture; allocates only when the caller requested tracing")
                    trace.iterations.push(t);
                }
            }

            let solution = assemble(problem, &overlay, policies, iteration);
            debug_assert!(
                solution.validate(problem).is_ok(),
                "engine emitted an invalid solution: {:?}",
                solution.validate(problem)
            );
            debug_assert!(
                solution.iterations <= max_iters,
                "engine exceeded the convergence bound: {} > {max_iters}",
                solution.iterations
            );
            return solution;
        }

        // sentinel: allow(hot-panic, reason = "convergence proof: every iteration without a solution strictly shrinks one ladder, so max_iters bounds the loop")
        unreachable!("the reduction step strictly shrinks a ladder each iteration");
    }

    /// Align the cache vector with the problem's client list: entries for
    /// departed clients are dropped, new clients get empty entries, everyone
    /// else keeps their memo. Linear merge-join over two sorted sequences.
    fn reconcile(&mut self, problem: &Problem) {
        let old = std::mem::take(&mut self.caches);
        // sentinel: allow(hot-alloc, reason = "cache vector is rebuilt each solve; buffer reuse is tracked by the zero-alloc roadmap item")
        self.caches.reserve(problem.clients().len());
        let mut old_iter = old.into_iter().peekable();
        for client in problem.clients() {
            while old_iter.peek().is_some_and(|(id, _)| *id < client.id) {
                old_iter.next();
            }
            if old_iter.peek().is_some_and(|(id, _)| *id == client.id) {
                let entry = old_iter.next().expect("invariant: just peeked");
                // sentinel: allow(hot-alloc, reason = "push into the capacity reserved above; never reallocates")
                self.caches.push(entry);
            } else {
                // sentinel: allow(hot-alloc, reason = "push into the capacity reserved above; never reallocates")
                self.caches.push((client.id, ClientEntry::default()));
            }
        }
    }

    /// Worker count for this host and configuration.
    fn effective_threads(&self) -> usize {
        if self.engine_cfg.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.engine_cfg.threads
        }
    }

    /// Step 1 over all subscribers, sharded when worthwhile, then merged in
    /// ascending client order (identical to the sequential solver's order).
    fn knapsack_step(
        &mut self,
        problem: &Problem,
        overlay: &Overlay<'_>,
    ) -> BTreeMap<SourceId, Vec<Request>> {
        let unit = self.cfg.unit;
        let threads = self.effective_threads();
        let n = self.caches.len();

        if threads > 1 && n >= self.engine_cfg.parallel_threshold {
            let chunk = n.div_ceil(threads);
            // detguard: allow(unordered-merge, reason = "workers write disjoint cache shards; results are merged below on the calling thread in ascending client order, bit-identical to the sequential path (verified by engine_equivalence and merge_model tests)")
            std::thread::scope(|s| {
                for shard in self.caches.chunks_mut(chunk) {
                    s.spawn(move || {
                        for (id, entry) in shard {
                            let subs = problem.subscriptions_of_slice(*id);
                            if subs.is_empty() {
                                continue;
                            }
                            let client =
                                problem.client(*id).expect("invariant: caches were reconciled");
                            entry.last = Some(client_knapsack(entry, client, subs, overlay, unit));
                        }
                    });
                }
            });
        } else {
            for (id, entry) in &mut self.caches {
                let subs = problem.subscriptions_of_slice(*id);
                if subs.is_empty() {
                    continue;
                }
                let client = problem.client(*id).expect("invariant: caches were reconciled");
                entry.last = Some(client_knapsack(entry, client, subs, overlay, unit));
            }
        }

        // Deterministic merge: caches are in ascending client order, requests
        // within a client in subscription order — exactly the sequential
        // solver's insertion order.
        // sentinel: allow(hot-alloc, reason = "empty-map constructor does not allocate; request buckets are part of the zero-alloc roadmap item")
        let mut requests_by_source: BTreeMap<SourceId, Vec<Request>> = BTreeMap::new();
        for (id, entry) in &mut self.caches {
            let subs = problem.subscriptions_of_slice(*id);
            if subs.is_empty() {
                continue;
            }
            // The DP solved exactly one class per subscription, so choices
            // and ranges zip against subs without residue.
            for (sub, (&choice, &(lo, _))) in
                subs.iter().zip(entry.mc.choices().iter().zip(entry.ranges.iter()))
            {
                if let Some(i) = choice {
                    let spec = *entry
                        .specs
                        .get(lo + i)
                        .expect("invariant: choice entries index into their class range");
                    // sentinel: allow(hot-alloc, reason = "request assembly per solve; bucket reuse is tracked by the zero-alloc roadmap item")
                    requests_by_source.entry(sub.source).or_default().push(Request {
                        subscriber: *id,
                        tag: sub.tag,
                        spec,
                    });
                }
            }
            if let Some(out) = entry.last.take() {
                self.stats.knapsacks += 1;
                let k = out.classes as u64;
                match out.reuse {
                    McReuse::Full => {
                        self.stats.full_hits += 1;
                        self.stats.rows_reused += k;
                    }
                    McReuse::Backtrack => {
                        self.stats.backtracks += 1;
                        self.stats.rows_reused += k;
                    }
                    McReuse::Suffix { first_recomputed } => {
                        self.stats.suffix_recomputes += 1;
                        self.stats.rows_reused += first_recomputed as u64;
                        self.stats.rows_recomputed += k - first_recomputed as u64;
                    }
                    McReuse::Fresh => {
                        self.stats.fresh_recomputes += 1;
                        self.stats.rows_recomputed += k;
                    }
                }
            }
        }
        requests_by_source
    }
}

/// One subscriber's Step 1: rebuild the flat class items against the current
/// ladder overlay and run the incremental DP.
///
/// Class construction mirrors the one-shot solver exactly: classes in
/// subscription (source, tag) order, items the ladder specs at resolution
/// `≤ max_resolution` ascending by bitrate, weight = `⌈bitrate/unit⌉`,
/// value = `qoe × boost + presence`, capacity = `⌊downlink/unit⌋`.
fn client_knapsack(
    entry: &mut ClientEntry,
    client: &ClientSpec,
    subs: &[Subscription],
    ladders: &Overlay<'_>,
    unit: Bitrate,
) -> McOutcome {
    entry.items.clear();
    entry.ranges.clear();
    entry.specs.clear();
    for sub in subs {
        let lo = entry.items.len();
        if let Some(ladder) = ladders.ladder_of(sub.source) {
            for spec in ladder.specs() {
                if spec.resolution <= sub.max_resolution {
                    // sentinel: allow(hot-alloc, reason = "per-client scratch retained across solves; steady-state pushes reuse capacity")
                    entry.specs.push(*spec);
                    // sentinel: allow(hot-alloc, reason = "per-client scratch retained across solves; steady-state pushes reuse capacity")
                    entry.items.push(McItem {
                        weight: mckp::quantize_weight(spec.bitrate, unit),
                        value: spec.qoe * sub.qoe_boost + sub.presence_bonus,
                    });
                }
            }
        }
        // sentinel: allow(hot-alloc, reason = "per-client scratch retained across solves; steady-state pushes reuse capacity")
        entry.ranges.push((lo, entry.items.len()));
    }
    entry.mc.solve_flat(&entry.items, &entry.ranges, mckp::quantize_capacity(client.downlink, unit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladders;
    use crate::problem::ClientSpec;
    use crate::solver;
    use crate::types::Resolution;

    fn kbps(k: u64) -> Bitrate {
        Bitrate::from_kbps(k)
    }

    /// Full-mesh meeting: `n` clients, everyone subscribes to everyone.
    fn mesh(n: u32, downlinks: &dyn Fn(u32) -> u64) -> Problem {
        let ladder = ladders::paper_table1();
        let clients: Vec<ClientSpec> = (1..=n)
            .map(|i| ClientSpec::new(ClientId(i), kbps(2_000), kbps(downlinks(i)), ladder.clone()))
            .collect();
        let mut subs = Vec::new();
        for i in 1..=n {
            for j in 1..=n {
                if i != j {
                    subs.push(Subscription::new(
                        ClientId(i),
                        SourceId::video(ClientId(j)),
                        Resolution::R720,
                    ));
                }
            }
        }
        Problem::new(clients, subs).expect("valid mesh problem")
    }

    fn assert_identical(engine: &mut SolveEngine, problem: &Problem) {
        let (sol_e, trace_e) = engine.solve_traced(problem);
        let (sol_s, trace_s) = solver::solve_traced(problem, engine.config());
        assert_eq!(sol_e, sol_s);
        assert_eq!(trace_e, trace_s);
    }

    #[test]
    fn cold_solve_matches_solver() {
        let p = mesh(6, &|i| 400 + 300 * u64::from(i));
        let mut engine = SolveEngine::new(SolverConfig::default());
        assert_identical(&mut engine, &p);
        assert!(engine.stats().fresh_recomputes > 0);
    }

    #[test]
    fn warm_resolve_is_all_cache_hits() {
        let p = mesh(6, &|i| 400 + 300 * u64::from(i));
        let mut engine = SolveEngine::new(SolverConfig::default());
        engine.solve(&p);
        let sol1 = engine.solve(&p);
        let before = engine.stats();
        // Second warm solve with a converged (single-iteration) problem:
        // every knapsack must be a full hit.
        let sol2 = engine.solve(&p);
        let after = engine.stats();
        assert_eq!(sol1, sol2);
        if after.iterations - before.iterations == 1 {
            assert_eq!(after.full_hits - before.full_hits, after.knapsacks - before.knapsacks);
            assert_eq!(after.rows_recomputed, before.rows_recomputed);
        }
    }

    #[test]
    fn bandwidth_delta_only_recomputes_that_client() {
        let p = mesh(8, &|_| 1_500);
        let mut engine = SolveEngine::new(SolverConfig::default());
        engine.solve(&p);
        assert_eq!(engine.solve(&p).iterations, 1, "mesh must converge in one iteration");

        // Shrink client 3's downlink: its DP backtracks, everyone else hits.
        let mut clients: Vec<ClientSpec> = p.clients().to_vec();
        clients[2].downlink = kbps(1_200);
        let p2 = Problem::new(clients, p.subscriptions().to_vec()).expect("valid problem");
        let before = engine.stats();
        assert_identical(&mut engine, &p2);
        let after = engine.stats();
        assert_eq!(after.fresh_recomputes, before.fresh_recomputes);
        assert_eq!(after.suffix_recomputes, before.suffix_recomputes);
        assert_eq!(after.backtracks - before.backtracks, 1);
    }

    #[test]
    fn reduction_invalidates_only_subscribers_of_that_source() {
        // Client 1's uplink is too small for what subscribers want, forcing
        // Reductions on source 1; other sources' subscribers stay cached
        // after the first iteration.
        let ladder = ladders::paper_table1();
        let mut clients: Vec<ClientSpec> = (1..=6)
            .map(|i| ClientSpec::new(ClientId(i), kbps(2_000), kbps(2_500), ladder.clone()))
            .collect();
        clients[0].uplink = kbps(150);
        let mut subs = Vec::new();
        for i in 1..=6u32 {
            for j in 1..=6u32 {
                if i != j {
                    subs.push(Subscription::new(
                        ClientId(i),
                        SourceId::video(ClientId(j)),
                        Resolution::R720,
                    ));
                }
            }
        }
        let p = Problem::new(clients, subs).expect("valid problem");
        let mut engine = SolveEngine::new(SolverConfig::default());
        assert_identical(&mut engine, &p);
        let s = engine.stats();
        assert!(s.iterations > 1, "the tight uplink must force reductions");
        // Later iterations reuse rows: strictly fewer rows recomputed than
        // a from-scratch engine would need (iterations × knapsacks × rows).
        assert!(s.full_hits > 0, "non-subscribers must hit the cache across iterations");
        assert!(s.rows_reused > 0);
    }

    #[test]
    fn parallel_output_identical_to_sequential() {
        let p = mesh(9, &|i| 500 + 251 * u64::from(i));
        let mut seq = SolveEngine::with_engine_config(
            SolverConfig::default(),
            EngineConfig { threads: 1, parallel_threshold: 0 },
        );
        let mut par = SolveEngine::with_engine_config(
            SolverConfig::default(),
            EngineConfig { threads: 3, parallel_threshold: 0 },
        );
        let (sol_seq, trace_seq) = seq.solve_traced(&p);
        let (sol_par, trace_par) = par.solve_traced(&p);
        assert_eq!(sol_seq, sol_par);
        assert_eq!(trace_seq, trace_par);
        // And both match the reference solver.
        let (sol_ref, trace_ref) = solver::solve_traced(&p, &SolverConfig::default());
        assert_eq!(sol_par, sol_ref);
        assert_eq!(trace_par, trace_ref);
    }

    #[test]
    fn reconcile_handles_joins_and_leaves() {
        let p6 = mesh(6, &|_| 2_000);
        let mut engine = SolveEngine::new(SolverConfig::default());
        assert_identical(&mut engine, &p6);
        // A client leaves…
        let p5 = Problem::new(
            p6.clients()[..5].to_vec(),
            p6.subscriptions()
                .iter()
                .copied()
                .filter(|s| s.subscriber != ClientId(6) && s.source.client != ClientId(6))
                .collect(),
        )
        .expect("valid problem");
        assert_identical(&mut engine, &p5);
        // …and two new ones join.
        let p8 = mesh(8, &|_| 2_000);
        assert_identical(&mut engine, &p8);
    }

    #[test]
    fn table1_cases_identical_via_engine() {
        let ladder = ladders::paper_table1();
        for bw in [
            [(5_000u64, 1_400u64), (5_000, 3_000), (5_000, 500)],
            [(5_000, 5_000), (600, 5_000), (5_000, 5_000)],
            [(5_000, 5_000), (600, 700), (5_000, 5_000)],
        ] {
            let [a, b, c] = [ClientId(1), ClientId(2), ClientId(3)];
            let clients = vec![
                ClientSpec::new(a, kbps(bw[0].0), kbps(bw[0].1), ladder.clone()),
                ClientSpec::new(b, kbps(bw[1].0), kbps(bw[1].1), ladder.clone()),
                ClientSpec::new(c, kbps(bw[2].0), kbps(bw[2].1), ladder.clone()),
            ];
            let subs = vec![
                Subscription::new(a, SourceId::video(b), Resolution::R360),
                Subscription::new(a, SourceId::video(c), Resolution::R180),
                Subscription::new(b, SourceId::video(a), Resolution::R720),
                Subscription::new(b, SourceId::video(c), Resolution::R360),
                Subscription::new(c, SourceId::video(b), Resolution::R360),
                Subscription::new(c, SourceId::video(a), Resolution::R720),
            ];
            let p = Problem::new(clients, subs).expect("valid problem");
            let mut engine = SolveEngine::new(SolverConfig::default());
            // Cold and warm both match.
            assert_identical(&mut engine, &p);
            assert_identical(&mut engine, &p);
        }
    }
}
