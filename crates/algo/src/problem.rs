//! The global stream orchestration problem instance.
//!
//! A [`Problem`] captures the "global picture" the conference node assembles
//! (§4.2): every client's uplink/downlink bandwidth, the feasible stream set
//! of each of its media sources (from SDP + `simulcastInfo` negotiation), and
//! the subscription relations between clients, including per-subscription
//! maximum resolutions and priority boosts.

use crate::tenant::Tenancy;
use crate::types::{Ladder, Resolution};
use gso_util::{Bitrate, ClientId, StreamKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Identifies one media source of a publisher (camera or screen share).
///
/// A camera video and a screen-share video have different SSRC families and
/// are never merged by the controller (§4.4, footnote 6), so they are
/// distinct sources here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourceId {
    /// The publishing client.
    pub client: ClientId,
    /// Camera ([`StreamKind::Video`]) or screen share ([`StreamKind::Screen`]).
    pub kind: StreamKind,
}

impl SourceId {
    /// The camera source of a client.
    pub fn video(client: ClientId) -> Self {
        SourceId { client, kind: StreamKind::Video }
    }

    /// The screen-share source of a client.
    pub fn screen(client: ClientId) -> Self {
        SourceId { client, kind: StreamKind::Screen }
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.client, self.kind)
    }
}

/// A publisher-side media source together with its feasible stream set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PublisherSource {
    /// Which source this is.
    pub id: SourceId,
    /// The feasible stream set `S_i` negotiated for this source.
    pub ladder: Ladder,
}

/// A conference participant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientSpec {
    /// Participant identity.
    pub id: ClientId,
    /// Uplink bandwidth constraint `B_u` (sum of published bitrates ≤ this).
    pub uplink: Bitrate,
    /// Downlink bandwidth constraint `B_d` (sum of subscribed bitrates ≤ this).
    pub downlink: Bitrate,
    /// Media sources this client can publish (possibly empty for
    /// receive-only participants).
    pub sources: Vec<PublisherSource>,
}

impl ClientSpec {
    /// A client with a single camera source.
    pub fn new(id: ClientId, uplink: Bitrate, downlink: Bitrate, ladder: Ladder) -> Self {
        ClientSpec {
            id,
            uplink,
            downlink,
            sources: vec![PublisherSource { id: SourceId::video(id), ladder }],
        }
    }

    /// A receive-only client (no sources).
    pub fn subscriber_only(id: ClientId, downlink: Bitrate) -> Self {
        ClientSpec { id, uplink: Bitrate::ZERO, downlink, sources: Vec::new() }
    }

    /// Look up one of this client's sources.
    pub fn source(&self, id: SourceId) -> Option<&PublisherSource> {
        self.sources.iter().find(|s| s.id == id)
    }
}

/// A subscription intent: `subscriber` wants one stream from `source`, at a
/// resolution no greater than `max_resolution` (`R_ii'` in §4.1).
///
/// `tag` distinguishes multiple subscriptions from the same subscriber to the
/// same source — the "virtual publisher" construction of §4.4 used by
/// speaker-first (thumbnail + high-resolution view of one camera). Distinct
/// tags form distinct knapsack classes in Step 1 and are merged back per
/// resolution in Step 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Subscription {
    /// The receiving client.
    pub subscriber: ClientId,
    /// The publisher source subscribed to.
    pub source: SourceId,
    /// Maximum acceptable resolution.
    pub max_resolution: Resolution,
    /// Multiplier on the QoE weights of this subscription's candidate
    /// streams; used to prioritize the speaker or screen share (§4.4).
    pub qoe_boost: f64,
    /// Flat utility credited for receiving *any* stream on this
    /// subscription. Seeing a participant at all is worth much more than
    /// the marginal bits between two ladder rungs; this is what makes the
    /// knapsack "accommodate both with reduced bitrate rather than drop
    /// one stream" (§4.4's small-stream protection) even under priority
    /// boosts.
    pub presence_bonus: f64,
    /// Virtual-publisher tag; 0 for the ordinary single subscription.
    pub tag: u8,
}

/// Default presence bonus, roughly the utility of a 180P thumbnail.
pub const DEFAULT_PRESENCE_BONUS: f64 = 150.0;

impl Subscription {
    /// An ordinary (tag 0, boost 1.0) subscription.
    pub fn new(subscriber: ClientId, source: SourceId, max_resolution: Resolution) -> Self {
        Subscription {
            subscriber,
            source,
            max_resolution,
            qoe_boost: 1.0,
            presence_bonus: DEFAULT_PRESENCE_BONUS,
            tag: 0,
        }
    }

    /// Override the presence bonus.
    pub fn with_presence(mut self, bonus: f64) -> Self {
        self.presence_bonus = bonus;
        self
    }

    /// Set the priority boost.
    pub fn with_boost(mut self, boost: f64) -> Self {
        self.qoe_boost = boost;
        self
    }

    /// Set the virtual-publisher tag.
    pub fn with_tag(mut self, tag: u8) -> Self {
        self.tag = tag;
        self
    }
}

/// Problem validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProblemError {
    /// Two clients share an id.
    DuplicateClient(ClientId),
    /// A subscription references a client that is not in the problem.
    UnknownClient(ClientId),
    /// A subscription references a source its publisher does not have.
    UnknownSource(SourceId),
    /// A client subscribes to its own source, which §4.1 forbids
    /// (`N_i ⊆ I \ {i}`).
    SelfSubscription(ClientId),
    /// Two subscriptions share (subscriber, source, tag).
    DuplicateSubscription(ClientId, SourceId, u8),
    /// A QoE boost is not finite and positive.
    InvalidBoost,
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::DuplicateClient(c) => write!(f, "duplicate client {c}"),
            ProblemError::UnknownClient(c) => write!(f, "subscription references unknown {c}"),
            ProblemError::UnknownSource(s) => {
                write!(f, "subscription references unknown source {s}")
            }
            ProblemError::SelfSubscription(c) => write!(f, "{c} subscribes to itself"),
            ProblemError::DuplicateSubscription(c, s, t) => {
                write!(f, "duplicate subscription ({c}, {s}, tag {t})")
            }
            ProblemError::InvalidBoost => write!(f, "QoE boost must be finite and > 0"),
        }
    }
}

impl std::error::Error for ProblemError {}

/// A validated orchestration problem instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Problem {
    clients: Vec<ClientSpec>,
    subscriptions: Vec<Subscription>,
    /// Who owns this conference and at which service tier. The solver never
    /// reads it; the fleet's admission/shedding layer does.
    tenancy: Tenancy,
}

impl Problem {
    /// Build and validate a problem.
    ///
    /// Clients are sorted by id; subscriptions by (subscriber, publisher
    /// source, tag). The deterministic ordering is what makes the solver's
    /// tie-breaking reproducible.
    pub fn new(
        mut clients: Vec<ClientSpec>,
        mut subscriptions: Vec<Subscription>,
    ) -> Result<Self, ProblemError> {
        clients.sort_by_key(|c| c.id);
        for w in clients.windows(2) {
            if let [a, b] = w {
                if a.id == b.id {
                    return Err(ProblemError::DuplicateClient(a.id));
                }
            }
        }
        subscriptions.sort_by_key(|s| (s.subscriber, s.source, s.tag));
        // sentinel: allow(hot-alloc, reason = "construction-time validation; one tree per problem build, not per DP cell")
        let mut seen = BTreeSet::new();
        for s in &subscriptions {
            if !s.qoe_boost.is_finite() || s.qoe_boost <= 0.0 {
                return Err(ProblemError::InvalidBoost);
            }
            if s.subscriber == s.source.client {
                return Err(ProblemError::SelfSubscription(s.subscriber));
            }
            let publisher = clients
                .iter()
                .find(|c| c.id == s.source.client)
                .ok_or(ProblemError::UnknownClient(s.source.client))?;
            if !clients.iter().any(|c| c.id == s.subscriber) {
                return Err(ProblemError::UnknownClient(s.subscriber));
            }
            if publisher.source(s.source).is_none() {
                return Err(ProblemError::UnknownSource(s.source));
            }
            // sentinel: allow(hot-alloc, reason = "construction-time validation; one tree per problem build, not per DP cell")
            if !seen.insert((s.subscriber, s.source, s.tag)) {
                return Err(ProblemError::DuplicateSubscription(s.subscriber, s.source, s.tag));
            }
        }
        Ok(Problem { clients, subscriptions, tenancy: Tenancy::default() })
    }

    /// Attach a tenancy label (default: tenant 0, normal priority — the
    /// single-tenant behavior). Tenancy is a control-plane label; it does
    /// not affect what the solver computes for this conference, only how
    /// the fleet treats it under contention.
    pub fn with_tenancy(mut self, tenancy: Tenancy) -> Self {
        self.tenancy = tenancy;
        self
    }

    /// The conference's tenancy label.
    pub fn tenancy(&self) -> Tenancy {
        self.tenancy
    }

    /// All clients, ascending by id.
    pub fn clients(&self) -> &[ClientSpec] {
        &self.clients
    }

    /// All subscriptions, in deterministic order.
    pub fn subscriptions(&self) -> &[Subscription] {
        &self.subscriptions
    }

    /// Look up a client by id (binary search; clients are sorted and unique).
    pub fn client(&self, id: ClientId) -> Option<&ClientSpec> {
        self.clients.binary_search_by_key(&id, |c| c.id).ok().and_then(|i| self.clients.get(i))
    }

    /// Look up a source across all clients.
    pub fn source(&self, id: SourceId) -> Option<&PublisherSource> {
        self.client(id.client).and_then(|c| c.source(id))
    }

    /// Subscriptions held by a given subscriber (the classes of its Step-1
    /// knapsack), in deterministic order.
    pub fn subscriptions_of(&self, subscriber: ClientId) -> Vec<&Subscription> {
        // sentinel: allow(hot-alloc, reason = "owned-snapshot convenience API; hot callers use subscriptions_of_slice")
        self.subscriptions_of_slice(subscriber).iter().collect()
    }

    /// Like [`Self::subscriptions_of`], but as the underlying contiguous
    /// slice: subscriptions are sorted by (subscriber, source, tag), so one
    /// subscriber's subscriptions form a run locatable by binary search —
    /// no per-call allocation.
    pub fn subscriptions_of_slice(&self, subscriber: ClientId) -> &[Subscription] {
        let lo = self.subscriptions.partition_point(|s| s.subscriber < subscriber);
        let hi = self.subscriptions.partition_point(|s| s.subscriber <= subscriber);
        self.subscriptions
            .get(lo..hi)
            .expect("invariant: partition points are ordered and in range")
    }

    /// Look up one subscription by its unique (subscriber, source, tag) key
    /// (binary search over the sorted, duplicate-free subscription list).
    pub fn subscription(
        &self,
        subscriber: ClientId,
        source: SourceId,
        tag: u8,
    ) -> Option<&Subscription> {
        self.subscriptions
            .binary_search_by_key(&(subscriber, source, tag), |s| (s.subscriber, s.source, s.tag))
            .ok()
            .and_then(|i| self.subscriptions.get(i))
    }

    /// Subscriptions targeting a given source (`M_i` plus requested caps).
    pub fn subscribers_of(&self, source: SourceId) -> Vec<&Subscription> {
        // sentinel: allow(hot-alloc, reason = "owned-snapshot convenience API over an unsorted-by-source axis")
        self.subscriptions.iter().filter(|s| s.source == source).collect()
    }

    /// All publisher sources in the problem, in client order.
    pub fn sources(&self) -> Vec<&PublisherSource> {
        // sentinel: allow(hot-alloc, reason = "owned-snapshot convenience API; bounded by publisher count, not DP size")
        self.clients.iter().flat_map(|c| c.sources.iter()).collect()
    }

    /// Replace the ladder of one source (used by the Step-3 Reduction, which
    /// shrinks the feasible stream set and re-runs Step 1).
    pub(crate) fn set_ladder(&mut self, id: SourceId, ladder: Ladder) {
        if let Some(client) = self.clients.iter_mut().find(|c| c.id == id.client) {
            if let Some(src) = client.sources.iter_mut().find(|s| s.id == id) {
                src.ladder = ladder;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::StreamSpec;

    fn ladder() -> Ladder {
        Ladder::new(vec![
            StreamSpec::new(Resolution::R180, Bitrate::from_kbps(100), 100.0),
            StreamSpec::new(Resolution::R720, Bitrate::from_kbps(1500), 1200.0),
        ])
        .unwrap()
    }

    fn client(id: u32) -> ClientSpec {
        ClientSpec::new(ClientId(id), Bitrate::from_mbps(5), Bitrate::from_mbps(5), ladder())
    }

    #[test]
    fn valid_problem_builds() {
        let p = Problem::new(
            vec![client(2), client(1)],
            vec![Subscription::new(ClientId(1), SourceId::video(ClientId(2)), Resolution::R720)],
        )
        .unwrap();
        assert_eq!(p.clients()[0].id, ClientId(1), "clients sorted by id");
        assert_eq!(p.subscriptions_of(ClientId(1)).len(), 1);
        assert_eq!(p.subscribers_of(SourceId::video(ClientId(2))).len(), 1);
        assert_eq!(p.sources().len(), 2);
    }

    #[test]
    fn rejects_self_subscription() {
        let err = Problem::new(
            vec![client(1)],
            vec![Subscription::new(ClientId(1), SourceId::video(ClientId(1)), Resolution::R720)],
        )
        .unwrap_err();
        assert_eq!(err, ProblemError::SelfSubscription(ClientId(1)));
    }

    #[test]
    fn rejects_unknown_client_and_source() {
        let err = Problem::new(
            vec![client(1)],
            vec![Subscription::new(ClientId(1), SourceId::video(ClientId(9)), Resolution::R720)],
        )
        .unwrap_err();
        assert_eq!(err, ProblemError::UnknownClient(ClientId(9)));

        let err = Problem::new(
            vec![client(1), client(2)],
            vec![Subscription::new(ClientId(1), SourceId::screen(ClientId(2)), Resolution::R720)],
        )
        .unwrap_err();
        assert_eq!(err, ProblemError::UnknownSource(SourceId::screen(ClientId(2))));
    }

    #[test]
    fn rejects_duplicates() {
        let err = Problem::new(vec![client(1), client(1)], vec![]).unwrap_err();
        assert_eq!(err, ProblemError::DuplicateClient(ClientId(1)));

        let sub = Subscription::new(ClientId(1), SourceId::video(ClientId(2)), Resolution::R720);
        let err = Problem::new(vec![client(1), client(2)], vec![sub, sub]).unwrap_err();
        assert!(matches!(err, ProblemError::DuplicateSubscription(..)));
    }

    #[test]
    fn distinct_tags_allowed() {
        let s0 = Subscription::new(ClientId(1), SourceId::video(ClientId(2)), Resolution::R180);
        let s1 = Subscription::new(ClientId(1), SourceId::video(ClientId(2)), Resolution::R720)
            .with_tag(1);
        let p = Problem::new(vec![client(1), client(2)], vec![s0, s1]).unwrap();
        assert_eq!(p.subscriptions_of(ClientId(1)).len(), 2);
    }

    #[test]
    fn rejects_bad_boost() {
        let s = Subscription::new(ClientId(1), SourceId::video(ClientId(2)), Resolution::R720)
            .with_boost(0.0);
        let err = Problem::new(vec![client(1), client(2)], vec![s]).unwrap_err();
        assert_eq!(err, ProblemError::InvalidBoost);
    }
}
