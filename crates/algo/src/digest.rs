//! [`StateDigest`] implementations for the algorithm layer.
//!
//! Everything the solver emits — [`Solution`], [`SolveTrace`], and the
//! engine's [`EngineStats`] — can be fingerprinted with a stable 64-bit
//! digest. The audit binary and the engine-equivalence property tests use
//! these to assert that the incremental/sharded [`crate::SolveEngine`] is
//! *bit-identical* to the sequential solver: not merely equal QoE, but the
//! same policies, audiences, float bit patterns, and trace structure.

use crate::engine::EngineStats;
use crate::problem::SourceId;
use crate::solution::{PublishPolicy, ReceivedStream, Solution};
use crate::solver::{IterationTrace, ReductionTrace, Request, SolveTrace};
use crate::types::{Ladder, Resolution, StreamSpec};
use gso_detguard::{StableHasher, StateDigest};

impl StateDigest for Resolution {
    fn digest(&self, h: &mut StableHasher) {
        h.write_u64(u64::from(self.0));
    }
}

impl StateDigest for StreamSpec {
    fn digest(&self, h: &mut StableHasher) {
        self.resolution.digest(h);
        self.bitrate.digest(h);
        h.write_f64(self.qoe);
    }
}

impl StateDigest for Ladder {
    fn digest(&self, h: &mut StableHasher) {
        self.specs().digest(h);
    }
}

impl StateDigest for SourceId {
    fn digest(&self, h: &mut StableHasher) {
        self.client.digest(h);
        self.kind.digest(h);
    }
}

impl StateDigest for PublishPolicy {
    fn digest(&self, h: &mut StableHasher) {
        self.resolution.digest(h);
        self.bitrate.digest(h);
        self.audience.digest(h);
    }
}

impl StateDigest for ReceivedStream {
    fn digest(&self, h: &mut StableHasher) {
        self.source.digest(h);
        h.write_u8(self.tag);
        self.resolution.digest(h);
        self.bitrate.digest(h);
        h.write_f64(self.qoe);
    }
}

impl StateDigest for Solution {
    fn digest(&self, h: &mut StableHasher) {
        self.publish.digest(h);
        self.received.digest(h);
        h.write_f64(self.total_qoe);
        self.iterations.digest(h);
    }
}

impl StateDigest for Request {
    fn digest(&self, h: &mut StableHasher) {
        self.subscriber.digest(h);
        h.write_u8(self.tag);
        self.spec.digest(h);
    }
}

impl StateDigest for ReductionTrace {
    fn digest(&self, h: &mut StableHasher) {
        self.source.digest(h);
        self.resolution.digest(h);
        self.remaining_at_resolution.digest(h);
    }
}

impl StateDigest for IterationTrace {
    fn digest(&self, h: &mut StableHasher) {
        self.requests.digest(h);
        self.merged.digest(h);
        self.repaired.digest(h);
        self.reduction.digest(h);
    }
}

impl StateDigest for SolveTrace {
    fn digest(&self, h: &mut StableHasher) {
        self.iterations.digest(h);
    }
}

impl StateDigest for EngineStats {
    fn digest(&self, h: &mut StableHasher) {
        h.write_u64(self.solves);
        h.write_u64(self.iterations);
        h.write_u64(self.knapsacks);
        h.write_u64(self.full_hits);
        h.write_u64(self.backtracks);
        h.write_u64(self.suffix_recomputes);
        h.write_u64(self.fresh_recomputes);
        h.write_u64(self.rows_recomputed);
        h.write_u64(self.rows_reused);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ClientSpec, Problem, Subscription};
    use crate::solver;
    use gso_util::{Bitrate, ClientId};

    fn problem() -> Problem {
        let ladder = crate::ladders::paper_table1();
        Problem::new(
            vec![
                ClientSpec::new(
                    ClientId(1),
                    Bitrate::from_mbps(5),
                    Bitrate::from_mbps(3),
                    ladder.clone(),
                ),
                ClientSpec::new(
                    ClientId(2),
                    Bitrate::from_mbps(1),
                    Bitrate::from_kbps(900),
                    ladder,
                ),
            ],
            vec![
                Subscription::new(ClientId(1), SourceId::video(ClientId(2)), Resolution::R720),
                Subscription::new(ClientId(2), SourceId::video(ClientId(1)), Resolution::R720),
            ],
        )
        .unwrap()
    }

    #[test]
    fn solution_and_trace_digests_replay() {
        let p = problem();
        let cfg = solver::SolverConfig::default();
        let (s1, t1) = solver::solve_traced(&p, &cfg);
        let (s2, t2) = solver::solve_traced(&p, &cfg);
        assert_eq!(s1.state_digest(), s2.state_digest());
        assert_eq!(t1.state_digest(), t2.state_digest());
    }

    #[test]
    fn solution_digest_is_sensitive_to_qoe_bits() {
        let p = problem();
        let s = solver::solve(&p, &solver::SolverConfig::default());
        let mut tweaked = s.clone();
        tweaked.total_qoe = f64::from_bits(tweaked.total_qoe.to_bits() ^ 1);
        assert_ne!(s.state_digest(), tweaked.state_digest());
    }

    #[test]
    fn ladder_digest_distinguishes_audiences() {
        let a = PublishPolicy {
            resolution: Resolution::R720,
            bitrate: Bitrate::from_kbps(1500),
            audience: vec![(ClientId(2), 0), (ClientId(3), 1)],
        };
        let mut b = a.clone();
        b.audience.swap(0, 1);
        assert_ne!(a.state_digest(), b.state_digest(), "audience order is part of the state");
    }
}
