//! Solution diffs — the minimal reconfiguration between controller rounds.
//!
//! The controller re-solves every 1–3 s; most rounds change little. The
//! diff identifies exactly which publisher layers must be reconfigured and
//! which subscribers must be switched, which is what the feedback executor
//! transmits and what operators watch to judge churn (reconfigurations cost
//! quality: every layer switch splices on a keyframe).

use crate::problem::SourceId;
use crate::solution::Solution;
use crate::types::Resolution;
use gso_util::{Bitrate, ClientId};
use std::collections::BTreeMap;

/// One publisher layer whose target changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerChange {
    /// The source whose layer changed.
    pub source: SourceId,
    /// The layer's resolution.
    pub resolution: Resolution,
    /// Previous bitrate (zero = was disabled).
    pub from: Bitrate,
    /// New bitrate (zero = now disabled).
    pub to: Bitrate,
}

/// One subscriber whose selected stream changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchChange {
    /// The receiving client.
    pub subscriber: ClientId,
    /// The source it receives from.
    pub source: SourceId,
    /// Virtual-publisher tag.
    pub tag: u8,
    /// Previous (resolution, bitrate); `None` = was not receiving.
    pub from: Option<(Resolution, Bitrate)>,
    /// New (resolution, bitrate); `None` = no longer receiving.
    pub to: Option<(Resolution, Bitrate)>,
}

/// The difference between two solutions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolutionDiff {
    /// Publisher-side layer reconfigurations (GTMB content).
    pub layer_changes: Vec<LayerChange>,
    /// Subscriber-side stream switches (forwarding-rule content).
    pub switch_changes: Vec<SwitchChange>,
}

impl SolutionDiff {
    /// True when nothing changed — the controller round was a no-op.
    pub fn is_empty(&self) -> bool {
        self.layer_changes.is_empty() && self.switch_changes.is_empty()
    }

    /// Number of subscribers that experience a visible switch.
    pub fn switched_subscribers(&self) -> usize {
        let mut subs: Vec<ClientId> = self.switch_changes.iter().map(|c| c.subscriber).collect();
        subs.sort();
        subs.dedup();
        subs.len()
    }
}

/// Compute the reconfiguration from `old` to `new`.
pub fn diff(old: &Solution, new: &Solution) -> SolutionDiff {
    let mut out = SolutionDiff::default();

    // Publisher layers: per (source, resolution) → bitrate (0 = absent).
    let layer_map = |s: &Solution| -> BTreeMap<(SourceId, Resolution), Bitrate> {
        s.publish
            .iter()
            .flat_map(|(&src, ps)| ps.iter().map(move |p| ((src, p.resolution), p.bitrate)))
            // sentinel: allow(hot-alloc, reason = "per-solve delta computation over solution snapshots; map reuse is tracked by the zero-alloc roadmap item")
            .collect()
    };
    let old_layers = layer_map(old);
    let new_layers = layer_map(new);
    let mut keys: Vec<(SourceId, Resolution)> =
        // sentinel: allow(hot-alloc, reason = "per-solve delta computation over solution snapshots; map reuse is tracked by the zero-alloc roadmap item")
        old_layers.keys().chain(new_layers.keys()).copied().collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        let from = old_layers.get(&key).copied().unwrap_or(Bitrate::ZERO);
        let to = new_layers.get(&key).copied().unwrap_or(Bitrate::ZERO);
        if from != to {
            // sentinel: allow(hot-alloc, reason = "per-solve delta computation over solution snapshots; map reuse is tracked by the zero-alloc roadmap item")
            out.layer_changes.push(LayerChange { source: key.0, resolution: key.1, from, to });
        }
    }

    // Subscriber streams: per (subscriber, source, tag).
    let recv_map = |s: &Solution| -> BTreeMap<(ClientId, SourceId, u8), (Resolution, Bitrate)> {
        s.received
            .iter()
            .flat_map(|(&sub, rs)| {
                rs.iter().map(move |r| ((sub, r.source, r.tag), (r.resolution, r.bitrate)))
            })
            // sentinel: allow(hot-alloc, reason = "per-solve delta computation over solution snapshots; map reuse is tracked by the zero-alloc roadmap item")
            .collect()
    };
    let old_recv = recv_map(old);
    let new_recv = recv_map(new);
    let mut keys: Vec<(ClientId, SourceId, u8)> =
        // sentinel: allow(hot-alloc, reason = "per-solve delta computation over solution snapshots; map reuse is tracked by the zero-alloc roadmap item")
        old_recv.keys().chain(new_recv.keys()).copied().collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        let from = old_recv.get(&key).copied();
        let to = new_recv.get(&key).copied();
        if from != to {
            // sentinel: allow(hot-alloc, reason = "per-solve delta computation over solution snapshots; map reuse is tracked by the zero-alloc roadmap item")
            out.switch_changes.push(SwitchChange {
                subscriber: key.0,
                source: key.1,
                tag: key.2,
                from,
                to,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladders;
    use crate::problem::{ClientSpec, Problem, Subscription};
    use crate::solver::{self, SolverConfig};

    fn solve_with_downlink(down_kbps: u64) -> (Problem, Solution) {
        let ladder = ladders::paper_table1();
        let a = ClientId(1);
        let b = ClientId(2);
        let p = Problem::new(
            vec![
                ClientSpec::new(a, Bitrate::from_mbps(5), Bitrate::from_mbps(5), ladder.clone()),
                ClientSpec::new(b, Bitrate::from_mbps(5), Bitrate::from_kbps(down_kbps), ladder),
            ],
            vec![Subscription::new(b, SourceId::video(a), crate::types::Resolution::R720)],
        )
        .unwrap();
        let s = solver::solve(&p, &SolverConfig::default());
        (p, s)
    }

    #[test]
    fn identical_solutions_diff_empty() {
        let (_, s) = solve_with_downlink(2_000);
        let d = diff(&s, &s);
        assert!(d.is_empty());
        assert_eq!(d.switched_subscribers(), 0);
    }

    #[test]
    fn downlink_drop_produces_layer_and_switch_changes() {
        let (_, before) = solve_with_downlink(2_000); // 720P 1.5M
        let (_, after) = solve_with_downlink(700); // 360P 600K
        let d = diff(&before, &after);
        assert!(!d.is_empty());
        // The 720P layer turns off, the 360P layer turns on.
        assert!(d
            .layer_changes
            .iter()
            .any(|c| c.resolution == crate::types::Resolution::R720 && c.to == Bitrate::ZERO));
        assert!(d.layer_changes.iter().any(|c| c.resolution == crate::types::Resolution::R360
            && c.from == Bitrate::ZERO
            && c.to == Bitrate::from_kbps(600)));
        // Exactly one subscriber switches.
        assert_eq!(d.switched_subscribers(), 1);
        let sw = &d.switch_changes[0];
        assert_eq!(sw.from.map(|(r, _)| r), Some(crate::types::Resolution::R720));
        assert_eq!(sw.to.map(|(_, b)| b), Some(Bitrate::from_kbps(600)));
    }

    #[test]
    fn diff_from_empty_solution_lists_everything_as_new() {
        let (_, s) = solve_with_downlink(2_000);
        let d = diff(&Solution::default(), &s);
        assert!(d.layer_changes.iter().all(|c| c.from == Bitrate::ZERO));
        assert!(d.switch_changes.iter().all(|c| c.from.is_none()));
        assert!(!d.is_empty());
    }
}
