//! Stream specifications and bitrate ladders.
//!
//! A publisher's *feasible stream set* `S_i` (§4.1 of the paper) is modelled
//! as a [`Ladder`]: a list of [`StreamSpec`]s, each associating a bitrate
//! with a unique resolution and QoE-utility weight. GSO-Simulcast's key
//! enabler is a *fine-grained* ladder (up to 15 bitrate levels in the
//! production deployment) versus the coarse 2–3 level ladders of traditional
//! Simulcast.

use gso_util::Bitrate;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A video resolution, identified by its vertical line count (180, 360, 720…).
///
/// Ordering follows line count, so `R180 < R360 < R720`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Resolution(pub u16);

impl Resolution {
    /// 320×180 thumbnail.
    pub const R180: Resolution = Resolution(180);
    /// 640×360 standard.
    pub const R360: Resolution = Resolution(360);
    /// 1280×720 high definition.
    pub const R720: Resolution = Resolution(720);
    /// 1920×1080 full high definition.
    pub const R1080: Resolution = Resolution(1080);

    /// Approximate pixel count assuming 16:9 aspect.
    pub fn pixels(self) -> u64 {
        let h = u64::from(self.0);
        let w = h * 16 / 9;
        w * h
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}P", self.0)
    }
}

/// One entry of a publisher's feasible stream set: a bitrate together with
/// its resolution (`Res_i`) and QoE utility weight (`QoE_i`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Resolution this bitrate encodes.
    pub resolution: Resolution,
    /// Target media bitrate.
    pub bitrate: Bitrate,
    /// QoE utility weight used by the controller's objective.
    pub qoe: f64,
}

impl StreamSpec {
    /// Convenience constructor.
    pub fn new(resolution: Resolution, bitrate: Bitrate, qoe: f64) -> Self {
        StreamSpec { resolution, bitrate, qoe }
    }
}

impl fmt::Display for StreamSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.resolution, self.bitrate)
    }
}

/// Errors detected when validating a [`Ladder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LadderError {
    /// Two entries share the same bitrate; the paper requires each bitrate to
    /// map to a unique resolution and QoE weight.
    DuplicateBitrate(Bitrate),
    /// A QoE weight is not finite or is negative.
    InvalidQoe,
    /// Within a resolution, a higher bitrate has lower (or equal) QoE; the
    /// objective would then never use the higher bitrate.
    NonMonotoneQoe(Resolution),
}

impl fmt::Display for LadderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LadderError::DuplicateBitrate(b) => write!(f, "duplicate bitrate {b} in ladder"),
            LadderError::InvalidQoe => write!(f, "QoE weight must be finite and non-negative"),
            LadderError::NonMonotoneQoe(r) => {
                write!(f, "QoE must increase with bitrate within resolution {r}")
            }
        }
    }
}

impl std::error::Error for LadderError {}

/// A publisher's feasible stream set `S_i`: the bitrates it is able to
/// encode, each tagged with resolution and QoE weight.
///
/// Entries are kept sorted by ascending bitrate; this ordering is also the
/// item order used by the multiple-choice knapsack DP, which makes its
/// tie-breaking deterministic.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Ladder {
    specs: Vec<StreamSpec>,
}

impl Ladder {
    /// Build a ladder from specs, sorting by bitrate and validating:
    /// bitrates must be unique (and non-zero), QoE weights finite and
    /// non-negative, and QoE strictly increasing with bitrate within each
    /// resolution.
    pub fn new(mut specs: Vec<StreamSpec>) -> Result<Self, LadderError> {
        specs.sort_by_key(|s| s.bitrate);
        for w in specs.windows(2) {
            if w[0].bitrate == w[1].bitrate {
                return Err(LadderError::DuplicateBitrate(w[0].bitrate));
            }
        }
        for s in &specs {
            if !s.qoe.is_finite() || s.qoe < 0.0 || s.bitrate.is_zero() {
                return Err(LadderError::InvalidQoe);
            }
        }
        let mut by_res: Vec<(Resolution, f64)> = Vec::new();
        for s in &specs {
            // Specs are sorted by bitrate, so within a resolution we see
            // ascending bitrates; QoE must ascend along with them.
            if let Some(&mut (_, ref mut last)) =
                by_res.iter_mut().find(|(r, _)| *r == s.resolution)
            {
                if s.qoe <= *last {
                    return Err(LadderError::NonMonotoneQoe(s.resolution));
                }
                *last = s.qoe;
            } else {
                by_res.push((s.resolution, s.qoe));
            }
        }
        Ok(Ladder { specs })
    }

    /// The empty ladder (publisher cannot send video).
    pub fn empty() -> Self {
        Ladder { specs: Vec::new() }
    }

    /// All specs, ascending by bitrate.
    pub fn specs(&self) -> &[StreamSpec] {
        &self.specs
    }

    /// Number of bitrate levels.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True if the ladder has no entries.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Distinct resolutions present, ascending.
    pub fn resolutions(&self) -> Vec<Resolution> {
        // sentinel: allow(hot-alloc, reason = "owned-snapshot ladder API; warm-path callers hoist the result out of the per-round loop")
        let mut rs: Vec<Resolution> = self.specs.iter().map(|s| s.resolution).collect();
        rs.sort();
        rs.dedup();
        rs
    }

    /// Number of distinct resolutions, without materializing them (the
    /// solver's convergence bound sums this per source on every solve).
    pub fn distinct_resolutions(&self) -> usize {
        self.specs
            .iter()
            .enumerate()
            .filter(|&(i, s)| !self.specs.iter().take(i).any(|t| t.resolution == s.resolution))
            .count()
    }

    /// Specs at exactly the given resolution (`S_i^R` in the paper),
    /// ascending by bitrate.
    pub fn at_resolution(&self, r: Resolution) -> Vec<StreamSpec> {
        // sentinel: allow(hot-alloc, reason = "owned-snapshot ladder API; warm-path callers hoist the result out of the per-round loop")
        self.specs.iter().copied().filter(|s| s.resolution == r).collect()
    }

    /// Specs with resolution `<= max_res` (`S_ii'`, the feasible set under a
    /// subscription's resolution cap), ascending by bitrate.
    pub fn capped(&self, max_res: Resolution) -> Vec<StreamSpec> {
        self.specs.iter().copied().filter(|s| s.resolution <= max_res).collect()
    }

    /// The smallest bitrate at the given resolution, if any
    /// (`min_{s in S_i^R} s`, used by the Step-3 fixability test, Eq. 17).
    pub fn min_bitrate_at(&self, r: Resolution) -> Option<Bitrate> {
        // Specs are ascending by bitrate, so the first match is the minimum;
        // scanning in place keeps the Step-3 fixability test allocation-free.
        self.specs.iter().find(|s| s.resolution == r).map(|s| s.bitrate)
    }

    /// Look up the spec with this exact bitrate.
    pub fn spec_for_bitrate(&self, b: Bitrate) -> Option<StreamSpec> {
        self.specs.iter().copied().find(|s| s.bitrate == b)
    }

    /// A copy of this ladder with every spec at resolution `r` removed
    /// (`S_i^update = S_i \ S_i^R̃`, Eq. 19 — the Reduction step).
    pub fn without_resolution(&self, r: Resolution) -> Ladder {
        // sentinel: allow(hot-alloc, reason = "owned-snapshot ladder API; warm-path callers hoist the result out of the per-round loop")
        Ladder { specs: self.specs.iter().copied().filter(|s| s.resolution != r).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(res: u16, kbps: u64, qoe: f64) -> StreamSpec {
        StreamSpec::new(Resolution(res), Bitrate::from_kbps(kbps), qoe)
    }

    #[test]
    fn ladder_sorts_and_queries() {
        let l = Ladder::new(vec![
            spec(720, 1500, 1200.0),
            spec(180, 100, 100.0),
            spec(360, 600, 530.0),
        ])
        .unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l.specs()[0].bitrate, Bitrate::from_kbps(100));
        assert_eq!(l.resolutions(), vec![Resolution::R180, Resolution::R360, Resolution::R720]);
        assert_eq!(l.capped(Resolution::R360).len(), 2);
        assert_eq!(l.min_bitrate_at(Resolution::R720), Some(Bitrate::from_kbps(1500)));
        assert_eq!(l.min_bitrate_at(Resolution::R1080), None);
    }

    #[test]
    fn ladder_rejects_duplicate_bitrate() {
        let err = Ladder::new(vec![spec(720, 600, 700.0), spec(360, 600, 500.0)]).unwrap_err();
        assert_eq!(err, LadderError::DuplicateBitrate(Bitrate::from_kbps(600)));
    }

    #[test]
    fn ladder_rejects_non_monotone_qoe() {
        let err = Ladder::new(vec![spec(360, 400, 500.0), spec(360, 600, 400.0)]).unwrap_err();
        assert_eq!(err, LadderError::NonMonotoneQoe(Resolution::R360));
    }

    #[test]
    fn ladder_rejects_zero_bitrate_and_bad_qoe() {
        assert_eq!(
            Ladder::new(vec![StreamSpec::new(Resolution::R180, Bitrate::ZERO, 1.0)]).unwrap_err(),
            LadderError::InvalidQoe
        );
        assert_eq!(
            Ladder::new(vec![spec(180, 100, f64::NAN)]).unwrap_err(),
            LadderError::InvalidQoe
        );
    }

    #[test]
    fn without_resolution_removes_all_entries() {
        let l = Ladder::new(vec![
            spec(720, 1500, 1200.0),
            spec(720, 1000, 750.0),
            spec(180, 100, 100.0),
        ])
        .unwrap();
        let r = l.without_resolution(Resolution::R720);
        assert_eq!(r.len(), 1);
        assert_eq!(r.resolutions(), vec![Resolution::R180]);
    }

    #[test]
    fn resolution_ordering_and_pixels() {
        assert!(Resolution::R180 < Resolution::R720);
        assert_eq!(Resolution::R180.pixels(), 320 * 180);
        assert_eq!(Resolution::R720.to_string(), "720P");
    }
}
