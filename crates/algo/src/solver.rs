//! The GSO control algorithm: iterative Knapsack → Merge → Reduction (§4.1).
//!
//! Each iteration:
//!
//! 1. **Knapsack** — for every subscriber independently, fill its downlink
//!    with at most one stream per subscription, maximizing QoE utility
//!    (a multiple-choice knapsack, Eq. 1–4, solved by [`crate::mckp`]).
//! 2. **Merge** — per publisher source, group the requested streams by
//!    resolution and merge each group to its *minimum* requested bitrate
//!    (Eq. 10–12), enforcing the codec constraint of at most one stream per
//!    resolution.
//! 3. **Reduction** — check every publisher's uplink (Eq. 14). A violation
//!    is *fixable* if the per-resolution minima still fit (Eq. 17): then
//!    bitrates are lowered within their resolutions (a small knapsack,
//!    Eq. 16). Otherwise the highest offending resolution is removed from
//!    that publisher's feasible set (Eq. 18–20) — one publisher at a time —
//!    and the algorithm re-runs from Step 1.
//!
//! The loop terminates because every non-terminal iteration strictly shrinks
//! one source's feasible set by a whole resolution, so the iteration count is
//! bounded by Σ_sources |resolutions| (the paper's convergence argument).

use crate::mckp;
use crate::problem::{ClientSpec, Problem, SourceId, Subscription};
use crate::solution::{PublishPolicy, ReceivedStream, Solution};
use crate::types::{Ladder, Resolution, StreamSpec};
use gso_util::{Bitrate, ClientId};
use std::collections::BTreeMap;

/// Solver tuning knobs.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Bandwidth quantization unit for the knapsack DP. Production ladders
    /// are multiples of 50–100 kbps, so the default of 10 kbps is exact for
    /// them while keeping the DP tables small.
    pub unit: Bitrate,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig { unit: Bitrate::from_kbps(10) }
    }
}

/// What one subscriber requested from one subscription after Step 1:
/// the `(i, s_ii')` pairs of the candidate set `D_i'` (Eq. 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// The requesting subscriber.
    pub subscriber: ClientId,
    /// Virtual-publisher tag of the subscription.
    pub tag: u8,
    /// The stream the subscriber's knapsack selected.
    pub spec: StreamSpec,
}

/// One Reduction event (Eq. 18–20): a whole resolution removed from one
/// source's feasible set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionTrace {
    /// The source whose ladder shrank.
    pub source: SourceId,
    /// The resolution that was removed.
    pub resolution: Resolution,
    /// Ladder entries at `resolution` *after* the removal. The Reduction
    /// step must remove whole resolutions, so this is invariantly zero;
    /// the auditor verifies it.
    pub remaining_at_resolution: usize,
}

/// Record of one Knapsack–Merge–Reduction iteration, kept for auditing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IterationTrace {
    /// Step-1 output: per source, what every subscriber requested.
    pub requests: BTreeMap<SourceId, Vec<Request>>,
    /// Step-2 output: per source, the merged `(resolution, min bitrate)`
    /// pairs (Eq. 12) — before any Step-3 uplink repair lowers them.
    pub merged: BTreeMap<SourceId, Vec<(Resolution, Bitrate)>>,
    /// Clients whose uplink overflow was repaired in place (the "fixable"
    /// branch of Step 3, Eq. 16–17); their final bitrates may sit below
    /// the merged minima.
    pub repaired: Vec<ClientId>,
    /// The Reduction taken this iteration, if any (`None` on the terminal
    /// iteration).
    pub reduction: Option<ReductionTrace>,
}

/// Full solver execution trace: evidence for the invariants that cannot be
/// established from a `(Problem, Solution)` pair alone (the merge-minimum
/// rule needs the Step-1 requests; the reduction rule needs ladder diffs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveTrace {
    /// One entry per iteration, in execution order; the last entry is the
    /// terminal iteration that produced the solution.
    pub iterations: Vec<IterationTrace>,
}

/// Solve the orchestration problem with the GSO control algorithm.
pub fn solve(problem: &Problem, cfg: &SolverConfig) -> Solution {
    solve_impl(problem, cfg, None)
}

/// Like [`solve`], additionally returning the per-iteration [`SolveTrace`]
/// that `gso-audit` uses to verify solver-internal invariants.
pub fn solve_traced(problem: &Problem, cfg: &SolverConfig) -> (Solution, SolveTrace) {
    let mut trace = SolveTrace::default();
    let solution = solve_impl(problem, cfg, Some(&mut trace));
    (solution, trace)
}

/// Ladder lookup shared by the one-shot solver (a cloned working problem
/// whose ladders Reduction shrinks in place) and the incremental
/// [`crate::engine::SolveEngine`] (an overlay of reduced ladders on the base
/// problem). Merge, uplink repair, Reduction and assembly are generic over
/// this trait, so the two paths share one implementation and cannot diverge.
pub(crate) trait LadderView {
    /// The current (possibly Reduction-shrunk) ladder of `source`.
    fn ladder_of(&self, source: SourceId) -> Option<&Ladder>;
}

impl LadderView for Problem {
    fn ladder_of(&self, source: SourceId) -> Option<&Ladder> {
        self.source(source).map(|s| &s.ladder)
    }
}

fn solve_impl(
    problem: &Problem,
    cfg: &SolverConfig,
    mut trace: Option<&mut SolveTrace>,
) -> Solution {
    // Working copy whose ladders the Reduction step shrinks.
    let mut wp = problem.clone();
    // Upper bound on iterations per the convergence argument, plus one for
    // the terminal iteration.
    let max_iters: usize = 1 + convergence_bound(problem);

    for iteration in 1..=max_iters {
        // ---- Step 1: per-subscriber multiple-choice knapsack -------------
        let requests_by_source = knapsack_step(&wp, cfg);

        // ---- Step 2: merge per resolution ---------------------------------
        let mut policies = merge_step(requests_by_source.iter().map(|(s, v)| (*s, v.as_slice())));

        let mut iter_trace = trace.as_ref().map(|_| IterationTrace {
            requests: requests_by_source.clone(),
            merged: policies
                .iter()
                .map(|(src, ps)| (*src, ps.iter().map(|p| (p.resolution, p.bitrate)).collect()))
                .collect(),
            repaired: Vec::new(),
            reduction: None,
        });

        // ---- Step 3: uplink check / repair / reduction --------------------
        let mut repaired = Vec::new();
        let reduction = uplink_step(wp.clients(), &wp, &mut policies, cfg.unit, &mut repaired);
        if let Some(t) = iter_trace.as_mut() {
            t.repaired = repaired;
        }

        if let Some((source, res)) = reduction {
            let shrunk = reduced_ladder(&wp, source, res);
            if let Some(t) = iter_trace.take() {
                if let Some(trace) = trace.as_mut() {
                    trace.iterations.push(IterationTrace {
                        reduction: Some(ReductionTrace {
                            source,
                            resolution: res,
                            remaining_at_resolution: shrunk.at_resolution(res).len(),
                        }),
                        ..t
                    });
                }
            }
            wp.set_ladder(source, shrunk);
            continue;
        }

        if let Some(t) = iter_trace.take() {
            if let Some(trace) = trace.as_mut() {
                trace.iterations.push(t);
            }
        }

        // Terminal iteration: assemble the solution.
        let solution = assemble(problem, &wp, policies, iteration);
        // Solver-exit audit hook (debug builds only): the solution must
        // satisfy every §4.1 constraint family and the convergence bound.
        debug_assert!(
            solution.validate(problem).is_ok(),
            "solver emitted an invalid solution: {:?}",
            solution.validate(problem)
        );
        debug_assert!(
            solution.iterations <= max_iters,
            "solver exceeded the convergence bound: {} > {max_iters}",
            solution.iterations
        );
        return solution;
    }

    unreachable!("the reduction step strictly shrinks a ladder each iteration");
}

/// Σ_sources |resolutions|: every non-terminal iteration removes one whole
/// resolution from one source's ladder, so this bounds the iteration count.
/// Walks the client list directly to stay allocation-free on the solve path.
pub(crate) fn convergence_bound(problem: &Problem) -> usize {
    problem
        .clients()
        .iter()
        .flat_map(|c| c.sources.iter())
        .map(|s| s.ladder.distinct_resolutions())
        .sum()
}

/// Step 1 for the one-shot path: every subscriber's MCKP, solved fresh.
/// (The incremental engine has its own Step 1 with memoized DP state; both
/// produce requests in identical client-then-subscription order.)
fn knapsack_step(wp: &Problem, cfg: &SolverConfig) -> BTreeMap<SourceId, Vec<Request>> {
    let mut requests_by_source: BTreeMap<SourceId, Vec<Request>> = BTreeMap::new();
    for client in wp.clients() {
        let subs: &[Subscription] = wp.subscriptions_of_slice(client.id);
        if subs.is_empty() {
            continue;
        }
        // Classes in deterministic (source, tag) order; items ascending
        // by bitrate — both required for reproducible tie-breaking.
        let class_items: Vec<Vec<StreamSpec>> = subs
            .iter()
            .map(|s| {
                wp.source(s.source)
                    .map(|src| src.ladder.capped(s.max_resolution))
                    .unwrap_or_default()
            })
            .collect();
        let classes: Vec<Vec<(Bitrate, f64)>> = class_items
            .iter()
            .zip(subs)
            .map(|(items, sub)| {
                items
                    .iter()
                    .map(|i| (i.bitrate, i.qoe * sub.qoe_boost + sub.presence_bonus))
                    .collect()
            })
            .collect();
        let picked = mckp::solve_bitrates(&classes, client.downlink, cfg.unit);
        for ((sub, items), choice) in subs.iter().zip(&class_items).zip(&picked.choices) {
            if let Some(i) = choice {
                requests_by_source.entry(sub.source).or_default().push(Request {
                    subscriber: client.id,
                    tag: sub.tag,
                    spec: items[*i],
                });
            }
        }
    }
    requests_by_source
}

/// Step 2: per source, group the requested streams by resolution and merge
/// each group to its *minimum* requested bitrate (Meg(), Eq. 12).
///
/// Generic over any ascending-`SourceId` iteration of request slices so the
/// one-shot solver's `BTreeMap` and the engine's flat per-source buckets
/// share one implementation. Grouping is a linear scan over a handful of
/// resolutions (≤4 in every production ladder) sorted ascending at the end —
/// the same (resolution-ascending, audience-in-request-order) output the
/// previous `BTreeMap` grouping produced, without its per-node allocations.
pub(crate) fn merge_step<'a, I>(requests_by_source: I) -> BTreeMap<SourceId, Vec<PublishPolicy>>
where
    I: IntoIterator<Item = (SourceId, &'a [Request])>,
{
    // sentinel: allow(hot-alloc, reason = "per-solve merge output; the policies move into the Solution the caller retains")
    let mut policies: BTreeMap<SourceId, Vec<PublishPolicy>> = BTreeMap::new();
    for (source, reqs) in requests_by_source {
        // sentinel: allow(hot-alloc, reason = "per-solve merge output; one group per distinct requested resolution (≤4)")
        let mut groups: Vec<PublishPolicy> = Vec::new();
        for r in reqs {
            match groups.iter_mut().find(|g| g.resolution == r.spec.resolution) {
                Some(g) => {
                    g.bitrate = g.bitrate.min(r.spec.bitrate); // Meg(): s_i^R = min (Eq. 12)
                                                               // sentinel: allow(hot-alloc, reason = "per-solve merge output; the audiences move into the Solution the caller retains")
                    g.audience.push((r.subscriber, r.tag));
                }
                // sentinel: allow(hot-alloc, reason = "per-solve merge output; the policies move into the Solution the caller retains")
                None => groups.push(PublishPolicy {
                    resolution: r.spec.resolution,
                    bitrate: r.spec.bitrate,
                    // sentinel: allow(hot-alloc, reason = "per-solve merge output; the audiences move into the Solution the caller retains")
                    audience: vec![(r.subscriber, r.tag)],
                }),
            }
        }
        // One group per resolution, so keys are unique and the unstable sort
        // is deterministic; audiences keep their request order.
        groups.sort_unstable_by_key(|g| g.resolution);
        // sentinel: allow(hot-alloc, reason = "per-solve merge output; the policies move into the Solution the caller retains")
        policies.insert(source, groups);
    }
    policies
}

/// Step 3: check every publisher's uplink (Eq. 14), repairing fixable
/// overflows in place (Eq. 16–17, recorded in `repaired`) and returning the
/// first non-fixable one as a Reduction target (Eq. 18) — one publisher at a
/// time, per the paper.
pub(crate) fn uplink_step<L: LadderView>(
    clients: &[ClientSpec],
    ladders: &L,
    policies: &mut BTreeMap<SourceId, Vec<PublishPolicy>>,
    unit: Bitrate,
    repaired: &mut Vec<ClientId>,
) -> Option<(SourceId, Resolution)> {
    for client in clients {
        // The client's sources are walked in place (typically 1-2 of them);
        // the check itself allocates nothing.
        let total: Bitrate = client
            .sources
            .iter()
            .flat_map(|s| policies.get(&s.id).into_iter().flatten())
            .map(|p| p.bitrate)
            .sum();
        if total <= client.uplink {
            continue;
        }
        // Fixability (Eq. 17): can we fit by taking the smallest bitrate
        // at each already-selected resolution?
        let min_total: Bitrate = client
            .sources
            .iter()
            .flat_map(|s| policies.get(&s.id).into_iter().flatten().map(move |p| (s.id, p)))
            .map(|(src, p)| {
                ladders
                    .ladder_of(src)
                    .and_then(|l| l.min_bitrate_at(p.resolution))
                    .unwrap_or(p.bitrate)
            })
            .sum();
        if min_total <= client.uplink {
            repair_uplink(ladders, policies, client.id, client.uplink, unit);
            // sentinel: allow(hot-alloc, reason = "repair audit trail; pushes only on the rare overflow-repair branch")
            repaired.push(client.id);
        } else {
            // Not fixable: drop the highest resolution this client
            // currently publishes (Eq. 18) and restart.
            return client
                .sources
                .iter()
                .flat_map(|s| policies.get(&s.id).into_iter().flatten().map(move |p| (s.id, p)))
                .max_by_key(|(_, p)| (p.resolution, p.bitrate))
                .map(|(src, p)| (src, p.resolution));
        }
    }
    None
}

/// The ladder of `source` with `res` removed (Eq. 18–20).
pub(crate) fn reduced_ladder<L: LadderView>(
    ladders: &L,
    source: SourceId,
    res: Resolution,
) -> Ladder {
    ladders
        .ladder_of(source)
        .expect("invariant: reduction targets a source present in the problem")
        .without_resolution(res)
}

/// Lower bitrates within their resolutions so one client's uplink fits
/// (the "fixable" branch of Step 3).
///
/// Each affected policy is a mandatory knapsack class whose items are the
/// ladder entries at the policy's resolution with bitrate ≤ the current one;
/// the value of an item counts the whole audience (each subscriber keeps
/// receiving, at the lower bitrate). The combination count is small —
/// `Π |S_i^R ∩ (0, s_i^R]]` over at most a handful of policies — which is why
/// the paper brute-forces it; the DP here is equivalent and deterministic.
fn repair_uplink<L: LadderView>(
    ladders: &L,
    policies: &mut BTreeMap<SourceId, Vec<PublishPolicy>>,
    client: ClientId,
    uplink: Bitrate,
    unit: Bitrate,
) {
    // Collect this client's policies as (source, index) handles.
    let handles: Vec<(SourceId, usize)> = policies
        .iter()
        .filter(|(src, _)| src.client == client)
        .flat_map(|(src, ps)| (0..ps.len()).map(move |i| (*src, i)))
        // sentinel: allow(hot-alloc, reason = "overflow-repair branch only; bounded by one client's policy count")
        .collect();

    // Candidate specs per policy, ascending bitrate (deterministic DP ties).
    // sentinel: allow(hot-alloc, reason = "overflow-repair branch only; bounded by one client's policy count")
    let mut candidates: Vec<Vec<StreamSpec>> = Vec::with_capacity(handles.len());
    for &(src, i) in &handles {
        let p = policies
            .get(&src)
            .and_then(|ps| ps.get(i))
            .expect("invariant: repair handles were collected from this map");
        let specs: Vec<StreamSpec> = ladders
            .ladder_of(src)
            .map(|l| {
                l.at_resolution(p.resolution)
                    .into_iter()
                    .filter(|spec| spec.bitrate <= p.bitrate)
                    // sentinel: allow(hot-alloc, reason = "overflow-repair branch only; bounded by ladder size")
                    .collect()
            })
            .unwrap_or_default();
        // sentinel: allow(hot-alloc, reason = "overflow-repair branch only; bounded by one client's policy count")
        candidates.push(specs);
    }

    // Every class must pick an item: a policy cannot be dropped here — only
    // the Reduction step removes streams. The plain MCKP allows skipping a
    // class, which could blow the budget once the skipped class falls back
    // to its minimum; instead, reserve every class's minimum up front and
    // let the DP spend the remaining budget on *upgrades* (weight and value
    // relative to the minimum). Eq. 17 guarantees the reserved minima fit.
    let mut reserved = Bitrate::ZERO;
    for cands in &candidates {
        if let Some(min) = cands.first() {
            reserved += min.bitrate;
        }
    }
    let upgrade_budget = uplink.saturating_sub(reserved);
    let classes: Vec<Vec<(Bitrate, f64)>> = handles
        .iter()
        .zip(&candidates)
        .map(|(&(src, i), cands)| {
            let p = policies
                .get(&src)
                .and_then(|ps| ps.get(i))
                .expect("invariant: repair handles were collected from this map");
            let audience_weight: f64 = p.audience.len() as f64;
            // sentinel: allow(hot-alloc, reason = "overflow-repair branch only; empty-vec constructor does not allocate")
            let Some(min) = cands.first() else { return Vec::new() };
            cands
                .iter()
                .skip(1)
                .map(|s| (s.bitrate - min.bitrate, (s.qoe - min.qoe) * audience_weight))
                // sentinel: allow(hot-alloc, reason = "overflow-repair branch only; bounded by ladder size")
                .collect()
        })
        // sentinel: allow(hot-alloc, reason = "overflow-repair branch only; bounded by one client's policy count")
        .collect();
    let picked = mckp::solve_bitrates(&classes, upgrade_budget, unit);
    for ((&(src, i), choice), cands) in handles.iter().zip(&picked.choices).zip(&candidates) {
        if cands.is_empty() {
            continue;
        }
        let spec = match choice {
            // Upgrade item `c` corresponds to candidate `c + 1` (the
            // minimum was skipped when building the class).
            Some(c) => *cands
                .get(*c + 1)
                .expect("invariant: upgrade choices map to candidates past the reserved minimum"),
            None => *cands.first().expect("invariant: emptiness checked above"),
        };
        let p = policies
            .get_mut(&src)
            .and_then(|ps| ps.get_mut(i))
            .expect("invariant: repair handles were collected from this map");
        p.bitrate = spec.bitrate;
    }
}

/// Build the final [`Solution`] from the merged policies.
pub(crate) fn assemble<L: LadderView>(
    original: &Problem,
    working: &L,
    policies: BTreeMap<SourceId, Vec<PublishPolicy>>,
    iterations: usize,
) -> Solution {
    // sentinel: allow(hot-alloc, reason = "solution assembly builds the owned output the caller retains")
    let mut received: BTreeMap<ClientId, Vec<ReceivedStream>> = BTreeMap::new();
    let mut total_qoe = 0.0;
    for (source, ps) in &policies {
        let ladder = working
            .ladder_of(*source)
            .expect("invariant: policies only name sources of the working problem");
        for p in ps {
            let spec = ladder.spec_for_bitrate(p.bitrate).expect(
                "invariant: merge picks the minimum of ladder entries, itself a ladder entry",
            );
            for &(sub, tag) in &p.audience {
                let (boost, presence) = original
                    .subscription(sub, *source, tag)
                    .map_or((1.0, 0.0), |s| (s.qoe_boost, s.presence_bonus));
                let qoe = spec.qoe * boost + presence;
                total_qoe += qoe;
                // sentinel: allow(hot-alloc, reason = "solution assembly builds the owned output the caller retains")
                received.entry(sub).or_default().push(ReceivedStream {
                    source: *source,
                    tag,
                    resolution: p.resolution,
                    bitrate: p.bitrate,
                    qoe,
                });
            }
        }
    }
    Solution { publish: policies, received, total_qoe, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladders;
    use crate::problem::ClientSpec;

    fn kbps(k: u64) -> Bitrate {
        Bitrate::from_kbps(k)
    }

    /// Build the three-client meeting of Table 1: every client subscribes to
    /// the other two, with the paper's per-case bandwidths.
    ///
    /// Subscription caps from the table: A→B at 360P, A→C at 180P,
    /// B→A at 720P, B→C at 360P, C→B at 360P, C→A at 720P.
    fn table1_problem(bw: [(u64, u64); 3]) -> Problem {
        let ladder = ladders::paper_table1();
        let [a, b, c] = [ClientId(1), ClientId(2), ClientId(3)];
        let clients = vec![
            ClientSpec::new(a, kbps(bw[0].0), kbps(bw[0].1), ladder.clone()),
            ClientSpec::new(b, kbps(bw[1].0), kbps(bw[1].1), ladder.clone()),
            ClientSpec::new(c, kbps(bw[2].0), kbps(bw[2].1), ladder),
        ];
        let subs = vec![
            Subscription::new(a, SourceId::video(b), Resolution::R360),
            Subscription::new(a, SourceId::video(c), Resolution::R180),
            Subscription::new(b, SourceId::video(a), Resolution::R720),
            Subscription::new(b, SourceId::video(c), Resolution::R360),
            Subscription::new(c, SourceId::video(b), Resolution::R360),
            Subscription::new(c, SourceId::video(a), Resolution::R720),
        ];
        Problem::new(clients, subs).unwrap()
    }

    fn published(sol: &Solution, client: ClientId) -> Vec<(Resolution, Bitrate)> {
        let mut v: Vec<(Resolution, Bitrate)> = sol
            .policies(SourceId::video(client))
            .iter()
            .map(|p| (p.resolution, p.bitrate))
            .collect();
        v.sort();
        v.reverse();
        v
    }

    /// Table 1, case 1: C's downlink is limited to 500 Kbps.
    #[test]
    fn table1_case1() {
        let p = table1_problem([(5_000, 1_400), (5_000, 3_000), (5_000, 500)]);
        let sol = solve(&p, &SolverConfig::default());
        sol.validate(&p).unwrap();
        let [a, b, c] = [ClientId(1), ClientId(2), ClientId(3)];
        assert_eq!(
            published(&sol, a),
            vec![(Resolution::R720, kbps(1500)), (Resolution::R360, kbps(400))]
        );
        assert_eq!(
            published(&sol, b),
            vec![(Resolution::R360, kbps(800)), (Resolution::R180, kbps(100))]
        );
        assert_eq!(
            published(&sol, c),
            vec![(Resolution::R360, kbps(800)), (Resolution::R180, kbps(300))]
        );
    }

    /// Table 1, case 2: B's uplink is limited to 600 Kbps.
    #[test]
    fn table1_case2() {
        let p = table1_problem([(5_000, 5_000), (600, 5_000), (5_000, 5_000)]);
        let sol = solve(&p, &SolverConfig::default());
        sol.validate(&p).unwrap();
        let [a, b, c] = [ClientId(1), ClientId(2), ClientId(3)];
        assert_eq!(published(&sol, a), vec![(Resolution::R720, kbps(1500))]);
        assert_eq!(published(&sol, b), vec![(Resolution::R360, kbps(600))]);
        assert_eq!(
            published(&sol, c),
            vec![(Resolution::R360, kbps(800)), (Resolution::R180, kbps(300))]
        );
    }

    /// Table 1, case 3: B's uplink (600 Kbps) and downlink (700 Kbps) are
    /// both limited.
    #[test]
    fn table1_case3() {
        let p = table1_problem([(5_000, 5_000), (600, 700), (5_000, 5_000)]);
        let sol = solve(&p, &SolverConfig::default());
        sol.validate(&p).unwrap();
        let [a, b, c] = [ClientId(1), ClientId(2), ClientId(3)];
        assert_eq!(
            published(&sol, a),
            vec![(Resolution::R720, kbps(1500)), (Resolution::R360, kbps(400))]
        );
        assert_eq!(published(&sol, b), vec![(Resolution::R360, kbps(600))]);
        assert_eq!(published(&sol, c), vec![(Resolution::R180, kbps(300))]);
    }

    /// Fig. 3a/3d: a stream nobody subscribes to is never published.
    #[test]
    fn no_stream_without_audience() {
        let ladder = ladders::paper_table1();
        let [p1, s1, s2] = [ClientId(1), ClientId(2), ClientId(3)];
        let problem = Problem::new(
            vec![
                ClientSpec::new(p1, kbps(2_000), kbps(5_000), ladder.clone()),
                ClientSpec::new(s1, kbps(5_000), kbps(300), ladder.clone()),
                ClientSpec::new(s2, kbps(5_000), kbps(600), ladder),
            ],
            vec![
                Subscription::new(s1, SourceId::video(p1), Resolution::R720),
                Subscription::new(s2, SourceId::video(p1), Resolution::R720),
            ],
        )
        .unwrap();
        let sol = solve(&problem, &SolverConfig::default());
        sol.validate(&problem).unwrap();
        // Nobody can take the 1.5M stream; it must not be published even
        // though pub1's uplink could carry it.
        for p in sol.policies(SourceId::video(p1)) {
            assert!(!p.audience.is_empty());
            assert!(p.bitrate <= kbps(600));
        }
    }

    /// A subscriber-only client and a publisher with an empty ladder are
    /// both handled.
    #[test]
    fn degenerate_participants() {
        let [p1, s1] = [ClientId(1), ClientId(2)];
        let problem = Problem::new(
            vec![
                ClientSpec::new(p1, kbps(5_000), kbps(5_000), crate::types::Ladder::empty()),
                ClientSpec::subscriber_only(s1, kbps(5_000)),
            ],
            vec![Subscription::new(s1, SourceId::video(p1), Resolution::R720)],
        )
        .unwrap();
        let sol = solve(&problem, &SolverConfig::default());
        sol.validate(&problem).unwrap();
        assert!(sol.policies(SourceId::video(p1)).is_empty());
        assert_eq!(sol.total_qoe, 0.0);
    }

    /// The solver always terminates within the convergence bound even when
    /// every uplink is pathologically small.
    #[test]
    fn converges_under_tiny_uplinks() {
        let p = table1_problem([(100, 5_000), (100, 5_000), (100, 5_000)]);
        let sol = solve(&p, &SolverConfig::default());
        sol.validate(&p).unwrap();
        // 3 sources × 3 resolutions + 1 terminal iteration is the bound.
        assert!(sol.iterations <= 10, "iterations = {}", sol.iterations);
        // 100 Kbps uplink fits exactly the 100 Kbps 180P stream.
        for c in [1, 2, 3] {
            assert!(sol.publish_rate(ClientId(c)) <= kbps(100));
        }
    }

    /// Uplink of zero forces every source to publish nothing.
    #[test]
    fn zero_uplink_publishes_nothing() {
        let p = table1_problem([(0, 5_000), (0, 5_000), (0, 5_000)]);
        let sol = solve(&p, &SolverConfig::default());
        sol.validate(&p).unwrap();
        assert_eq!(sol.total_qoe, 0.0);
        for c in [1, 2, 3] {
            assert!(sol.policies(SourceId::video(ClientId(c))).is_empty());
        }
    }

    /// Priority boosts steer the knapsack: under a tight downlink the boosted
    /// publisher's stream is kept (the "speaker first" QoE weighting of §4.4).
    #[test]
    fn priority_boost_protects_speaker() {
        let ladder = ladders::paper_table1();
        let [spk, other, sub] = [ClientId(1), ClientId(2), ClientId(3)];
        let build = |boost: f64| {
            Problem::new(
                vec![
                    ClientSpec::new(spk, kbps(5_000), kbps(5_000), ladder.clone()),
                    ClientSpec::new(other, kbps(5_000), kbps(5_000), ladder.clone()),
                    ClientSpec::new(sub, kbps(5_000), kbps(900), ladder.clone()),
                ],
                vec![
                    Subscription::new(sub, SourceId::video(spk), Resolution::R720)
                        .with_boost(boost),
                    Subscription::new(sub, SourceId::video(other), Resolution::R720),
                ],
            )
            .unwrap()
        };
        // Unboosted: 900 Kbps downlink splits across both (800K impossible:
        // 800+100; the knapsack finds the best mix).
        let base = solve(&build(1.0), &SolverConfig::default());
        // Heavily boosted: the speaker gets the dominant share.
        let boosted = solve(&build(10.0), &SolverConfig::default());
        boosted.validate(&build(10.0)).unwrap();
        let spk_rate_base =
            base.received_from(sub, SourceId::video(spk), 0).map_or(Bitrate::ZERO, |r| r.bitrate);
        let spk_rate_boost = boosted
            .received_from(sub, SourceId::video(spk), 0)
            .map_or(Bitrate::ZERO, |r| r.bitrate);
        assert!(
            spk_rate_boost >= spk_rate_base,
            "boost must not lower the speaker's stream ({spk_rate_base} -> {spk_rate_boost})"
        );
        assert_eq!(spk_rate_boost, kbps(800), "speaker takes the largest fitting stream");
    }
}
