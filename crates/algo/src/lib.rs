//! The GSO-Simulcast control algorithm (the paper's core contribution, §4.1).
//!
//! Given the global picture of a conference — every client's uplink/downlink
//! bandwidth, each publisher source's feasible stream set (bitrate ladder),
//! and the subscription relations with per-subscription resolution caps and
//! priorities — the controller decides which streams every source publishes
//! (resolution + fine-grained bitrate) and which stream every subscriber
//! receives, maximizing total QoE utility.
//!
//! # Quick start
//!
//! ```
//! use gso_algo::{ladders, solver, Problem, ClientSpec, Subscription, SourceId, Resolution};
//! use gso_util::{Bitrate, ClientId};
//!
//! let ladder = ladders::paper_table1();
//! let a = ClientId(1);
//! let b = ClientId(2);
//! let problem = Problem::new(
//!     vec![
//!         ClientSpec::new(a, Bitrate::from_mbps(5), Bitrate::from_mbps(3), ladder.clone()),
//!         ClientSpec::new(b, Bitrate::from_mbps(1), Bitrate::from_kbps(900), ladder),
//!     ],
//!     vec![
//!         Subscription::new(a, SourceId::video(b), Resolution::R720),
//!         Subscription::new(b, SourceId::video(a), Resolution::R720),
//!     ],
//! )
//! .unwrap();
//!
//! let solution = solver::solve(&problem, &Default::default());
//! solution.validate(&problem).unwrap();
//! // B's 900 Kbps downlink gets the largest fitting stream from A:
//! let got = solution.received_from(b, SourceId::video(a), 0).unwrap();
//! assert_eq!(got.bitrate, Bitrate::from_kbps(800));
//! ```
//!
//! # Modules
//!
//! * [`types`] — resolutions, stream specs, bitrate ladders.
//! * [`problem`] — validated problem instances (clients, sources,
//!   subscriptions).
//! * [`mckp`] — the Step-1 multiple-choice knapsack DP.
//! * [`solver`] — the iterative Knapsack–Merge–Reduction algorithm.
//! * [`engine`] — incremental re-solve driver with memoized DP state.
//! * [`batch`] — persistent work-stealing scheduler interleaving many
//!   conferences' engine solves per control tick.
//! * [`brute`] — exact exponential-time baseline (Fig. 6a/6b comparison).
//! * [`solution`] — solution representation and full constraint validation.
//! * [`digest`] — stable [`gso_detguard::StateDigest`] fingerprints for
//!   solutions, traces, and engine statistics.
//! * [`diff`] — minimal reconfiguration between consecutive solutions.
//! * [`qoe`] — QoE utility curves with small-stream protection (§4.4).
//! * [`ladders`] — the paper's Table-1 ladder, fine 15-level and coarse
//!   3-level production ladders, and parametric generators.
//! * [`tenant`] — tenant identity and priority classes consumed by the
//!   fleet's admission control and overload shedding.

pub mod batch;
pub mod brute;
pub mod diff;
pub mod digest;
pub mod engine;
pub mod ladders;
pub mod mckp;
pub mod problem;
pub mod qoe;
pub mod solution;
pub mod solver;
pub mod tenant;
pub mod types;

pub use batch::{BatchConfig, BatchJob, BatchResult, BatchScheduler};
pub use diff::{diff, LayerChange, SolutionDiff, SwitchChange};
pub use engine::{EngineStats, SolveEngine};
pub use mckp::McPool;
pub use problem::{ClientSpec, Problem, ProblemError, PublisherSource, SourceId, Subscription};
pub use solution::{ConstraintViolation, PublishPolicy, ReceivedStream, Solution};
pub use solver::{IterationTrace, ReductionTrace, Request, SolveTrace, SolverConfig};
pub use tenant::{PriorityClass, Tenancy, TenantId};
pub use types::{Ladder, LadderError, Resolution, StreamSpec};
