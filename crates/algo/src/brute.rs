//! Brute-force (exact) solver — the baseline of Fig. 6a/6b.
//!
//! The paper compares GSO's control algorithm against brute-force search of
//! the full joint problem: enumerate, for every publisher source, which
//! streams to publish (at most one bitrate per resolution), and for every
//! subscriber, which published streams to take, subject to all uplink,
//! downlink, codec and subscription constraints; maximize total QoE.
//!
//! The search space is exponential in both the number of participants and
//! the number of bitrate levels — exactly the scaling the paper plots. To
//! make exact answers reachable at the sizes the paper evaluates (up to 8
//! participants), the enumeration here uses depth-first search with
//! branch-and-bound:
//!
//! * **Pruning by uplink** as soon as a partial publish assignment exceeds a
//!   client's budget (publishing more never lowers the usage).
//! * **Admissible bound**: with some sources fixed, the per-subscriber
//!   optimum when every undecided source offers its *full* ladder is an
//!   upper bound, because a concrete publish choice is always a subset.
//! * **Warm start**: the GSO solution's value is the initial incumbent;
//!   since GSO is near-optimal, most of the tree prunes immediately.
//!
//! The result is still worst-case exponential (as it must be), but exact.

use crate::mckp;
use crate::problem::{Problem, SourceId};
use crate::solution::{PublishPolicy, ReceivedStream, Solution};
use crate::solver::{self, SolverConfig};
use crate::types::{Resolution, StreamSpec};
use gso_util::{Bitrate, ClientId};
use std::collections::BTreeMap;

/// Outcome of the exhaustive search.
#[derive(Debug, Clone)]
pub struct BruteResult {
    /// The best solution found (the global optimum when `exact`).
    pub solution: Solution,
    /// Number of search-tree nodes visited.
    pub nodes: u64,
    /// True if the search ran to completion; false if the node budget was
    /// exhausted first (the solution is then only a lower bound).
    pub exact: bool,
}

/// One subscriber's knapsack class description.
struct Class {
    source_idx: usize,
    max_res: Resolution,
    boost: f64,
    presence: f64,
    /// Items when the source is undecided: the full capped ladder.
    full_items: Vec<StreamSpec>,
}

struct Subscriber {
    id: ClientId,
    downlink: Bitrate,
    /// (subscriber, source, tag) classes in deterministic order.
    classes: Vec<Class>,
    /// Tags, parallel to `classes` (kept separate for solution assembly).
    tags: Vec<u8>,
}

struct Search<'a> {
    problem: &'a Problem,
    unit: Bitrate,
    sources: Vec<SourceId>,
    /// All publish configurations per source, best-first by total QoE.
    configs: Vec<Vec<Vec<StreamSpec>>>,
    subscribers: Vec<Subscriber>,
    node_budget: u64,
    nodes: u64,
    best_value: f64,
    best_assignment: Option<Vec<usize>>,
    use_bound: bool,
}

/// Exhaustively solve the orchestration problem with branch-and-bound.
///
/// `node_budget` caps the number of search nodes (`None` = unbounded); when
/// hit, the best solution so far is returned with `exact = false`.
pub fn solve_brute(problem: &Problem, cfg: &SolverConfig, node_budget: Option<u64>) -> BruteResult {
    solve_brute_inner(problem, cfg, node_budget, true)
}

/// Exhaustively solve *without* bounding or warm start — the naive search
/// whose cost grows exponentially with participants and bitrate levels,
/// as plotted in Fig. 6a/6b of the paper. Only uplink infeasibility prunes.
pub fn solve_brute_naive(
    problem: &Problem,
    cfg: &SolverConfig,
    node_budget: Option<u64>,
) -> BruteResult {
    solve_brute_inner(problem, cfg, node_budget, false)
}

/// Product of per-source uplink-feasible publish configurations — the naive
/// search's leaf count, used to extrapolate its cost at sizes where running
/// it is impractical (as the paper notes, it "becomes intractable").
pub fn naive_leaf_count(problem: &Problem) -> f64 {
    problem
        .sources()
        .iter()
        .map(|s| {
            let uplink = problem.client(s.id.client).map_or(Bitrate::ZERO, |c| c.uplink);
            enumerate_configs(&s.ladder)
                .iter()
                .filter(|c| c.iter().map(|sp| sp.bitrate).sum::<Bitrate>() <= uplink)
                .count() as f64
        })
        .product()
}

fn solve_brute_inner(
    problem: &Problem,
    cfg: &SolverConfig,
    node_budget: Option<u64>,
    use_bound: bool,
) -> BruteResult {
    let sources: Vec<SourceId> = problem.sources().iter().map(|s| s.id).collect();
    let configs: Vec<Vec<Vec<StreamSpec>>> =
        problem.sources().iter().map(|s| enumerate_configs(&s.ladder)).collect();

    let subscribers: Vec<Subscriber> = problem
        .clients()
        .iter()
        .filter(|c| !problem.subscriptions_of(c.id).is_empty())
        .map(|c| {
            let subs = problem.subscriptions_of(c.id);
            let classes = subs
                .iter()
                .map(|s| Class {
                    source_idx: sources
                        .iter()
                        .position(|&src| src == s.source)
                        .expect("invariant: Problem::new validated every subscription source"),
                    max_res: s.max_resolution,
                    boost: s.qoe_boost,
                    presence: s.presence_bonus,
                    full_items: problem
                        .source(s.source)
                        .map(|src| src.ladder.capped(s.max_resolution))
                        .unwrap_or_default(),
                })
                .collect();
            Subscriber {
                id: c.id,
                downlink: c.downlink,
                classes,
                tags: subs.iter().map(|s| s.tag).collect(),
            }
        })
        .collect();

    let mut search = Search {
        problem,
        unit: cfg.unit,
        sources,
        configs,
        subscribers,
        node_budget: node_budget.unwrap_or(u64::MAX),
        nodes: 0,
        best_value: f64::NEG_INFINITY,
        best_assignment: None,
        use_bound,
    };

    // Warm start with GSO's near-optimal value (the assignment itself is
    // reconstructed only for true leaves, so seed just the value). The
    // naive mode forgoes it, like the paper's plain exhaustive baseline.
    let gso = solver::solve(problem, cfg);
    if use_bound {
        search.best_value = gso.total_qoe - 1e-9;
    }

    let mut assignment = vec![0usize; search.sources.len()];
    let mut uplink_used: BTreeMap<ClientId, Bitrate> = BTreeMap::new();
    let exact = search.dfs(0, &mut assignment, &mut uplink_used);

    let solution = match &search.best_assignment {
        Some(a) => search.assemble(a),
        // No leaf beat the warm start; GSO's own solution is optimal.
        None => gso,
    };
    BruteResult { solution, nodes: search.nodes, exact }
}

/// All ways a source can publish: the cartesian product over its resolutions
/// of "skip or pick one bitrate", ordered best-first by total QoE.
fn enumerate_configs(ladder: &crate::types::Ladder) -> Vec<Vec<StreamSpec>> {
    let mut configs: Vec<Vec<StreamSpec>> = vec![Vec::new()];
    for res in ladder.resolutions() {
        let specs = ladder.at_resolution(res);
        let mut next = Vec::with_capacity(configs.len() * (specs.len() + 1));
        for c in &configs {
            next.push(c.clone()); // skip this resolution
            for s in &specs {
                let mut c2 = c.clone();
                c2.push(*s);
                next.push(c2);
            }
        }
        configs = next;
    }
    configs.sort_by(|a, b| {
        let qa: f64 = a.iter().map(|s| s.qoe).sum();
        let qb: f64 = b.iter().map(|s| s.qoe).sum();
        qb.total_cmp(&qa)
    });
    configs
}

impl Search<'_> {
    /// Returns false if the node budget ran out (search is then inexact).
    fn dfs(
        &mut self,
        depth: usize,
        assignment: &mut Vec<usize>,
        uplink_used: &mut BTreeMap<ClientId, Bitrate>,
    ) -> bool {
        self.nodes += 1;
        if self.nodes > self.node_budget {
            return false;
        }

        if depth == self.sources.len() {
            let value = self.evaluate(assignment, depth);
            if value > self.best_value {
                self.best_value = value;
                self.best_assignment = Some(assignment.clone());
            }
            return true;
        }

        // Admissible upper bound with sources[depth..] free.
        if self.use_bound && self.evaluate(assignment, depth) <= self.best_value {
            return true;
        }

        let client = self.sources[depth].client;
        let uplink = self.problem.client(client).map_or(Bitrate::ZERO, |c| c.uplink);
        let n_configs = self.configs[depth].len();
        for ci in 0..n_configs {
            let rate: Bitrate = self.configs[depth][ci].iter().map(|s| s.bitrate).sum();
            let used = uplink_used.get(&client).copied().unwrap_or(Bitrate::ZERO);
            if used + rate > uplink {
                continue;
            }
            assignment[depth] = ci;
            uplink_used.insert(client, used + rate);
            let ok = self.dfs(depth + 1, assignment, uplink_used);
            uplink_used.insert(client, used);
            if !ok {
                return false;
            }
        }
        true
    }

    /// Total QoE when sources `0..decided` follow `assignment` and the rest
    /// offer their full ladders (an upper bound; exact when
    /// `decided == sources.len()`).
    fn evaluate(&self, assignment: &[usize], decided: usize) -> f64 {
        let mut total = 0.0;
        for sub in &self.subscribers {
            let classes: Vec<Vec<(Bitrate, f64)>> = sub
                .classes
                .iter()
                .map(|class| {
                    if class.source_idx < decided {
                        self.configs[class.source_idx][assignment[class.source_idx]]
                            .iter()
                            .filter(|s| s.resolution <= class.max_res)
                            .map(|s| (s.bitrate, s.qoe * class.boost + class.presence))
                            .collect()
                    } else {
                        class
                            .full_items
                            .iter()
                            .map(|s| (s.bitrate, s.qoe * class.boost + class.presence))
                            .collect()
                    }
                })
                .collect();
            total += mckp::solve_bitrates(&classes, sub.downlink, self.unit).value;
        }
        total
    }

    /// Rebuild the full [`Solution`] for the winning leaf assignment.
    fn assemble(&self, assignment: &[usize]) -> Solution {
        let mut publish: BTreeMap<SourceId, Vec<PublishPolicy>> = BTreeMap::new();
        let mut received: BTreeMap<ClientId, Vec<ReceivedStream>> = BTreeMap::new();
        let mut total_qoe = 0.0;

        for sub in &self.subscribers {
            let classes: Vec<Vec<(Bitrate, f64)>> = sub
                .classes
                .iter()
                .map(|class| {
                    self.configs[class.source_idx][assignment[class.source_idx]]
                        .iter()
                        .filter(|s| s.resolution <= class.max_res)
                        .map(|s| (s.bitrate, s.qoe * class.boost))
                        .collect()
                })
                .collect();
            let picked = mckp::solve_bitrates(&classes, sub.downlink, self.unit);
            for ((class, tag), choice) in sub.classes.iter().zip(&sub.tags).zip(&picked.choices) {
                let Some(i) = choice else { continue };
                let spec: StreamSpec = self.configs[class.source_idx][assignment[class.source_idx]]
                    .iter()
                    .filter(|s| s.resolution <= class.max_res)
                    .nth(*i)
                    .copied()
                    .expect("invariant: assignments enumerate only in-range choice indices");
                let source = self.sources[class.source_idx];
                let qoe = spec.qoe * class.boost + class.presence;
                total_qoe += qoe;
                received.entry(sub.id).or_default().push(ReceivedStream {
                    source,
                    tag: *tag,
                    resolution: spec.resolution,
                    bitrate: spec.bitrate,
                    qoe,
                });
                // Attach to (or create) the matching publish policy.
                let policies = publish.entry(source).or_default();
                match policies.iter_mut().find(|p| p.resolution == spec.resolution) {
                    Some(p) => p.audience.push((sub.id, *tag)),
                    None => policies.push(PublishPolicy {
                        resolution: spec.resolution,
                        bitrate: spec.bitrate,
                        audience: vec![(sub.id, *tag)],
                    }),
                }
            }
        }
        // Streams the winning config offered but nobody took are simply not
        // published (they would only waste uplink).
        Solution { publish, received, total_qoe, iterations: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladders;
    use crate::problem::{ClientSpec, Subscription};

    fn kbps(k: u64) -> Bitrate {
        Bitrate::from_kbps(k)
    }

    fn symmetric_meeting(n: u32, downlink_kbps: u64) -> Problem {
        let ladder = ladders::paper_table1();
        let clients: Vec<ClientSpec> = (1..=n)
            .map(|i| ClientSpec::new(ClientId(i), kbps(5_000), kbps(downlink_kbps), ladder.clone()))
            .collect();
        let mut subs = Vec::new();
        for i in 1..=n {
            for j in 1..=n {
                if i != j {
                    subs.push(Subscription::new(
                        ClientId(i),
                        SourceId::video(ClientId(j)),
                        Resolution::R720,
                    ));
                }
            }
        }
        Problem::new(clients, subs).unwrap()
    }

    #[test]
    fn brute_matches_gso_when_unconstrained() {
        let p = symmetric_meeting(3, 10_000);
        let cfg = SolverConfig::default();
        let gso = solver::solve(&p, &cfg);
        let brute = solve_brute(&p, &cfg, None);
        assert!(brute.exact);
        brute.solution.validate(&p).unwrap();
        // Everyone can take everyone's max stream: both must hit the same QoE.
        assert!((brute.solution.total_qoe - gso.total_qoe).abs() < 1e-6);
    }

    #[test]
    fn brute_is_never_worse_than_gso() {
        for downlink in [400u64, 900, 1_700, 2_600] {
            let p = symmetric_meeting(3, downlink);
            let cfg = SolverConfig::default();
            let gso = solver::solve(&p, &cfg);
            let brute = solve_brute(&p, &cfg, None);
            assert!(brute.exact);
            brute.solution.validate(&p).unwrap();
            assert!(
                brute.solution.total_qoe >= gso.total_qoe - 1e-6,
                "downlink {downlink}: brute {} < gso {}",
                brute.solution.total_qoe,
                gso.total_qoe
            );
        }
    }

    #[test]
    fn gso_stays_near_optimal_under_uplink_pressure() {
        // Tight uplinks force the Reduction step; GSO may lose a little QoE
        // but must stay close to the exact optimum (Fig. 6a/6b show
        // optimality ≈ 1).
        let ladder = ladders::paper_table1();
        let clients = vec![
            ClientSpec::new(ClientId(1), kbps(900), kbps(5_000), ladder.clone()),
            ClientSpec::new(ClientId(2), kbps(700), kbps(5_000), ladder.clone()),
            ClientSpec::new(ClientId(3), kbps(1_200), kbps(1_200), ladder),
        ];
        let mut subs = Vec::new();
        for i in 1..=3u32 {
            for j in 1..=3u32 {
                if i != j {
                    subs.push(Subscription::new(
                        ClientId(i),
                        SourceId::video(ClientId(j)),
                        Resolution::R720,
                    ));
                }
            }
        }
        let p = Problem::new(clients, subs).unwrap();
        let cfg = SolverConfig::default();
        let gso = solver::solve(&p, &cfg);
        gso.validate(&p).unwrap();
        let brute = solve_brute(&p, &cfg, None);
        assert!(brute.exact);
        brute.solution.validate(&p).unwrap();
        let ratio = gso.total_qoe / brute.solution.total_qoe;
        assert!(ratio > 0.85 && ratio <= 1.0 + 1e-9, "optimality ratio {ratio}");
    }

    #[test]
    fn node_budget_degrades_gracefully() {
        let p = symmetric_meeting(4, 1_500);
        let cfg = SolverConfig::default();
        let r = solve_brute(&p, &cfg, Some(3));
        // Budget too small for exactness, but a valid solution (the GSO warm
        // start) is still returned.
        assert!(!r.exact);
        r.solution.validate(&p).unwrap();
    }

    #[test]
    fn enumerate_configs_counts() {
        // paper ladder: resolutions with 3, 4, 2 bitrates -> (3+1)(4+1)(2+1).
        let configs = enumerate_configs(&ladders::paper_table1());
        assert_eq!(configs.len(), 4 * 5 * 3);
        // Best-first: the first config has maximal total QoE.
        let q0: f64 = configs[0].iter().map(|s| s.qoe).sum();
        assert!(configs.iter().all(|c| c.iter().map(|s| s.qoe).sum::<f64>() <= q0));
        // Every config has at most one stream per resolution.
        for c in &configs {
            let mut rs: Vec<_> = c.iter().map(|s| s.resolution).collect();
            rs.sort();
            rs.dedup();
            assert_eq!(rs.len(), c.len());
        }
    }
}
