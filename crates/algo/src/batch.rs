//! Persistent cross-conference batch scheduler for [`SolveEngine`] work.
//!
//! The control plane re-solves many conferences per tick. Each warm re-solve
//! is microseconds of work — far below the cost of spawning threads per tick
//! (the old `thread::scope` shard) — so parallelism only pays when a
//! *persistent* pool of workers interleaves whole-conference solves.
//! [`BatchScheduler`] owns long-lived workers that park on a condvar between
//! ticks and drain a batch of [`BatchJob`]s via work stealing when one
//! arrives.
//!
//! # Determinism
//!
//! Work stealing randomizes *which worker* runs a job and *when*, but not
//! the result:
//!
//! * Each job owns its [`SolveEngine`] and an `Arc` of its problem — no
//!   shared mutable state, so a solve's output depends only on the engine's
//!   own memo, never on scheduling order.
//! * Results are keyed by submission index and returned in submission order.
//!   Callers submit conferences in ascending id order, and each `Solution`
//!   carries its clients in ascending order, so the merged output is always
//!   in ascending (conference, client) order regardless of which worker
//!   finished first.
//!
//! The `engine_equivalence` proptests and the audit digest gate verify
//! bit-identical solutions and traces at 1/2/8 workers.
//!
//! # Memory discipline
//!
//! Conference teardown feeds engines back through [`recycle`]
//! (`BatchScheduler::recycle`), which strips them to their [`McPool`] slabs;
//! [`adopt_engine`](BatchScheduler::adopt_engine) seeds new conferences from
//! that reservoir so growth in one room reuses the DP tables of a room that
//! just emptied.

use crate::engine::SolveEngine;
use crate::mckp::McPool;
use crate::problem::Problem;
use crate::solution::Solution;
use crate::solver::{SolveTrace, SolverConfig};
use std::collections::VecDeque;
// detguard: allow(unordered-merge, reason = "scheduler plumbing only; every job owns its engine and results are re-keyed by submission index, so output is scheduling-order independent (engine_equivalence proptests + audit digest gate)")
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Scheduler sizing knobs.
#[derive(Debug, Clone, Default)]
pub struct BatchConfig {
    /// Worker threads. `0` (the default) uses
    /// [`std::thread::available_parallelism`].
    pub workers: usize,
}

/// One conference's solve request: the conference's engine (with its warm
/// memo), the problem snapshot, and whether to capture a [`SolveTrace`].
#[derive(Debug)]
pub struct BatchJob {
    /// The conference's persistent engine; returned inside [`BatchResult`].
    pub engine: SolveEngine,
    /// Problem snapshot to solve (shared, immutable).
    pub problem: Arc<Problem>,
    /// Capture the per-iteration trace (for the auditor) alongside the
    /// solution.
    pub traced: bool,
}

/// A completed [`BatchJob`]: the engine comes back (memo warmed by this
/// solve) together with its output.
#[derive(Debug)]
pub struct BatchResult {
    /// The engine that ran the job, ready for the next tick.
    pub engine: SolveEngine,
    /// The solve output — bit-identical to running the engine inline.
    pub solution: Solution,
    /// The trace, when the job asked for one.
    pub trace: Option<SolveTrace>,
}

struct Task {
    idx: usize,
    job: BatchJob,
    out: Arc<Sink>,
}

/// Completion sink for one batch: workers deposit results by submission
/// index and the submitter sleeps until the *last* deposit. One wakeup per
/// batch instead of one per conference — on a saturated host the per-result
/// channel wake was a context-switch ping-pong that dwarfed the warm solves
/// themselves.
struct Sink {
    // detguard: allow(unordered-merge, reason = "deposit order races, but slots are keyed by submission index and the submitter reads only after the last deposit — contents are order-independent")
    state: Mutex<SinkState>,
    done: Condvar,
}

struct SinkState {
    slots: Vec<Option<BatchResult>>,
    remaining: usize,
}

struct SignalState {
    /// Bumped once per submitted batch; sleeping workers wake on a change.
    epoch: u64,
    shutdown: bool,
}

struct Shared {
    /// One deque per worker; owners pop the front, thieves the back.
    // detguard: allow(unordered-merge, reason = "work-stealing deques race only over which worker runs a job, never over job state; results are re-ordered by submission index")
    queues: Vec<Mutex<VecDeque<Task>>>,
    // detguard: allow(unordered-merge, reason = "epoch/shutdown wakeup flag; carries no solve state")
    signal: Mutex<SignalState>,
    cv: Condvar,
}

impl Shared {
    /// Grab a task: own queue front first, then steal from the others'
    /// backs. `None` only after every queue was observed empty.
    fn grab(&self, wid: usize) -> Option<Task> {
        let n = self.queues.len();
        for off in 0..n {
            let qi = (wid + off) % n;
            let mut q = self
                .queues
                .get(qi)
                .expect("invariant: queue index is reduced modulo queue count")
                .lock()
                .expect("invariant: a panicked worker aborts the process before poisoning");
            let task = if off == 0 { q.pop_front() } else { q.pop_back() };
            if task.is_some() {
                return task;
            }
        }
        None
    }
}

fn run_task(task: Task) {
    let Task { idx, job, out } = task;
    let BatchJob { mut engine, problem, traced } = job;
    let (solution, trace) = if traced {
        let (s, t) = engine.solve_traced(&problem);
        (s, Some(t))
    } else {
        (engine.solve(&problem), None)
    };
    let mut st =
        out.state.lock().expect("invariant: a panicked worker aborts the process before poisoning");
    let slot = st.slots.get_mut(idx).expect("invariant: task indices enumerate the batch");
    debug_assert!(slot.is_none(), "a task index completed twice");
    *slot = Some(BatchResult { engine, solution, trace });
    st.remaining -= 1;
    if st.remaining == 0 {
        // Only the submitter waits on this condvar, and only for its own
        // batch's sink, so a single notify suffices.
        out.done.notify_one();
    }
}

fn worker_loop(wid: usize, shared: &Shared) {
    loop {
        // Fast path: drain without touching the signal lock.
        while let Some(task) = shared.grab(wid) {
            run_task(task);
        }
        let mut sig = shared
            .signal
            .lock()
            .expect("invariant: a panicked worker aborts the process before poisoning");
        if sig.shutdown {
            return;
        }
        // Re-scan while *holding* the signal lock: a submitter must take
        // this lock to bump the epoch, so either we see its tasks here or
        // we sleep strictly before its notify — no lost wakeup.
        if let Some(task) = shared.grab(wid) {
            drop(sig);
            run_task(task);
            continue;
        }
        let epoch = sig.epoch;
        while sig.epoch == epoch && !sig.shutdown {
            sig = shared
                .cv
                .wait(sig)
                .expect("invariant: a panicked worker aborts the process before poisoning");
        }
        if sig.shutdown {
            return;
        }
    }
}

/// Persistent work-stealing scheduler for cross-conference solve batches.
///
/// Workers are spawned once and live until the scheduler is dropped; a tick
/// submits one [`BatchJob`] per conference and receives the results in
/// submission order. See the module docs for the determinism argument.
#[derive(Debug)]
pub struct BatchScheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Retired DP slabs from recycled engines, seeding new conferences.
    reservoir: McPool,
    /// Round-robin cursor for initial task placement.
    next_queue: usize,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").field("queues", &self.queues.len()).finish_non_exhaustive()
    }
}

impl BatchScheduler {
    /// Spawn the worker pool.
    #[must_use]
    pub fn new(cfg: &BatchConfig) -> Self {
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            cfg.workers
        };
        let shared = Arc::new(Shared {
            // detguard: allow(unordered-merge, reason = "work-stealing deques race only over which worker runs a job, never over job state; results are re-ordered by submission index")
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            // detguard: allow(unordered-merge, reason = "epoch/shutdown wakeup flag; carries no solve state")
            signal: Mutex::new(SignalState { epoch: 0, shutdown: false }),
            cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|wid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gso-batch-{wid}"))
                    .spawn(move || worker_loop(wid, &shared))
                    .expect("invariant: worker spawn at scheduler construction")
            })
            .collect();
        BatchScheduler { shared, workers: handles, reservoir: McPool::new(), next_queue: 0 }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Solve every job, blocking until the batch completes. Results are in
    /// submission order: `out[i]` answers `jobs[i]`, whichever worker ran it.
    pub fn solve_batch(&mut self, jobs: Vec<BatchJob>) -> Vec<BatchResult> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let mut slots: Vec<Option<BatchResult>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let sink = Arc::new(Sink {
            // detguard: allow(unordered-merge, reason = "deposit order races, but slots are keyed by submission index and the submitter reads only after the last deposit — contents are order-independent")
            state: Mutex::new(SinkState { slots, remaining: n }),
            done: Condvar::new(),
        });
        for (idx, job) in jobs.into_iter().enumerate() {
            let qi = self.next_queue % self.workers.len();
            self.next_queue = self.next_queue.wrapping_add(1);
            self.shared
                .queues
                .get(qi)
                .expect("invariant: queue index is reduced modulo queue count")
                .lock()
                .expect("invariant: a panicked worker aborts the process before poisoning")
                .push_back(Task { idx, job, out: Arc::clone(&sink) });
        }
        {
            // Queue locks are released above before this lock is taken —
            // workers take them in the opposite order (signal, then queues),
            // which would deadlock if a submitter ever held both.
            let mut sig = self
                .shared
                .signal
                .lock()
                .expect("invariant: a panicked worker aborts the process before poisoning");
            sig.epoch = sig.epoch.wrapping_add(1);
            self.shared.cv.notify_all();
        }
        let mut st = sink
            .state
            .lock()
            .expect("invariant: a panicked worker aborts the process before poisoning");
        while st.remaining > 0 {
            st = sink
                .done
                .wait(st)
                .expect("invariant: a panicked worker aborts the process before poisoning");
        }
        let slots = std::mem::take(&mut st.slots);
        drop(st);
        slots
            .into_iter()
            .map(|s| s.expect("invariant: every slot received exactly one result"))
            .collect()
    }

    /// Tear a conference's engine down into the cross-conference slab
    /// reservoir.
    pub fn recycle(&mut self, engine: SolveEngine) {
        self.reservoir.absorb(engine.into_pool());
    }

    /// A new engine seeded from the reservoir: joining conferences reuse the
    /// DP slabs of conferences that tore down.
    #[must_use]
    pub fn adopt_engine(&mut self, cfg: SolverConfig) -> SolveEngine {
        let mut engine = SolveEngine::new(cfg);
        engine.absorb_pool(std::mem::take(&mut self.reservoir));
        engine
    }

    /// Retired DP states waiting in the reservoir.
    #[must_use]
    pub fn idle_states(&self) -> usize {
        self.reservoir.idle_states()
    }
}

impl Drop for BatchScheduler {
    fn drop(&mut self) {
        if let Ok(mut sig) = self.shared.signal.lock() {
            sig.shutdown = true;
        }
        self.shared.cv.notify_all();
        for handle in self.workers.drain(..) {
            drop(handle.join());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladders;
    use crate::problem::{ClientSpec, SourceId, Subscription};
    use crate::types::Resolution;
    use gso_util::{Bitrate, ClientId};

    fn mesh(n: u32, downlink_kbps: u64) -> Problem {
        let ladder = ladders::paper_table1();
        let clients: Vec<ClientSpec> = (1..=n)
            .map(|i| {
                ClientSpec::new(
                    ClientId(i),
                    Bitrate::from_kbps(2_000),
                    Bitrate::from_kbps(downlink_kbps),
                    ladder.clone(),
                )
            })
            .collect();
        let mut subs = Vec::new();
        for i in 1..=n {
            for j in 1..=n {
                if i != j {
                    subs.push(Subscription::new(
                        ClientId(i),
                        SourceId::video(ClientId(j)),
                        Resolution::R720,
                    ));
                }
            }
        }
        Problem::new(clients, subs).expect("valid mesh problem")
    }

    fn conference_batch(problems: &[Arc<Problem>], traced: bool) -> Vec<BatchJob> {
        problems
            .iter()
            .map(|p| BatchJob {
                engine: SolveEngine::new(SolverConfig::default()),
                problem: Arc::clone(p),
                traced,
            })
            .collect()
    }

    #[test]
    fn batch_matches_inline_engine_at_every_worker_count() {
        let problems: Vec<Arc<Problem>> =
            (0..6).map(|i| Arc::new(mesh(4 + i % 3, 900 + 333 * u64::from(i)))).collect();
        let reference: Vec<_> = problems
            .iter()
            .map(|p| {
                let mut e = SolveEngine::new(SolverConfig::default());
                e.solve_traced(p)
            })
            .collect();
        for workers in [1, 2, 8] {
            let mut sched = BatchScheduler::new(&BatchConfig { workers });
            assert_eq!(sched.workers(), workers);
            let results = sched.solve_batch(conference_batch(&problems, true));
            assert_eq!(results.len(), problems.len());
            for (res, (sol, trace)) in results.iter().zip(&reference) {
                assert_eq!(&res.solution, sol);
                assert_eq!(res.trace.as_ref(), Some(trace));
            }
        }
    }

    #[test]
    fn engines_stay_warm_across_batches() {
        let problems: Vec<Arc<Problem>> = (0..4).map(|_| Arc::new(mesh(5, 1_500))).collect();
        let mut sched = BatchScheduler::new(&BatchConfig { workers: 2 });
        let results = sched.solve_batch(conference_batch(&problems, false));
        // Re-submit the same engines on the same problems: all full hits.
        let jobs: Vec<BatchJob> = results
            .into_iter()
            .zip(&problems)
            .map(|(r, p)| BatchJob { engine: r.engine, problem: Arc::clone(p), traced: false })
            .collect();
        let results = sched.solve_batch(jobs);
        for res in &results {
            let s = res.engine.stats();
            assert_eq!(s.solves, 2);
            assert!(s.full_hits > 0, "second solve must hit the warm memo");
        }
    }

    #[test]
    fn empty_batch_returns_immediately() {
        let mut sched = BatchScheduler::new(&BatchConfig { workers: 2 });
        assert!(sched.solve_batch(Vec::new()).is_empty());
    }

    #[test]
    fn recycle_feeds_adopted_engines() {
        let problem = Arc::new(mesh(5, 1_500));
        let mut sched = BatchScheduler::new(&BatchConfig { workers: 1 });
        let mut results = sched.solve_batch(vec![BatchJob {
            engine: SolveEngine::new(SolverConfig::default()),
            problem: Arc::clone(&problem),
            traced: false,
        }]);
        let engine = results.pop().expect("one result").engine;
        sched.recycle(engine);
        assert_eq!(sched.idle_states(), 5, "every client state lands in the reservoir");
        let adopted = sched.adopt_engine(SolverConfig::default());
        assert_eq!(sched.idle_states(), 0);
        drop(adopted);
    }
}
