//! Standard bitrate ladders.
//!
//! * [`paper_table1`] — the exact 9-level ladder of Table 1 in the paper,
//!   used by the worked examples and the Fig. 6 experiments.
//! * [`fine`] — a production-style fine-grained ladder with up to 15 levels
//!   (what GSO-Simulcast deploys, §6).
//! * [`coarse3`] — a traditional 3-level Simulcast ladder (large/medium/
//!   small), the non-GSO baseline of Fig. 7b.
//! * [`uniform`] — a parametric ladder generator for the scaling experiments
//!   of Fig. 6 (vary resolutions × levels-per-resolution).

use crate::qoe::default_utility;
use crate::types::{Ladder, Resolution, StreamSpec};
use gso_util::Bitrate;

/// The 9-level ladder of Table 1:
/// 720P {1.5M/1200, 1.3M/1050, 1M/750}, 360P {800K/700, 600K/530, 500K/440,
/// 400K/360}, 180P {300K/300, 100K/100}.
pub fn paper_table1() -> Ladder {
    let k = Bitrate::from_kbps;
    Ladder::new(vec![
        StreamSpec::new(Resolution::R720, k(1500), 1200.0),
        StreamSpec::new(Resolution::R720, k(1300), 1050.0),
        StreamSpec::new(Resolution::R720, k(1000), 750.0),
        StreamSpec::new(Resolution::R360, k(800), 700.0),
        StreamSpec::new(Resolution::R360, k(600), 530.0),
        StreamSpec::new(Resolution::R360, k(500), 440.0),
        StreamSpec::new(Resolution::R360, k(400), 360.0),
        StreamSpec::new(Resolution::R180, k(300), 300.0),
        StreamSpec::new(Resolution::R180, k(100), 100.0),
    ])
    .expect("paper ladder is valid")
}

/// A fine-grained 15-level production-style ladder spanning 100 Kbps–1.5 Mbps
/// across 180P/360P/720P, with QoE weights from the default utility curve.
///
/// 180P: 100–300 Kbps (3 levels); 360P: 350–800 Kbps (6 levels);
/// 720P: 900 Kbps–1.5 Mbps (6 levels). The dense spacing is what lets GSO
/// fit the video bitrate "just right under the bandwidth limit" (Fig. 7a).
pub fn fine15() -> Ladder {
    let mut specs = Vec::new();
    for kbps in [100u64, 200, 300] {
        specs.push(spec(Resolution::R180, kbps));
    }
    for kbps in [350u64, 450, 550, 650, 700, 800] {
        specs.push(spec(Resolution::R360, kbps));
    }
    for kbps in [900u64, 1000, 1100, 1200, 1350, 1500] {
        specs.push(spec(Resolution::R720, kbps));
    }
    Ladder::new(specs).expect("fine ladder is valid")
}

/// A fine ladder with a chosen number of levels (2–15), distributed across
/// resolutions roughly as in [`fine15`]. Level counts below 4 degenerate to a
/// coarse ladder; this is used by the bitrate-granularity ablation.
pub fn fine(levels: usize) -> Ladder {
    let all = fine15();
    let n = levels.clamp(1, all.len());
    // Pick `n` levels spread evenly over the full ladder, always keeping the
    // smallest and the largest.
    let specs = all.specs();
    let mut picked = Vec::with_capacity(n);
    for i in 0..n {
        let idx = if n == 1 { 0 } else { i * (specs.len() - 1) / (n - 1) };
        picked.push(specs[idx]);
    }
    picked.dedup_by_key(|s| s.bitrate);
    Ladder::new(picked).expect("subset of a valid ladder is valid")
}

/// The traditional coarse 3-level Simulcast ladder: 1.5 Mbps (720P),
/// 600 Kbps (360P), 300 Kbps (180P). Adjacent-level ratios of 2.5–5× are
/// typical of template-based stream policies (§1 cites ratios up to 5).
pub fn coarse3() -> Ladder {
    Ladder::new(vec![
        spec(Resolution::R720, 1500),
        spec(Resolution::R360, 600),
        spec(Resolution::R180, 300),
    ])
    .expect("coarse ladder is valid")
}

/// A parametric ladder: `levels_per_res` bitrates at each of the given
/// resolutions, spaced geometrically inside per-resolution bands.
///
/// Used by the Fig. 6 scaling experiments, where the number of bitrate
/// options per publisher is the swept variable. The bands are
/// 180P ∈ [100K, 300K], 360P ∈ [350K, 800K], 720P ∈ [900K, 1.5M], and
/// 1080P ∈ [1.8M, 3M] when requested.
pub fn uniform(resolutions: &[Resolution], levels_per_res: usize) -> Ladder {
    let mut specs = Vec::new();
    for &res in resolutions {
        let (lo, hi) = band(res);
        for i in 0..levels_per_res {
            let f = if levels_per_res == 1 { 1.0 } else { i as f64 / (levels_per_res - 1) as f64 };
            // Geometric interpolation inside the band, rounded to 10 kbps so
            // the solver's quantization is exact.
            let kbps = (lo as f64 * (hi as f64 / lo as f64).powf(f) / 10.0).round() as u64 * 10;
            specs.push(spec(res, kbps));
        }
    }
    // Rounding can collide adjacent levels; nudge duplicates upward.
    specs.sort_by_key(|s| s.bitrate);
    let mut prev = Bitrate::ZERO;
    for s in &mut specs {
        if s.bitrate <= prev {
            s.bitrate = prev + Bitrate::from_kbps(10);
            s.qoe = default_utility(s.bitrate);
        }
        prev = s.bitrate;
    }
    Ladder::new(specs).expect("uniform ladder is valid")
}

/// Per-resolution bitrate bands used by [`uniform`].
fn band(res: Resolution) -> (u64, u64) {
    match res {
        r if r <= Resolution::R180 => (100, 300),
        r if r <= Resolution::R360 => (350, 800),
        r if r <= Resolution::R720 => (900, 1500),
        _ => (1800, 3000),
    }
}

// sentinel: allow(unit-hygiene, reason = "ladder-builder helper; the raw kbps literal becomes a Bitrate on the next line")
fn spec(res: Resolution, kbps: u64) -> StreamSpec {
    let b = Bitrate::from_kbps(kbps);
    StreamSpec::new(res, b, default_utility(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qoe::protects_small_streams;

    #[test]
    fn paper_ladder_shape() {
        let l = paper_table1();
        assert_eq!(l.len(), 9);
        assert_eq!(l.at_resolution(Resolution::R720).len(), 3);
        assert_eq!(l.at_resolution(Resolution::R360).len(), 4);
        assert_eq!(l.at_resolution(Resolution::R180).len(), 2);
        assert_eq!(l.min_bitrate_at(Resolution::R360), Some(Bitrate::from_kbps(400)));
    }

    #[test]
    fn fine15_has_15_protective_levels() {
        let l = fine15();
        assert_eq!(l.len(), 15);
        let pairs: Vec<(Bitrate, f64)> = l.specs().iter().map(|s| (s.bitrate, s.qoe)).collect();
        assert!(protects_small_streams(&pairs));
    }

    #[test]
    fn fine_subsetting_keeps_extremes() {
        for n in 2..=15 {
            let l = fine(n);
            assert!(l.len() <= n);
            assert!(l.len() >= 2);
            assert_eq!(l.specs().first().unwrap().bitrate, Bitrate::from_kbps(100));
            assert_eq!(l.specs().last().unwrap().bitrate, Bitrate::from_kbps(1500));
        }
    }

    #[test]
    fn coarse3_matches_template_levels() {
        let l = coarse3();
        assert_eq!(l.len(), 3);
        assert_eq!(l.min_bitrate_at(Resolution::R720), Some(Bitrate::from_kbps(1500)));
    }

    #[test]
    fn uniform_ladder_counts_and_uniqueness() {
        for levels in 1..=8 {
            let l = uniform(&[Resolution::R180, Resolution::R360, Resolution::R720], levels);
            assert_eq!(l.len(), 3 * levels, "levels={levels}");
            // Ladder::new enforces bitrate uniqueness; reaching here is the test.
        }
    }

    #[test]
    fn uniform_respects_bands() {
        let l = uniform(&[Resolution::R360], 4);
        for s in l.specs() {
            assert!(s.bitrate >= Bitrate::from_kbps(350));
            assert!(s.bitrate <= Bitrate::from_kbps(800));
        }
    }
}
