//! QoE utility weight generation.
//!
//! §4.4 of the paper sets two requirements on the utility weights:
//!
//! 1. within a resolution, QoE must increase with bitrate (so upgrades pay);
//! 2. **small-stream protection** — the QoE-per-bit ratio must be higher for
//!    small streams than for large ones, so that when two streams compete for
//!    one downlink the knapsack prefers carrying both at reduced bitrate over
//!    dropping one entirely.
//!
//! A concave power law satisfies both. The exponent 0.9 is calibrated so the
//! generated weights track the hand-tuned values in Table 1 of the paper to
//! within a few percent.

use gso_util::Bitrate;

/// Concavity exponent of the default utility curve.
pub const UTILITY_EXPONENT: f64 = 0.9;

/// Scale factor chosen so `default_utility(300 Kbps) ≈ 300`, matching the
/// paper's Table 1 anchoring.
pub const UTILITY_SCALE: f64 = 1.77;

/// The default QoE utility of a stream bitrate: `scale · kbps^0.9`.
///
/// Strictly increasing in bitrate, with a strictly decreasing
/// utility-per-bit ratio (`scale · kbps^-0.1`) — the small-stream protection
/// property.
pub fn default_utility(bitrate: Bitrate) -> f64 {
    UTILITY_SCALE * (bitrate.as_kbps() as f64).powf(UTILITY_EXPONENT)
}

/// Default priority boost for the active speaker's streams (§4.4: "give the
/// host's or speaker's streams higher QoE weights").
///
/// Deliberately modest: §4.4 also demands that "small streams are
/// protected" — a large multiplicative boost would make the knapsack drop
/// every non-speaker stream instead of accommodating everyone at reduced
/// bitrate, because the utility curve is only mildly concave.
pub const SPEAKER_BOOST: f64 = 1.5;

/// Default priority boost for screen-share streams, which are usually the
/// most important content in a meeting.
pub const SCREEN_BOOST: f64 = 2.0;

/// Verify the small-stream protection property over a set of
/// `(bitrate, qoe)` pairs: sorted by bitrate, QoE/bitrate must be
/// non-increasing.
pub fn protects_small_streams(pairs: &[(Bitrate, f64)]) -> bool {
    let mut sorted: Vec<_> = pairs.to_vec();
    sorted.sort_by_key(|(b, _)| *b);
    sorted.windows(2).all(|w| {
        let r0 = w[0].1 / w[0].0.as_bps() as f64;
        let r1 = w[1].1 / w[1].0.as_bps() as f64;
        r1 <= r0 + 1e-12
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utility_increases_with_bitrate() {
        let mut prev = 0.0;
        for kbps in [100u64, 300, 400, 500, 600, 800, 1000, 1300, 1500] {
            let u = default_utility(Bitrate::from_kbps(kbps));
            assert!(u > prev, "{kbps} kbps: {u} <= {prev}");
            prev = u;
        }
    }

    #[test]
    fn utility_per_bit_decreases() {
        let pairs: Vec<(Bitrate, f64)> = [100u64, 300, 600, 1000, 1500]
            .iter()
            .map(|&k| {
                let b = Bitrate::from_kbps(k);
                (b, default_utility(b))
            })
            .collect();
        assert!(protects_small_streams(&pairs));
    }

    #[test]
    fn anchored_near_table1_values() {
        // Table 1: 300 Kbps → 300, 100 Kbps → 100, 1.5 Mbps → 1200.
        let u300 = default_utility(Bitrate::from_kbps(300));
        let u100 = default_utility(Bitrate::from_kbps(100));
        let u1500 = default_utility(Bitrate::from_kbps(1500));
        assert!((u300 - 300.0).abs() / 300.0 < 0.1, "u(300K) = {u300}");
        assert!((u100 - 100.0).abs() / 100.0 < 0.15, "u(100K) = {u100}");
        assert!((u1500 - 1200.0).abs() / 1200.0 < 0.15, "u(1.5M) = {u1500}");
    }

    #[test]
    fn protection_check_rejects_convex_weights() {
        let pairs = vec![
            (Bitrate::from_kbps(100), 50.0),
            (Bitrate::from_kbps(200), 200.0), // per-bit ratio doubles: not protective
        ];
        assert!(!protects_small_streams(&pairs));
    }
}
