//! Multiple-choice knapsack (MCKP) solver — Step 1 of the control algorithm.
//!
//! For a given subscriber `i'`, the downlink is a knapsack of capacity
//! `B_d(i')`; each subscription is a *class*, and each feasible stream of the
//! subscribed source is an *item* with weight = bitrate and value = QoE
//! utility (Eq. 1–4 of the paper). At most one item per class may be chosen.
//!
//! The problem is NP-hard but solvable by dynamic programming in
//! pseudo-polynomial time `O(Σ_classes |items| · W)`, where `W` is the
//! quantized capacity. Bandwidths are quantized to a configurable unit
//! (10 kbps by default): item weights are rounded **up** and the capacity
//! **down**, so a DP solution can never violate the real constraint.
//!
//! ## Determinism
//!
//! Tie-breaking is fully deterministic and matches the worked examples of
//! Table 1 in the paper: classes are processed in the caller's order
//! (publisher id ascending), items within a class in ascending bitrate, and a
//! candidate replaces the incumbent only when *strictly* better. The
//! consequence is that among equal-value solutions, earlier-ordered
//! publishers receive the higher-bitrate allocations.

use gso_util::Bitrate;

/// An item of a knapsack class: one candidate stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McItem {
    /// Quantized weight (bitrate in capacity units), rounded up.
    pub weight: u64,
    /// Value (QoE utility × subscription boost).
    pub value: f64,
}

/// The DP result: per class, the index of the chosen item (or `None`).
#[derive(Debug, Clone, PartialEq)]
pub struct McSolution {
    /// `choices[c] = Some(i)` selects `classes[c][i]`; `None` skips class `c`.
    pub choices: Vec<Option<usize>>,
    /// Total value of the selection.
    pub value: f64,
}

/// Solve the MCKP over quantized units.
///
/// `classes[c]` lists the candidate items of class `c`; callers must order
/// items ascending by weight for the documented tie-breaking (the solver
/// itself is correct for any order). `capacity` is in the same units as the
/// item weights.
pub fn solve_units(classes: &[Vec<McItem>], capacity: u64) -> McSolution {
    if classes.is_empty() {
        return McSolution { choices: Vec::new(), value: 0.0 };
    }
    // The DP never needs more capacity than what all classes could jointly
    // use; trimming keeps the table small when the downlink is huge.
    let max_useful: u64 =
        classes.iter().map(|c| c.iter().map(|i| i.weight).max().unwrap_or(0)).sum();
    let w_max = capacity.min(max_useful) as usize;

    // dp[w] = best value using the classes processed so far with weight ≤ w.
    let mut dp = vec![0.0f64; w_max + 1];
    // choice[c][w] = item picked for class c when the DP passes through
    // weight w, or -1 when the class is skipped on that path.
    let mut choice: Vec<Vec<i32>> = Vec::with_capacity(classes.len());

    for class in classes {
        let mut next = dp.clone(); // skipping the class is always allowed
        let mut ch = vec![-1i32; w_max + 1];
        for (i, item) in class.iter().enumerate() {
            if item.weight as usize > w_max {
                continue;
            }
            let wi = item.weight as usize;
            for w in wi..=w_max {
                let cand = dp[w - wi] + item.value;
                if cand > next[w] {
                    next[w] = cand;
                    ch[w] = i as i32;
                }
            }
        }
        choice.push(ch);
        dp = next;
    }

    // dp is monotone in w, so the optimum sits at w_max. Backtrack.
    let value = dp[w_max];
    let mut choices = vec![None; classes.len()];
    let mut w = w_max;
    for c in (0..classes.len()).rev() {
        let picked = choice[c][w];
        if picked >= 0 {
            let i = picked as usize;
            choices[c] = Some(i);
            w -= classes[c][i].weight as usize;
        }
    }
    McSolution { choices, value }
}

/// Quantize a bitrate-weighted class list and solve.
///
/// `classes[c]` holds `(bitrate, value)` candidates; `unit` is the
/// quantization granularity. Weights round up and capacity rounds down, so
/// the returned selection satisfies `Σ bitrate ≤ capacity` exactly.
pub fn solve_bitrates(
    classes: &[Vec<(Bitrate, f64)>],
    capacity: Bitrate,
    unit: Bitrate,
) -> McSolution {
    assert!(!unit.is_zero(), "quantization unit must be non-zero");
    let u = unit.as_bps();
    let quantized: Vec<Vec<McItem>> = classes
        .iter()
        .map(|c| {
            c.iter().map(|&(b, v)| McItem { weight: b.as_bps().div_ceil(u), value: v }).collect()
        })
        .collect();
    solve_units(&quantized, capacity.as_bps() / u)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kbps(k: u64) -> Bitrate {
        Bitrate::from_kbps(k)
    }

    const UNIT: Bitrate = Bitrate::from_kbps(10);

    #[test]
    fn empty_problem() {
        let s = solve_units(&[], 100);
        assert_eq!(s.value, 0.0);
        assert!(s.choices.is_empty());
    }

    #[test]
    fn single_class_picks_best_fitting() {
        let classes = vec![vec![(kbps(100), 100.0), (kbps(300), 300.0), (kbps(400), 360.0)]];
        let s = solve_bitrates(&classes, kbps(350), UNIT);
        assert_eq!(s.choices, vec![Some(1)]);
        assert_eq!(s.value, 300.0);
    }

    #[test]
    fn class_skipped_when_nothing_fits() {
        let classes = vec![vec![(kbps(500), 440.0)], vec![(kbps(100), 100.0)]];
        let s = solve_bitrates(&classes, kbps(200), UNIT);
        assert_eq!(s.choices, vec![None, Some(0)]);
        assert_eq!(s.value, 100.0);
    }

    #[test]
    fn at_most_one_item_per_class() {
        // One class with two small items that would both fit: only one may
        // be selected.
        let classes = vec![vec![(kbps(100), 100.0), (kbps(200), 150.0)]];
        let s = solve_bitrates(&classes, kbps(1000), UNIT);
        assert_eq!(s.choices, vec![Some(1)]);
        assert_eq!(s.value, 150.0);
    }

    #[test]
    fn capacity_exactly_consumed() {
        let classes = vec![vec![(kbps(400), 360.0)], vec![(kbps(100), 100.0)]];
        let s = solve_bitrates(&classes, kbps(500), UNIT);
        assert_eq!(s.choices, vec![Some(0), Some(0)]);
        assert_eq!(s.value, 460.0);
    }

    /// The tie from Table 1 case 1 (subscriber C): {A@400K, B@100K} and
    /// {A@100K, B@400K} both score 460 under a 500 Kbps downlink; the paper's
    /// solution gives the earlier publisher (A) the larger stream.
    #[test]
    fn tie_breaks_toward_earlier_class() {
        let ladder: Vec<(Bitrate, f64)> = vec![
            (kbps(100), 100.0),
            (kbps(300), 300.0),
            (kbps(400), 360.0),
            (kbps(500), 440.0),
            (kbps(600), 530.0),
            (kbps(800), 700.0),
        ];
        let classes = vec![ladder.clone(), ladder];
        let s = solve_bitrates(&classes, kbps(500), UNIT);
        assert_eq!(s.value, 460.0);
        // Class 0 (publisher A) gets 400K, class 1 (publisher B) gets 100K.
        assert_eq!(s.choices, vec![Some(2), Some(0)]);
    }

    #[test]
    fn weight_rounds_up_capacity_rounds_down() {
        // 105 kbps item with a 10 kbps unit weighs 11 units; a 109 kbps
        // capacity has 10 units — so the item must not fit.
        let classes = vec![vec![(kbps(105), 1.0)]];
        let s = solve_bitrates(&classes, kbps(109), UNIT);
        assert_eq!(s.choices, vec![None]);
        // With 110 kbps capacity it fits.
        let s = solve_bitrates(&classes, kbps(110), UNIT);
        assert_eq!(s.choices, vec![Some(0)]);
    }

    #[test]
    fn non_multiple_bitrates_round_up_per_item() {
        // Two 105 kbps items under a 210 kbps capacity. Their true sum fits
        // exactly, but quantization is per-item and conservative: each item
        // weighs ⌈105/10⌉ = 11 units against a 21-unit capacity, so only one
        // is admitted. Rounding weights down (or to nearest) would instead
        // admit both and rely on exact arithmetic never drifting — the
        // guarantee `Σ bitrate ≤ capacity` must come from the DP itself.
        let classes = vec![vec![(kbps(105), 1.0)], vec![(kbps(105), 1.0)]];
        let s = solve_bitrates(&classes, kbps(210), UNIT);
        assert_eq!(s.choices.iter().flatten().count(), 1);
        // A capacity covering both rounded weights admits both.
        let s = solve_bitrates(&classes, kbps(220), UNIT);
        assert_eq!(s.choices.iter().flatten().count(), 2);
    }

    #[test]
    fn many_classes_optimal_vs_exhaustive() {
        // Cross-check the DP against exhaustive enumeration on a small
        // random-ish instance.
        let classes: Vec<Vec<(Bitrate, f64)>> = vec![
            vec![(kbps(100), 90.0), (kbps(250), 200.0), (kbps(700), 520.0)],
            vec![(kbps(150), 140.0), (kbps(300), 260.0)],
            vec![(kbps(50), 60.0), (kbps(450), 400.0), (kbps(900), 640.0)],
        ];
        let cap = kbps(1000);
        let dp = solve_bitrates(&classes, cap, UNIT);

        let mut best = 0.0f64;
        for a in [None, Some(0), Some(1), Some(2)] {
            for b in [None, Some(0), Some(1)] {
                for c in [None, Some(0), Some(1), Some(2)] {
                    let picks = [(0usize, a), (1, b), (2, c)];
                    let (mut w, mut v) = (0u64, 0.0f64);
                    for (cls, pick) in picks {
                        if let Some(i) = pick {
                            w += classes[cls][i].0.as_bps();
                            v += classes[cls][i].1;
                        }
                    }
                    if w <= cap.as_bps() && v > best {
                        best = v;
                    }
                }
            }
        }
        assert_eq!(dp.value, best);
    }

    #[test]
    fn zero_capacity_selects_nothing() {
        let classes = vec![vec![(kbps(100), 100.0)]];
        let s = solve_bitrates(&classes, Bitrate::ZERO, UNIT);
        assert_eq!(s.choices, vec![None]);
        assert_eq!(s.value, 0.0);
    }
}
