//! Multiple-choice knapsack (MCKP) solver — Step 1 of the control algorithm.
//!
//! For a given subscriber `i'`, the downlink is a knapsack of capacity
//! `B_d(i')`; each subscription is a *class*, and each feasible stream of the
//! subscribed source is an *item* with weight = bitrate and value = QoE
//! utility (Eq. 1–4 of the paper). At most one item per class may be chosen.
//!
//! The problem is NP-hard but solvable by dynamic programming in
//! pseudo-polynomial time `O(Σ_classes |items| · W)`, where `W` is the
//! quantized capacity. Bandwidths are quantized to a configurable unit
//! (10 kbps by default): item weights are rounded **up** and the capacity
//! **down**, so a DP solution can never violate the real constraint.
//!
//! ## Determinism
//!
//! Tie-breaking is fully deterministic and matches the worked examples of
//! Table 1 in the paper: classes are processed in the caller's order
//! (publisher id ascending), items within a class in ascending bitrate, and a
//! candidate replaces the incumbent only when *strictly* better. The
//! consequence is that among equal-value solutions, earlier-ordered
//! publishers receive the higher-bitrate allocations.
//!
//! ## Incrementality
//!
//! [`McState`] keeps the DP checkpoint row *after every class* (a flat
//! `(K+1) × stride` table). Because row `r` depends only on the first `r`
//! classes — never on the capacity, which merely selects the backtrack start
//! column — three cheap re-solve paths fall out:
//!
//! * identical classes and capacity → return the cached selection;
//! * identical classes, different capacity within the stored width → re-run
//!   only the backtrack;
//! * classes changed from index `m` on (e.g. one source's ladder was
//!   Reduced) → recompute only rows `m..K`.
//!
//! Rows are computed at the stored width (`stride`), which may exceed the
//! current capacity column; columns `≤ w` of every row are bit-identical to
//! a table built at exactly width `w`, because an item only ever writes
//! columns `≥ weight` and cell updates scan items in the same order
//! regardless of width. Growth rebuilds therefore add slack (25 %, rounded
//! to a 64-unit boundary, capped at the joint item weight): an oscillating
//! bandwidth estimate cannot force a full rebuild every tick, and the extra
//! columns never change results. The free functions [`solve_units`] /
//! [`solve_bitrates`] remain the one-shot entry points and are wrappers over
//! a fresh [`McState`].
//!
//! ## Memory layout & discipline
//!
//! All state lives in four flat struct-of-arrays slabs: the checkpoint rows
//! (`(K+1) × stride` `f64`s), the item memo (`key_items` + per-class
//! `key_ranges`, replacing a `Vec<Vec<_>>` per class), and the cached
//! selection. There is **no choice table**: the backtrack reconstructs each
//! class's pick by re-running that single cell's item scan against the
//! checkpoint row above it — the same comparison sequence the DP executed,
//! so the reconstructed pick is bit-identical to what a stored table would
//! say, at `O(Σ |items|)` total cost and half the memory traffic. The DP
//! inner loop is a branch-light elementwise `max` over two contiguous `f64`
//! slices ([`relax_row`]); the `simd` cargo feature swaps in a manually
//! 4-lane-unrolled variant of the same elementwise update (bit-identical —
//! the update carries no cross-lane dependency).
//!
//! [`McPool`] recycles retired states' slabs across clients, ticks and
//! conferences: capacity is kept on [`McState::clear`], so a state acquired
//! from the pool re-solves without touching the allocator.

use gso_util::Bitrate;

/// An item of a knapsack class: one candidate stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McItem {
    /// Quantized weight (bitrate in capacity units), rounded up.
    pub weight: u64,
    /// Value (QoE utility × subscription boost).
    pub value: f64,
}

/// The DP result: per class, the index of the chosen item (or `None`).
#[derive(Debug, Clone, PartialEq)]
pub struct McSolution {
    /// `choices[c] = Some(i)` selects `classes[c][i]`; `None` skips class `c`.
    pub choices: Vec<Option<usize>>,
    /// Total value of the selection.
    pub value: f64,
}

/// How much of the memoized DP state a [`McState::solve_flat`] call reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McReuse {
    /// Classes and capacity identical to the previous solve: the cached
    /// selection was returned without touching the table.
    Full,
    /// Classes identical, capacity changed within the stored table width:
    /// only the `O(K)` backtrack re-ran.
    Backtrack,
    /// Classes `first_recomputed..` differ from the memo: their DP rows were
    /// recomputed, earlier rows were reused.
    Suffix {
        /// Index of the first class whose DP row had to be rebuilt.
        first_recomputed: usize,
    },
    /// Nothing reusable: first solve, the capacity outgrew the stored table,
    /// or the very first class changed.
    Fresh,
}

/// Per-call statistics returned by [`McState::solve_flat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McOutcome {
    /// Which reuse path the call took.
    pub reuse: McReuse,
    /// Number of classes in this call.
    pub classes: usize,
}

/// Reusable, incremental MCKP solver state for one knapsack (one subscriber).
///
/// Owns the flat DP checkpoint rows and the flat per-class item memo used to
/// detect which suffix of the class list changed between calls. All buffers
/// are reused across calls; a fresh `McState::default()` behaves exactly
/// like [`solve_units`].
#[derive(Debug, Clone, Default)]
pub struct McState {
    /// Flat item memo: the concatenated class item lists of the last solve
    /// whose DP rows are still stored (struct-of-arrays; one slab, not one
    /// `Vec` per class).
    key_items: Vec<McItem>,
    /// `key_ranges[c]` delimits class `c` inside `key_items`; its length is
    /// the number of memoized classes.
    key_ranges: Vec<(u32, u32)>,
    /// Row length of `rows` (stored capacity + 1; 0 = no table).
    stride: usize,
    /// `(key_ranges.len() + 1) × stride` DP checkpoints; row `r` is the
    /// best-value profile after the first `r` classes (row 0 is all zeros).
    rows: Vec<f64>,
    /// Backtrack start column of the cached selection.
    w_used: usize,
    /// Cached selection of the last solve.
    choices: Vec<Option<usize>>,
    /// Cached total value of the last solve.
    value: f64,
}

impl McState {
    /// Create an empty state (no memo, no allocation).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Selection of the most recent [`Self::solve_flat`] call.
    #[must_use]
    pub fn choices(&self) -> &[Option<usize>] {
        &self.choices
    }

    /// Total value of the most recent [`Self::solve_flat`] call.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Drop all memoized state but keep the allocations for reuse.
    ///
    /// `rows` and `stride` survive on purpose: row 0 is permanently the
    /// all-zero row and every later row is fully overwritten before it is
    /// read, so the next solve can rebuild straight into the slab without a
    /// zero-fill pass over tens of kilobytes of cache-cold memory — the
    /// dominant cost of a cold re-solve against pooled states.
    pub fn clear(&mut self) {
        self.key_items.clear();
        self.key_ranges.clear();
        self.w_used = 0;
        self.choices.clear();
        self.value = 0.0;
    }

    /// Solve the MCKP over quantized units, reusing whatever part of the
    /// previous call's DP table is still valid.
    ///
    /// `ranges[c] = (lo, hi)` delimits class `c`'s items inside the flat
    /// `items` slice — callers keep one growable scratch buffer instead of a
    /// `Vec<Vec<_>>` per solve. Ordering rules match [`solve_units`]. The
    /// selection is read back via [`Self::choices`] / [`Self::value`]; the
    /// result is bit-identical to a fresh [`solve_units`] call on the same
    /// input, whatever state the memo was in.
    // sentinel: hot_path(mckp-dp-rows)
    pub fn solve_flat(
        &mut self,
        items: &[McItem],
        ranges: &[(usize, usize)],
        capacity: u64,
    ) -> McOutcome {
        let k = ranges.len();
        if k == 0 {
            self.key_items.clear();
            self.key_ranges.clear();
            self.choices.clear();
            self.value = 0.0;
            self.w_used = 0;
            return McOutcome { reuse: McReuse::Fresh, classes: 0 };
        }
        // The DP never needs more capacity than what all classes could
        // jointly use; trimming keeps the table small for huge downlinks.
        let max_useful: u64 = ranges
            .iter()
            .map(|&(lo, hi)| {
                let class = items.get(lo..hi).expect("invariant: ranges index into items");
                class.iter().map(|i| i.weight).max().unwrap_or(0)
            })
            .sum();
        let w_max = capacity.min(max_useful) as usize;

        // Longest memoized class prefix matching this call's classes.
        let mut first_dirty = 0;
        for (&(lo, hi), &(klo, khi)) in ranges.iter().zip(self.key_ranges.iter()) {
            let class = items.get(lo..hi).expect("invariant: ranges index into items");
            let key = self
                .key_items
                .get(klo as usize..khi as usize)
                .expect("invariant: key ranges index into the key memo");
            if key != class {
                break;
            }
            first_dirty += 1;
        }

        // A stored table is only usable when at least as wide as the new
        // backtrack column; otherwise rebuild at a wider stride. Every build
        // (including the first) adds 25 % headroom, rounded up to a 64-unit
        // boundary and capped at the joint item weight, so a jittering
        // capacity estimate lands inside the stored table instead of forcing
        // a full rebuild every tick. A slab more than 4× the target (a state
        // recycled from a much bigger knapsack) also rebuilds: the DP row
        // update runs over the full stride, so a grossly oversized slab
        // would tax every future solve. Columns `≤ w` are bit-identical at
        // any stride, so neither the slack nor the hysteresis changes
        // results.
        let needed = w_max + 1;
        let cap_units = (max_useful as usize).saturating_add(1).max(needed);
        let target = (needed + needed / 4).next_multiple_of(64).clamp(needed, cap_units);
        if needed > self.stride || self.stride > target.saturating_mul(4) {
            let shrinking = self.stride > target.saturating_mul(4);
            self.stride = target;
            self.rows.clear();
            self.key_items.clear();
            self.key_ranges.clear();
            if shrinking {
                // The point of the shrink rebuild is to stop paying for a
                // slab sized by a much bigger knapsack — return the memory,
                // don't just stop reading it. `clear` alone keeps capacity,
                // so without this a pooled state adopted from a huge
                // conference would pin its worst-case slab forever. Grow
                // rebuilds skip this: they reallocate upward right away.
                self.rows.shrink_to((k + 1) * target);
                self.key_items.shrink_to(items.len());
                self.key_ranges.shrink_to(k);
            }
            first_dirty = 0;
        }
        let stride = self.stride;

        if first_dirty == k {
            // Every row the backtrack reads is already valid; rows past `k`
            // (from a previously longer class list) are simply abandoned.
            if self.key_ranges.len() == k && w_max == self.w_used {
                return McOutcome { reuse: McReuse::Full, classes: k };
            }
            let keep = self.key_ranges.get(k - 1).map_or(0, |&(_, hi)| hi as usize);
            self.key_items.truncate(keep);
            self.key_ranges.truncate(k);
            self.backtrack(items, ranges, w_max);
            return McOutcome { reuse: McReuse::Backtrack, classes: k };
        }

        // Recompute rows `first_dirty..k` in place; earlier rows are reused.
        // Grow-only: zero-filling matters solely for row 0 (and only right
        // after a stride rebuild emptied the slab); rows past a previously
        // longer class list are abandoned in place, not truncated, so a
        // class count oscillation never re-pays the memset.
        if self.rows.len() < (k + 1) * stride {
            // sentinel: allow(hot-alloc, reason = "memo growth is amortized: steady-state re-solves reuse the buffers without reallocating")
            self.rows.resize((k + 1) * stride, 0.0);
        }
        // Trim the memo to the clean prefix; dirty classes are re-appended
        // below as their rows recompute.
        let keep = if first_dirty == 0 {
            0
        } else {
            self.key_ranges.get(first_dirty - 1).map_or(0, |&(_, hi)| hi as usize)
        };
        self.key_items.truncate(keep);
        self.key_ranges.truncate(first_dirty);
        for (c, &(lo, hi)) in ranges.iter().enumerate().skip(first_dirty) {
            let class = items.get(lo..hi).expect("invariant: ranges index into items");
            let (prev_rows, next_rows) = self.rows.split_at_mut((c + 1) * stride);
            let prev =
                prev_rows.get(c * stride..).expect("invariant: rows hold k+1 rows of width stride");
            let next =
                next_rows.get_mut(..stride).expect("invariant: rows hold k+1 rows of width stride");
            // Skipping the class is always allowed.
            next.copy_from_slice(prev);
            for item in class {
                let wi = item.weight as usize;
                if wi >= stride {
                    continue;
                }
                // `next[w] = max(next[w], prev[w - wi] + value)` for
                // `w ∈ wi..stride`: two contiguous slices, no choice-table
                // traffic, no branches — the loop autovectorizes.
                let dst = next.get_mut(wi..).expect("invariant: wi < stride");
                let src = prev.get(..stride - wi).expect("invariant: wi < stride");
                relax_row(dst, src, item.value);
            }
            let klo = self.key_items.len() as u32;
            // sentinel: allow(hot-alloc, reason = "memo refresh into one flat slab; steady-state re-solves reuse its capacity")
            self.key_items.extend_from_slice(class);
            // sentinel: allow(hot-alloc, reason = "memo refresh into one flat slab; steady-state re-solves reuse its capacity")
            self.key_ranges.push((klo, self.key_items.len() as u32));
        }
        self.backtrack(items, ranges, w_max);
        let reuse = if first_dirty == 0 {
            McReuse::Fresh
        } else {
            McReuse::Suffix { first_recomputed: first_dirty }
        };
        McOutcome { reuse, classes: k }
    }

    /// Walk the checkpoint rows from `w_max` down, refreshing the cached
    /// selection. Rows for all `ranges.len()` classes must be valid.
    ///
    /// There is no stored choice table: each class's pick is reconstructed
    /// by re-running that one cell's item scan against the checkpoint row
    /// above it. The scan repeats the exact comparison sequence the DP
    /// executed for the cell (same item order, same strict-`>` rule, same
    /// additions), so the reconstructed pick — the *last* strict improver —
    /// is bit-identical to what a stored table would hold, at
    /// `O(Σ |items|)` total cost instead of `K × stride` extra memory.
    fn backtrack(&mut self, items: &[McItem], ranges: &[(usize, usize)], w_max: usize) {
        let k = ranges.len();
        let stride = self.stride;
        // dp is monotone in w, so the optimum sits at the capacity column.
        self.value = *self
            .rows
            .get(k * stride + w_max)
            .expect("invariant: rows hold k+1 rows of width stride > w_max");
        self.choices.clear();
        // sentinel: allow(hot-alloc, reason = "selection buffer is reused across solves; grows only when the class count grows")
        self.choices.resize(k, None);
        let mut w = w_max;
        for (c, (slot, &(lo, hi))) in self.choices.iter_mut().zip(ranges.iter()).enumerate().rev() {
            let prev = self
                .rows
                .get(c * stride..c * stride + stride)
                .expect("invariant: rows hold k+1 rows of width stride");
            let class = items.get(lo..hi).expect("invariant: ranges index into items");
            let mut best = *prev.get(w).expect("invariant: w <= w_max < stride");
            let mut pick = None;
            for (i, item) in class.iter().enumerate() {
                let wi = item.weight as usize;
                if wi <= w {
                    let cand =
                        *prev.get(w - wi).expect("invariant: w - wi <= w < stride") + item.value;
                    if cand > best {
                        best = cand;
                        pick = Some(i);
                    }
                }
            }
            if let Some(i) = pick {
                *slot = Some(i);
                w -= class.get(i).expect("invariant: pick indexes the scanned class").weight
                    as usize;
            }
        }
        self.w_used = w_max;
    }
}

/// The DP cell update over one item: `dst[j] = max(dst[j], src[j] + value)`
/// for every lane. Strict `>` keeps the documented tie-breaking (an equal
/// candidate never replaces the incumbent), and the unconditional select
/// store keeps the loop branch-free so it autovectorizes.
#[cfg(not(feature = "simd"))]
#[inline]
fn relax_row(dst: &mut [f64], src: &[f64], value: f64) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        let cand = s + value;
        *d = if cand > *d { cand } else { *d };
    }
}

/// 4-lane manually unrolled variant of [`relax_row`], selected by the `simd`
/// cargo feature. The update is purely elementwise — lane `j` never reads
/// another lane — so any unroll width produces bit-identical tables to the
/// scalar loop; the unroll only hands the backend wider independent chains.
#[cfg(feature = "simd")]
#[inline]
fn relax_row(dst: &mut [f64], src: &[f64], value: f64) {
    let mut d4 = dst.chunks_exact_mut(4);
    let mut s4 = src.chunks_exact(4);
    for (d, s) in d4.by_ref().zip(s4.by_ref()) {
        let ([d0, d1, d2, d3], [s0, s1, s2, s3]) = (d, s) else {
            continue;
        };
        let (c0, c1, c2, c3) = (s0 + value, s1 + value, s2 + value, s3 + value);
        *d0 = if c0 > *d0 { c0 } else { *d0 };
        *d1 = if c1 > *d1 { c1 } else { *d1 };
        *d2 = if c2 > *d2 { c2 } else { *d2 };
        *d3 = if c3 > *d3 { c3 } else { *d3 };
    }
    for (d, s) in d4.into_remainder().iter_mut().zip(s4.remainder().iter()) {
        let cand = s + value;
        *d = if cand > *d { cand } else { *d };
    }
}

/// Recycles the heap slabs behind retired [`McState`]s — checkpoint rows,
/// the flat item memo and the selection buffer — across clients, ticks and
/// conferences.
///
/// [`McState::clear`] keeps buffer capacity, so a state acquired from the
/// pool re-solves a similarly shaped knapsack without touching the
/// allocator. The engine retires a departing client's state here and seeds
/// joining clients from it; the batch scheduler moves whole pools between
/// conferences the same way ([`McPool::absorb`]).
///
/// Recycling is FIFO: a roster retired in client order and re-acquired in
/// client order hands every client its *own* slab back, so preserved row
/// strides line up with each client's downlink instead of shuffling across
/// heterogeneous capacities.
#[derive(Debug, Default)]
pub struct McPool {
    states: std::collections::VecDeque<McState>,
}

impl McPool {
    /// An empty pool (no allocation).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Retire a state: its memo is cleared, its slabs keep their capacity
    /// for the next [`acquire`](Self::acquire).
    pub fn retire(&mut self, mut state: McState) {
        state.clear();
        // sentinel: allow(hot-alloc, reason = "pool growth is bounded by peak concurrent clients; steady-state churn pops and pushes within capacity")
        self.states.push_back(state);
    }

    /// Hand out a cleared state, reusing retired slabs when available.
    pub fn acquire(&mut self) -> McState {
        self.states.pop_front().unwrap_or_default()
    }

    /// Move every retired state of `other` into this pool (cross-conference
    /// recycling: a torn-down conference's slabs serve new ones).
    pub fn absorb(&mut self, mut other: McPool) {
        self.states.append(&mut other.states);
    }

    /// Number of retired states currently held.
    #[must_use]
    pub fn idle_states(&self) -> usize {
        self.states.len()
    }
}

/// Solve the MCKP over quantized units.
///
/// `classes[c]` lists the candidate items of class `c`; callers must order
/// items ascending by weight for the documented tie-breaking (the solver
/// itself is correct for any order). `capacity` is in the same units as the
/// item weights.
pub fn solve_units(classes: &[Vec<McItem>], capacity: u64) -> McSolution {
    let mut items = Vec::new();
    let mut ranges = Vec::with_capacity(classes.len());
    for class in classes {
        let lo = items.len();
        items.extend_from_slice(class);
        ranges.push((lo, items.len()));
    }
    let mut state = McState::default();
    state.solve_flat(&items, &ranges, capacity);
    McSolution { choices: state.choices().to_vec(), value: state.value() }
}

/// Quantize a bitrate-weighted class list and solve.
///
/// `classes[c]` holds `(bitrate, value)` candidates; `unit` is the
/// quantization granularity. Weights round up and capacity rounds down, so
/// the returned selection satisfies `Σ bitrate ≤ capacity` exactly.
pub fn solve_bitrates(
    classes: &[Vec<(Bitrate, f64)>],
    capacity: Bitrate,
    unit: Bitrate,
) -> McSolution {
    assert!(!unit.is_zero(), "quantization unit must be non-zero");
    let u = unit.as_bps();
    // Quantize straight into the flat item layout `solve_flat` consumes;
    // no intermediate per-class vectors.
    let items: Vec<McItem> = classes
        .iter()
        .flatten()
        .map(|&(b, v)| McItem { weight: b.as_bps().div_ceil(u), value: v })
        // sentinel: allow(hot-alloc, reason = "one-shot convenience entry; incremental callers quantize into reused flat buffers")
        .collect();
    let mut lo = 0;
    let ranges: Vec<(usize, usize)> = classes
        .iter()
        .map(|c| {
            let r = (lo, lo + c.len());
            lo += c.len();
            r
        })
        // sentinel: allow(hot-alloc, reason = "one-shot convenience entry; incremental callers quantize into reused flat buffers")
        .collect();
    let units = capacity.as_bps().checked_div(u).expect("invariant: unit checked non-zero above");
    let mut state = McState::default();
    state.solve_flat(&items, &ranges, units);
    // sentinel: allow(hot-alloc, reason = "one-shot convenience entry returns an owned selection by API contract")
    McSolution { choices: state.choices().to_vec(), value: state.value() }
}

/// Quantize one bitrate to capacity units (round **up**), exactly as
/// [`solve_bitrates`] does. Exposed so incremental callers building flat
/// [`McItem`] buffers themselves stay bit-identical to the one-shot path.
#[must_use]
pub fn quantize_weight(bitrate: Bitrate, unit: Bitrate) -> u64 {
    debug_assert!(!unit.is_zero(), "quantization unit must be non-zero");
    bitrate.as_bps().div_ceil(unit.as_bps())
}

/// Quantize a capacity to units (round **down**), exactly as
/// [`solve_bitrates`] does.
#[must_use]
pub fn quantize_capacity(capacity: Bitrate, unit: Bitrate) -> u64 {
    debug_assert!(!unit.is_zero(), "quantization unit must be non-zero");
    capacity.as_bps().checked_div(unit.as_bps()).expect("invariant: quantization unit is non-zero")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kbps(k: u64) -> Bitrate {
        Bitrate::from_kbps(k)
    }

    const UNIT: Bitrate = Bitrate::from_kbps(10);

    #[test]
    fn empty_problem() {
        let s = solve_units(&[], 100);
        assert_eq!(s.value, 0.0);
        assert!(s.choices.is_empty());
    }

    #[test]
    fn single_class_picks_best_fitting() {
        let classes = vec![vec![(kbps(100), 100.0), (kbps(300), 300.0), (kbps(400), 360.0)]];
        let s = solve_bitrates(&classes, kbps(350), UNIT);
        assert_eq!(s.choices, vec![Some(1)]);
        assert_eq!(s.value, 300.0);
    }

    #[test]
    fn class_skipped_when_nothing_fits() {
        let classes = vec![vec![(kbps(500), 440.0)], vec![(kbps(100), 100.0)]];
        let s = solve_bitrates(&classes, kbps(200), UNIT);
        assert_eq!(s.choices, vec![None, Some(0)]);
        assert_eq!(s.value, 100.0);
    }

    #[test]
    fn at_most_one_item_per_class() {
        // One class with two small items that would both fit: only one may
        // be selected.
        let classes = vec![vec![(kbps(100), 100.0), (kbps(200), 150.0)]];
        let s = solve_bitrates(&classes, kbps(1000), UNIT);
        assert_eq!(s.choices, vec![Some(1)]);
        assert_eq!(s.value, 150.0);
    }

    #[test]
    fn capacity_exactly_consumed() {
        let classes = vec![vec![(kbps(400), 360.0)], vec![(kbps(100), 100.0)]];
        let s = solve_bitrates(&classes, kbps(500), UNIT);
        assert_eq!(s.choices, vec![Some(0), Some(0)]);
        assert_eq!(s.value, 460.0);
    }

    /// The tie from Table 1 case 1 (subscriber C): {A@400K, B@100K} and
    /// {A@100K, B@400K} both score 460 under a 500 Kbps downlink; the paper's
    /// solution gives the earlier publisher (A) the larger stream.
    #[test]
    fn tie_breaks_toward_earlier_class() {
        let ladder: Vec<(Bitrate, f64)> = vec![
            (kbps(100), 100.0),
            (kbps(300), 300.0),
            (kbps(400), 360.0),
            (kbps(500), 440.0),
            (kbps(600), 530.0),
            (kbps(800), 700.0),
        ];
        let classes = vec![ladder.clone(), ladder];
        let s = solve_bitrates(&classes, kbps(500), UNIT);
        assert_eq!(s.value, 460.0);
        // Class 0 (publisher A) gets 400K, class 1 (publisher B) gets 100K.
        assert_eq!(s.choices, vec![Some(2), Some(0)]);
    }

    #[test]
    fn weight_rounds_up_capacity_rounds_down() {
        // 105 kbps item with a 10 kbps unit weighs 11 units; a 109 kbps
        // capacity has 10 units — so the item must not fit.
        let classes = vec![vec![(kbps(105), 1.0)]];
        let s = solve_bitrates(&classes, kbps(109), UNIT);
        assert_eq!(s.choices, vec![None]);
        // With 110 kbps capacity it fits.
        let s = solve_bitrates(&classes, kbps(110), UNIT);
        assert_eq!(s.choices, vec![Some(0)]);
    }

    #[test]
    fn non_multiple_bitrates_round_up_per_item() {
        // Two 105 kbps items under a 210 kbps capacity. Their true sum fits
        // exactly, but quantization is per-item and conservative: each item
        // weighs ⌈105/10⌉ = 11 units against a 21-unit capacity, so only one
        // is admitted. Rounding weights down (or to nearest) would instead
        // admit both and rely on exact arithmetic never drifting — the
        // guarantee `Σ bitrate ≤ capacity` must come from the DP itself.
        let classes = vec![vec![(kbps(105), 1.0)], vec![(kbps(105), 1.0)]];
        let s = solve_bitrates(&classes, kbps(210), UNIT);
        assert_eq!(s.choices.iter().flatten().count(), 1);
        // A capacity covering both rounded weights admits both.
        let s = solve_bitrates(&classes, kbps(220), UNIT);
        assert_eq!(s.choices.iter().flatten().count(), 2);
    }

    #[test]
    fn many_classes_optimal_vs_exhaustive() {
        // Cross-check the DP against exhaustive enumeration on a small
        // random-ish instance.
        let classes: Vec<Vec<(Bitrate, f64)>> = vec![
            vec![(kbps(100), 90.0), (kbps(250), 200.0), (kbps(700), 520.0)],
            vec![(kbps(150), 140.0), (kbps(300), 260.0)],
            vec![(kbps(50), 60.0), (kbps(450), 400.0), (kbps(900), 640.0)],
        ];
        let cap = kbps(1000);
        let dp = solve_bitrates(&classes, cap, UNIT);

        let mut best = 0.0f64;
        for a in [None, Some(0), Some(1), Some(2)] {
            for b in [None, Some(0), Some(1)] {
                for c in [None, Some(0), Some(1), Some(2)] {
                    let picks = [(0usize, a), (1, b), (2, c)];
                    let (mut w, mut v) = (0u64, 0.0f64);
                    for (cls, pick) in picks {
                        if let Some(i) = pick {
                            w += classes[cls][i].0.as_bps();
                            v += classes[cls][i].1;
                        }
                    }
                    if w <= cap.as_bps() && v > best {
                        best = v;
                    }
                }
            }
        }
        assert_eq!(dp.value, best);
    }

    #[test]
    fn zero_capacity_selects_nothing() {
        let classes = vec![vec![(kbps(100), 100.0)]];
        let s = solve_bitrates(&classes, Bitrate::ZERO, UNIT);
        assert_eq!(s.choices, vec![None]);
        assert_eq!(s.value, 0.0);
    }

    // ---- incremental McState paths -------------------------------------

    fn flatten(classes: &[Vec<McItem>]) -> (Vec<McItem>, Vec<(usize, usize)>) {
        let mut items = Vec::new();
        let mut ranges = Vec::new();
        for class in classes {
            let lo = items.len();
            items.extend_from_slice(class);
            ranges.push((lo, items.len()));
        }
        (items, ranges)
    }

    fn assert_matches_fresh(state: &McState, classes: &[Vec<McItem>], capacity: u64) {
        let fresh = solve_units(classes, capacity);
        assert_eq!(state.choices(), fresh.choices.as_slice());
        assert_eq!(state.value().to_bits(), fresh.value.to_bits());
    }

    fn item(weight: u64, value: f64) -> McItem {
        McItem { weight, value }
    }

    fn sample_classes() -> Vec<Vec<McItem>> {
        vec![
            vec![item(10, 90.0), item(25, 200.0), item(70, 520.0)],
            vec![item(15, 140.0), item(30, 260.0)],
            vec![item(5, 60.0), item(45, 400.0), item(90, 640.0)],
        ]
    }

    #[test]
    fn state_full_hit_on_identical_call() {
        let classes = sample_classes();
        let (items, ranges) = flatten(&classes);
        let mut st = McState::new();
        let first = st.solve_flat(&items, &ranges, 100);
        assert_eq!(first.reuse, McReuse::Fresh);
        let second = st.solve_flat(&items, &ranges, 100);
        assert_eq!(second.reuse, McReuse::Full);
        assert_matches_fresh(&st, &classes, 100);
    }

    #[test]
    fn state_backtracks_on_capacity_decrease() {
        let classes = sample_classes();
        let (items, ranges) = flatten(&classes);
        let mut st = McState::new();
        st.solve_flat(&items, &ranges, 100);
        let out = st.solve_flat(&items, &ranges, 60);
        assert_eq!(out.reuse, McReuse::Backtrack);
        assert_matches_fresh(&st, &classes, 60);
        // Growing back within the stored width is also backtrack-only.
        let out = st.solve_flat(&items, &ranges, 95);
        assert_eq!(out.reuse, McReuse::Backtrack);
        assert_matches_fresh(&st, &classes, 95);
    }

    #[test]
    fn state_recomputes_suffix_on_class_change() {
        let mut classes = sample_classes();
        let (items, ranges) = flatten(&classes);
        let mut st = McState::new();
        st.solve_flat(&items, &ranges, 100);
        // Shrink the middle class (a Reduction on that source's ladder).
        classes[1].pop();
        let (items, ranges) = flatten(&classes);
        let out = st.solve_flat(&items, &ranges, 100);
        assert_eq!(out.reuse, McReuse::Suffix { first_recomputed: 1 });
        assert_matches_fresh(&st, &classes, 100);
    }

    #[test]
    fn state_resets_when_capacity_outgrows_table() {
        let classes = sample_classes();
        let (items, ranges) = flatten(&classes);
        let mut st = McState::new();
        st.solve_flat(&items, &ranges, 40);
        // max_useful is 70+30+90 = 190, so capacity 150 widens the table.
        let out = st.solve_flat(&items, &ranges, 150);
        assert_eq!(out.reuse, McReuse::Fresh);
        assert_matches_fresh(&st, &classes, 150);
    }

    #[test]
    fn growth_rebuild_leaves_headroom_for_the_next_wobble() {
        let classes = sample_classes();
        let (items, ranges) = flatten(&classes);
        let mut st = McState::new();
        st.solve_flat(&items, &ranges, 40);
        // First growth rebuilds with 25 % slack rounded to a 64 boundary…
        let out = st.solve_flat(&items, &ranges, 100);
        assert_eq!(out.reuse, McReuse::Fresh);
        assert_matches_fresh(&st, &classes, 100);
        // …so a further bump within the headroom (needed 126 → stride 128)
        // reuses the stored rows instead of rebuilding again.
        let out = st.solve_flat(&items, &ranges, 120);
        assert_eq!(out.reuse, McReuse::Backtrack);
        assert_matches_fresh(&st, &classes, 120);
        // Shrinking back down never rebuilds either.
        let out = st.solve_flat(&items, &ranges, 40);
        assert_eq!(out.reuse, McReuse::Backtrack);
        assert_matches_fresh(&st, &classes, 40);
    }

    #[test]
    fn slack_stride_is_capped_at_joint_item_weight() {
        let classes = sample_classes();
        let (items, ranges) = flatten(&classes);
        let mut st = McState::new();
        st.solve_flat(&items, &ranges, 40);
        // max_useful is 190; growth to capacity 300 clamps w_max to 190 and
        // the slack to 191 columns — no table wider than ever useful.
        let out = st.solve_flat(&items, &ranges, 300);
        assert_eq!(out.reuse, McReuse::Fresh);
        assert_matches_fresh(&st, &classes, 300);
        assert_eq!(st.stride, 191);
    }

    #[test]
    fn pool_recycles_slab_capacity_across_states() {
        let classes = sample_classes();
        let (items, ranges) = flatten(&classes);
        let mut st = McState::new();
        st.solve_flat(&items, &ranges, 100);
        let rows_cap = st.rows.capacity();
        assert!(rows_cap > 0);

        let mut pool = McPool::new();
        pool.retire(st);
        assert_eq!(pool.idle_states(), 1);

        // The recycled state starts cleared but keeps its slabs.
        let mut st = pool.acquire();
        assert_eq!(pool.idle_states(), 0);
        assert!(st.choices().is_empty());
        assert_eq!(st.rows.capacity(), rows_cap);
        let out = st.solve_flat(&items, &ranges, 100);
        assert_eq!(out.reuse, McReuse::Fresh);
        assert_matches_fresh(&st, &classes, 100);

        // An exhausted pool hands out fresh states; absorb merges pools.
        let other = McPool::new();
        pool.retire(McState::new());
        let mut merged = McPool::new();
        merged.absorb(pool);
        merged.absorb(other);
        assert_eq!(merged.idle_states(), 1);
        assert!(merged.acquire().choices().is_empty());
        assert!(merged.acquire().choices().is_empty());
    }

    #[test]
    fn state_reuses_prefix_when_class_list_shrinks_and_grows() {
        let classes = sample_classes();
        let (items, ranges) = flatten(&classes);
        let mut st = McState::new();
        st.solve_flat(&items, &ranges, 100);
        // Drop the last class entirely: prefix rows stay valid.
        let short: Vec<Vec<McItem>> = classes[..2].to_vec();
        let (items2, ranges2) = flatten(&short);
        let out = st.solve_flat(&items2, &ranges2, 100);
        assert_eq!(out.reuse, McReuse::Backtrack);
        assert_matches_fresh(&st, &short, 100);
        // Grow back to three classes: only the last row recomputes.
        let out = st.solve_flat(&items, &ranges, 100);
        assert_eq!(out.reuse, McReuse::Suffix { first_recomputed: 2 });
        assert_matches_fresh(&st, &classes, 100);
    }

    #[test]
    fn state_matches_fresh_across_random_mutation_sequence() {
        // Deterministic LCG so the test is reproducible without a rand dep.
        let mut seed = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            seed >> 33
        };
        let mut classes = sample_classes();
        let mut capacity = 80u64;
        let mut st = McState::new();
        for _ in 0..200 {
            match next() % 4 {
                0 => capacity = 20 + next() % 160,
                1 => {
                    // Mutate one item's weight.
                    let c = (next() as usize) % classes.len();
                    let i = (next() as usize) % classes[c].len();
                    classes[c][i].weight = 1 + next() % 95;
                }
                2 => {
                    // Shrink a class (keep at least one item).
                    let c = (next() as usize) % classes.len();
                    if classes[c].len() > 1 {
                        classes[c].pop();
                    }
                }
                _ => {
                    // Grow a class.
                    let c = (next() as usize) % classes.len();
                    classes[c].push(item(1 + next() % 95, (next() % 700) as f64));
                }
            }
            let (items, ranges) = flatten(&classes);
            st.solve_flat(&items, &ranges, capacity);
            assert_matches_fresh(&st, &classes, capacity);
        }
    }

    /// Classes sized so the solve needs roughly `w` units of DP width.
    fn sized_classes(w: u64) -> Vec<Vec<McItem>> {
        vec![vec![item(w / 2, 100.0), item(w, 300.0)], vec![item(w / 2, 90.0), item(w, 250.0)]]
    }

    #[test]
    fn shrink_hysteresis_releases_slab_after_sustained_small_problems() {
        // A state shaped by a huge knapsack (e.g. adopted from the pool
        // after serving a high-capacity client) must not pin its worst-case
        // slab forever once it settles onto small problems.
        let big = sized_classes(50_000);
        let (items, ranges) = flatten(&big);
        let mut st = McState::new();
        st.solve_flat(&items, &ranges, 100_000);
        let big_cap = st.rows.capacity();
        assert!(big_cap > 100_000, "big solve must build a wide slab");

        let small = sized_classes(100);
        let (items, ranges) = flatten(&small);
        for _ in 0..8 {
            st.solve_flat(&items, &ranges, 200);
            assert_matches_fresh(&st, &small, 200);
        }
        assert!(
            st.rows.capacity() < big_cap / 10,
            "4x shrink hysteresis must release the oversized slab \
             (still holding {} of {} f64s)",
            st.rows.capacity(),
            big_cap,
        );
    }

    #[test]
    fn pooled_state_adopted_for_small_problems_releases_memory() {
        // Same scenario through the pool: retire a state shaped by a big
        // conference, re-acquire it for a small one.
        let big = sized_classes(50_000);
        let (items, ranges) = flatten(&big);
        let mut st = McState::new();
        st.solve_flat(&items, &ranges, 100_000);
        let big_cap = st.rows.capacity();

        let mut pool = McPool::new();
        pool.retire(st);
        let mut st = pool.acquire();
        assert_eq!(st.rows.capacity(), big_cap, "retire/acquire keeps slabs");

        let small = sized_classes(100);
        let (items, ranges) = flatten(&small);
        st.solve_flat(&items, &ranges, 200);
        assert_matches_fresh(&st, &small, 200);
        assert!(st.rows.capacity() < big_cap / 10, "adopted slab must be released, not hoarded");
    }

    #[test]
    fn alternating_sizes_within_hysteresis_never_thrash() {
        // Two capacities within the 4x hysteresis band: after the first
        // build at the larger size, neither direction may rebuild or touch
        // the allocator — the 25% headroom absorbs the jitter upward and
        // the 4x band absorbs it downward.
        let classes = sized_classes(1_500);
        let (items, ranges) = flatten(&classes);
        let mut st = McState::new();
        st.solve_flat(&items, &ranges, 1_500);
        let stride = st.stride;
        let cap = st.rows.capacity();
        for round in 0..10 {
            let capacity = if round % 2 == 0 { 1_000 } else { 1_500 };
            let out = st.solve_flat(&items, &ranges, capacity);
            assert_ne!(
                out.reuse,
                McReuse::Fresh,
                "alternating within the band must reuse, not rebuild (round {round})"
            );
            assert_eq!(st.stride, stride, "stride must be stable across alternation");
            assert_eq!(st.rows.capacity(), cap, "no allocator traffic across alternation");
            assert_matches_fresh(&st, &classes, capacity);
        }
    }

    #[test]
    fn quantize_helpers_match_solve_bitrates() {
        assert_eq!(quantize_weight(kbps(105), UNIT), 11);
        assert_eq!(quantize_weight(kbps(100), UNIT), 10);
        assert_eq!(quantize_capacity(kbps(109), UNIT), 10);
        assert_eq!(quantize_capacity(kbps(110), UNIT), 11);
    }
}
