//! Orchestration solutions and their validation.
//!
//! A [`Solution`] is the controller's output: for every publisher source, the
//! set of streams to publish (at most one per resolution), each with the set
//! of subscribers it serves. The conference node turns this into TMMBR
//! feedback toward publishers and forwarding rules toward accessing nodes.

use crate::problem::{Problem, SourceId};
use crate::types::Resolution;
use gso_util::{Bitrate, ClientId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One stream a publisher source is instructed to send: the pair
/// `(M_i^R, s_i^R)` of §4.1.2 — a resolution/bitrate plus its audience.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublishPolicy {
    /// Resolution of the stream.
    pub resolution: Resolution,
    /// Bitrate the publisher must encode at.
    pub bitrate: Bitrate,
    /// `(subscriber, tag)` pairs served by this stream.
    pub audience: Vec<(ClientId, u8)>,
}

/// One stream a subscriber receives, as seen from the receiving side.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReceivedStream {
    /// The source it comes from.
    pub source: SourceId,
    /// Virtual-publisher tag of the subscription that produced it.
    pub tag: u8,
    /// Resolution delivered.
    pub resolution: Resolution,
    /// Bitrate delivered (post-merge, so ≤ the bitrate requested in Step 1).
    pub bitrate: Bitrate,
    /// QoE utility credited for this stream (boost included).
    pub qoe: f64,
}

/// The controller's decision for a whole conference.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Streams each source publishes; at most one per resolution.
    pub publish: BTreeMap<SourceId, Vec<PublishPolicy>>,
    /// Streams each subscriber receives.
    pub received: BTreeMap<ClientId, Vec<ReceivedStream>>,
    /// Σ over subscribers of received QoE — the objective value achieved.
    pub total_qoe: f64,
    /// Number of Knapsack–Merge–Reduction iterations the solver ran.
    pub iterations: usize,
}

impl Solution {
    /// True when this solution came from a template baseline (the control
    /// plane's fallback path) rather than from the solver: the solver always
    /// runs at least one Knapsack–Merge–Reduction iteration, the baseline
    /// runs none. The fleet's overload shedding uses this to tell demoted
    /// conferences apart from freshly solved ones.
    pub fn is_template_baseline(&self) -> bool {
        self.iterations == 0
    }

    /// Total bitrate a client publishes across all of its sources.
    pub fn publish_rate(&self, client: ClientId) -> Bitrate {
        self.publish
            .iter()
            .filter(|(src, _)| src.client == client)
            .flat_map(|(_, ps)| ps.iter().map(|p| p.bitrate))
            .sum()
    }

    /// Total bitrate a client receives.
    pub fn receive_rate(&self, client: ClientId) -> Bitrate {
        self.received.get(&client).map_or(Bitrate::ZERO, |rs| rs.iter().map(|r| r.bitrate).sum())
    }

    /// The publish policies of one source (empty if it sends nothing).
    pub fn policies(&self, source: SourceId) -> &[PublishPolicy] {
        self.publish.get(&source).map_or(&[], Vec::as_slice)
    }

    /// The stream a subscriber receives from a source under a given tag.
    pub fn received_from(
        &self,
        subscriber: ClientId,
        source: SourceId,
        tag: u8,
    ) -> Option<ReceivedStream> {
        self.received.get(&subscriber)?.iter().copied().find(|r| r.source == source && r.tag == tag)
    }

    /// Validate the solution against every constraint family of §4.1.
    ///
    /// This is used by tests and by property-based checks: any solution the
    /// solver emits must pass.
    pub fn validate(&self, problem: &Problem) -> Result<(), ConstraintViolation> {
        // Codec capability: at most one stream per resolution per source,
        // and every published bitrate must exist in the source's ladder at
        // that resolution.
        for (src, policies) in &self.publish {
            let ladder =
                &problem.source(*src).ok_or(ConstraintViolation::UnknownSource(*src))?.ladder;
            // sentinel: allow(hot-alloc, reason = "validation scratch, bounded by policies per source; validate runs off the steady-state switch path")
            let mut seen = Vec::new();
            for p in policies {
                if seen.contains(&p.resolution) {
                    return Err(ConstraintViolation::DuplicateResolution(*src, p.resolution));
                }
                // sentinel: allow(hot-alloc, reason = "validation scratch, bounded by policies per source; validate runs off the steady-state switch path")
                seen.push(p.resolution);
                let spec = ladder.spec_for_bitrate(p.bitrate);
                match spec {
                    Some(s) if s.resolution == p.resolution => {}
                    _ => {
                        return Err(ConstraintViolation::BitrateNotInLadder(*src, p.bitrate));
                    }
                }
                if p.audience.is_empty() {
                    return Err(ConstraintViolation::StreamWithoutAudience(*src, p.bitrate));
                }
            }
        }

        // Uplink: Σ published ≤ B_u per client.
        for c in problem.clients() {
            let rate = self.publish_rate(c.id);
            if rate > c.uplink {
                return Err(ConstraintViolation::UplinkExceeded(c.id, rate, c.uplink));
            }
        }

        // Downlink: Σ received ≤ B_d per client.
        for c in problem.clients() {
            let rate = self.receive_rate(c.id);
            if rate > c.downlink {
                return Err(ConstraintViolation::DownlinkExceeded(c.id, rate, c.downlink));
            }
        }

        // Subscription constraints: every received stream corresponds to an
        // actual subscription, respects its resolution cap, and a
        // (subscriber, source, tag) receives at most one stream.
        for (sub, streams) in &self.received {
            // sentinel: allow(hot-alloc, reason = "validation scratch, bounded by policies per source; validate runs off the steady-state switch path")
            let mut seen = Vec::new();
            for r in streams {
                if seen.contains(&(r.source, r.tag)) {
                    return Err(ConstraintViolation::MultipleStreamsPerSubscription(
                        *sub, r.source, r.tag,
                    ));
                }
                // sentinel: allow(hot-alloc, reason = "validation scratch, bounded by policies per source; validate runs off the steady-state switch path")
                seen.push((r.source, r.tag));
                let subscription = problem
                    .subscriptions_of(*sub)
                    .into_iter()
                    .find(|s| s.source == r.source && s.tag == r.tag)
                    .ok_or(ConstraintViolation::NoSuchSubscription(*sub, r.source, r.tag))?;
                if r.resolution > subscription.max_resolution {
                    return Err(ConstraintViolation::ResolutionCapExceeded(
                        *sub,
                        r.source,
                        r.resolution,
                        subscription.max_resolution,
                    ));
                }
                // The received stream must be one the source publishes, at a
                // matching resolution/bitrate, with this subscriber listed.
                let policy = self
                    .policies(r.source)
                    .iter()
                    .find(|p| p.resolution == r.resolution && p.bitrate == r.bitrate)
                    .ok_or(ConstraintViolation::ReceivedUnpublishedStream(*sub, r.source))?;
                if !policy.audience.contains(&(*sub, r.tag)) {
                    return Err(ConstraintViolation::NotInAudience(*sub, r.source, r.tag));
                }
            }
        }

        // Consistency the other way: every audience member of every published
        // stream must have a matching received entry.
        for (src, policies) in &self.publish {
            for p in policies {
                for &(sub, tag) in &p.audience {
                    let got = self.received_from(sub, *src, tag);
                    match got {
                        Some(r) if r.bitrate == p.bitrate && r.resolution == p.resolution => {}
                        _ => return Err(ConstraintViolation::AudienceMissingReceiver(*src, sub)),
                    }
                }
            }
        }

        Ok(())
    }
}

/// A violated constraint, found by [`Solution::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConstraintViolation {
    /// A published source does not exist in the problem.
    UnknownSource(SourceId),
    /// A source publishes two streams at one resolution (codec constraint).
    DuplicateResolution(SourceId, Resolution),
    /// A published bitrate is not in the source's feasible set.
    BitrateNotInLadder(SourceId, Bitrate),
    /// A stream is published with an empty audience — wasted uplink, which
    /// GSO exists to eliminate (Fig. 3a/3d).
    StreamWithoutAudience(SourceId, Bitrate),
    /// Uplink bandwidth constraint violated: (client, used, limit).
    UplinkExceeded(ClientId, Bitrate, Bitrate),
    /// Downlink bandwidth constraint violated: (client, used, limit).
    DownlinkExceeded(ClientId, Bitrate, Bitrate),
    /// More than one stream delivered for one (subscriber, source, tag).
    MultipleStreamsPerSubscription(ClientId, SourceId, u8),
    /// A received stream has no matching subscription.
    NoSuchSubscription(ClientId, SourceId, u8),
    /// Delivered resolution exceeds the subscription's cap.
    ResolutionCapExceeded(ClientId, SourceId, Resolution, Resolution),
    /// A subscriber "receives" a stream its source does not publish.
    ReceivedUnpublishedStream(ClientId, SourceId),
    /// A subscriber receives a stream whose policy does not list it.
    NotInAudience(ClientId, SourceId, u8),
    /// A policy's audience member has no corresponding received entry.
    AudienceMissingReceiver(SourceId, ClientId),
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintViolation::UnknownSource(s) => write!(f, "unknown source {s}"),
            ConstraintViolation::DuplicateResolution(s, r) => {
                write!(f, "{s} publishes two streams at {r}")
            }
            ConstraintViolation::BitrateNotInLadder(s, b) => {
                write!(f, "{s} publishes {b} which is not in its ladder")
            }
            ConstraintViolation::StreamWithoutAudience(s, b) => {
                write!(f, "{s} publishes {b} with no audience")
            }
            ConstraintViolation::UplinkExceeded(c, used, lim) => {
                write!(f, "{c} uplink exceeded: {used} > {lim}")
            }
            ConstraintViolation::DownlinkExceeded(c, used, lim) => {
                write!(f, "{c} downlink exceeded: {used} > {lim}")
            }
            ConstraintViolation::MultipleStreamsPerSubscription(c, s, t) => {
                write!(f, "{c} receives multiple streams from {s} tag {t}")
            }
            ConstraintViolation::NoSuchSubscription(c, s, t) => {
                write!(f, "{c} receives from {s} tag {t} without a subscription")
            }
            ConstraintViolation::ResolutionCapExceeded(c, s, got, cap) => {
                write!(f, "{c} receives {got} from {s}, above cap {cap}")
            }
            ConstraintViolation::ReceivedUnpublishedStream(c, s) => {
                write!(f, "{c} receives a stream {s} does not publish")
            }
            ConstraintViolation::NotInAudience(c, s, t) => {
                write!(f, "{c} (tag {t}) not in audience of {s}")
            }
            ConstraintViolation::AudienceMissingReceiver(s, c) => {
                write!(f, "{s} lists {c} in an audience but {c} has no received entry")
            }
        }
    }
}

impl std::error::Error for ConstraintViolation {}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "solution (QoE {:.1}, {} iterations):", self.total_qoe, self.iterations)?;
        for (src, policies) in &self.publish {
            write!(f, "  {src} publishes:")?;
            if policies.is_empty() {
                write!(f, " nothing")?;
            }
            for p in policies {
                write!(f, " {}@{} (to {} subs)", p.resolution, p.bitrate, p.audience.len())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ClientSpec, Subscription};
    use crate::types::{Ladder, StreamSpec};

    fn ladder() -> Ladder {
        Ladder::new(vec![
            StreamSpec::new(Resolution::R180, Bitrate::from_kbps(100), 100.0),
            StreamSpec::new(Resolution::R720, Bitrate::from_kbps(1500), 1200.0),
        ])
        .unwrap()
    }

    fn two_client_problem() -> Problem {
        Problem::new(
            vec![
                ClientSpec::new(
                    ClientId(1),
                    Bitrate::from_mbps(5),
                    Bitrate::from_mbps(5),
                    ladder(),
                ),
                ClientSpec::new(
                    ClientId(2),
                    Bitrate::from_mbps(5),
                    Bitrate::from_mbps(5),
                    ladder(),
                ),
            ],
            vec![Subscription::new(ClientId(2), SourceId::video(ClientId(1)), Resolution::R720)],
        )
        .unwrap()
    }

    fn valid_solution() -> Solution {
        let src = SourceId::video(ClientId(1));
        let mut publish = BTreeMap::new();
        publish.insert(
            src,
            vec![PublishPolicy {
                resolution: Resolution::R720,
                bitrate: Bitrate::from_kbps(1500),
                audience: vec![(ClientId(2), 0)],
            }],
        );
        let mut received = BTreeMap::new();
        received.insert(
            ClientId(2),
            vec![ReceivedStream {
                source: src,
                tag: 0,
                resolution: Resolution::R720,
                bitrate: Bitrate::from_kbps(1500),
                qoe: 1200.0,
            }],
        );
        Solution { publish, received, total_qoe: 1200.0, iterations: 1 }
    }

    #[test]
    fn valid_solution_passes() {
        valid_solution().validate(&two_client_problem()).unwrap();
    }

    #[test]
    fn detects_uplink_violation() {
        let problem = Problem::new(
            vec![
                ClientSpec::new(
                    ClientId(1),
                    Bitrate::from_kbps(500),
                    Bitrate::from_mbps(5),
                    ladder(),
                ),
                ClientSpec::new(
                    ClientId(2),
                    Bitrate::from_mbps(5),
                    Bitrate::from_mbps(5),
                    ladder(),
                ),
            ],
            vec![Subscription::new(ClientId(2), SourceId::video(ClientId(1)), Resolution::R720)],
        )
        .unwrap();
        let err = valid_solution().validate(&problem).unwrap_err();
        assert!(matches!(err, ConstraintViolation::UplinkExceeded(..)));
    }

    #[test]
    fn detects_downlink_violation() {
        let problem = Problem::new(
            vec![
                ClientSpec::new(
                    ClientId(1),
                    Bitrate::from_mbps(5),
                    Bitrate::from_mbps(5),
                    ladder(),
                ),
                ClientSpec::new(
                    ClientId(2),
                    Bitrate::from_mbps(5),
                    Bitrate::from_kbps(200),
                    ladder(),
                ),
            ],
            vec![Subscription::new(ClientId(2), SourceId::video(ClientId(1)), Resolution::R720)],
        )
        .unwrap();
        let err = valid_solution().validate(&problem).unwrap_err();
        assert!(matches!(err, ConstraintViolation::DownlinkExceeded(..)));
    }

    #[test]
    fn detects_unpublished_bitrate() {
        let mut s = valid_solution();
        s.publish.get_mut(&SourceId::video(ClientId(1))).unwrap()[0].bitrate =
            Bitrate::from_kbps(777);
        let err = s.validate(&two_client_problem()).unwrap_err();
        assert!(matches!(err, ConstraintViolation::BitrateNotInLadder(..)));
    }

    #[test]
    fn detects_empty_audience() {
        let mut s = valid_solution();
        s.publish.get_mut(&SourceId::video(ClientId(1))).unwrap()[0].audience.clear();
        s.received.clear();
        let err = s.validate(&two_client_problem()).unwrap_err();
        assert!(matches!(err, ConstraintViolation::StreamWithoutAudience(..)));
    }

    #[test]
    fn detects_resolution_cap_violation() {
        let problem = Problem::new(
            vec![
                ClientSpec::new(
                    ClientId(1),
                    Bitrate::from_mbps(5),
                    Bitrate::from_mbps(5),
                    ladder(),
                ),
                ClientSpec::new(
                    ClientId(2),
                    Bitrate::from_mbps(5),
                    Bitrate::from_mbps(5),
                    ladder(),
                ),
            ],
            vec![Subscription::new(ClientId(2), SourceId::video(ClientId(1)), Resolution::R180)],
        )
        .unwrap();
        let err = valid_solution().validate(&problem).unwrap_err();
        assert!(matches!(err, ConstraintViolation::ResolutionCapExceeded(..)));
    }

    #[test]
    fn rate_accessors() {
        let s = valid_solution();
        assert_eq!(s.publish_rate(ClientId(1)), Bitrate::from_kbps(1500));
        assert_eq!(s.receive_rate(ClientId(2)), Bitrate::from_kbps(1500));
        assert_eq!(s.receive_rate(ClientId(1)), Bitrate::ZERO);
        assert!(s.received_from(ClientId(2), SourceId::video(ClientId(1)), 0).is_some());
    }
}
