//! Tenant identity and priority classes for multi-tenant fleets.
//!
//! A production GSO deployment hosts many conferences from many customers
//! ("tenants") on one controller fleet. The solver itself is
//! tenant-agnostic — a [`crate::Problem`] is one conference regardless of
//! who owns it — but the control plane above it needs to know *whose*
//! conference each problem is and *how important* it is, so that admission
//! control and overload shedding degrade the cheap tenants first and the
//! premium tenants last. This module is that label: plain data, totally
//! ordered, and digestable so every admission/shedding decision derived
//! from it is deterministic and replayable.

use gso_detguard::{StableHasher, StateDigest};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies the customer/account a conference belongs to.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Service tier of a conference; decides shedding order under overload.
///
/// Ordered best-first: `High < Normal < Low`, so sorting a slice of
/// priorities puts the most-protected class first and
/// [`PriorityClass::shed_rank`] (higher = shed sooner) is just the enum
/// discriminant.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum PriorityClass {
    /// Premium tier: never load-shed; admission-reserved headroom.
    High,
    /// Standard tier: shed only after every `Low` conference is already on
    /// the template baseline.
    #[default]
    Normal,
    /// Best-effort tier: first demoted to the template baseline under
    /// overload, first rejected by admission when the budget is gone.
    Low,
}

impl PriorityClass {
    /// Shedding order, higher sheds sooner (`Low`=2, `Normal`=1, `High`=0).
    pub fn shed_rank(self) -> u8 {
        match self {
            PriorityClass::High => 0,
            PriorityClass::Normal => 1,
            PriorityClass::Low => 2,
        }
    }

    /// Stable lower-case label for telemetry.
    pub fn label(self) -> &'static str {
        match self {
            PriorityClass::High => "high",
            PriorityClass::Normal => "normal",
            PriorityClass::Low => "low",
        }
    }
}

impl fmt::Display for PriorityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The tenancy label of one conference: who owns it and at which tier.
///
/// [`Default`] is tenant 0 at [`PriorityClass::Normal`] — the
/// single-tenant behavior every pre-tenancy call site keeps.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Tenancy {
    /// Owning tenant.
    pub tenant: TenantId,
    /// Service tier.
    pub priority: PriorityClass,
}

impl Tenancy {
    /// A tenancy label.
    pub fn new(tenant: TenantId, priority: PriorityClass) -> Self {
        Tenancy { tenant, priority }
    }
}

impl fmt::Display for Tenancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.tenant, self.priority)
    }
}

impl StateDigest for TenantId {
    fn digest(&self, h: &mut StableHasher) {
        h.write_u64(u64::from(self.0));
    }
}

impl StateDigest for PriorityClass {
    fn digest(&self, h: &mut StableHasher) {
        h.write_u8(self.shed_rank());
    }
}

impl StateDigest for Tenancy {
    fn digest(&self, h: &mut StableHasher) {
        self.tenant.digest(h);
        self.priority.digest(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_best_first() {
        let mut v = vec![PriorityClass::Low, PriorityClass::High, PriorityClass::Normal];
        v.sort();
        assert_eq!(v, vec![PriorityClass::High, PriorityClass::Normal, PriorityClass::Low]);
        assert!(PriorityClass::Low.shed_rank() > PriorityClass::Normal.shed_rank());
        assert!(PriorityClass::Normal.shed_rank() > PriorityClass::High.shed_rank());
    }

    #[test]
    fn default_is_single_tenant_normal() {
        let t = Tenancy::default();
        assert_eq!(t.tenant, TenantId(0));
        assert_eq!(t.priority, PriorityClass::Normal);
        assert_eq!(t.to_string(), "tenant-0/normal");
    }

    #[test]
    fn digest_distinguishes_tenants_and_tiers() {
        let a = Tenancy::new(TenantId(1), PriorityClass::High);
        let b = Tenancy::new(TenantId(2), PriorityClass::High);
        let c = Tenancy::new(TenantId(1), PriorityClass::Low);
        assert_ne!(a.state_digest(), b.state_digest());
        assert_ne!(a.state_digest(), c.state_digest());
        assert_eq!(a.state_digest(), Tenancy::new(TenantId(1), PriorityClass::High).state_digest());
    }
}
