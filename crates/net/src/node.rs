//! Simulation nodes and the actions they emit.
//!
//! Components (clients, accessing nodes, the conference node) implement
//! [`Node`] in an event-driven, poll-free style: the simulator calls
//! `on_packet` / `on_timer`, and the node responds by pushing sends and
//! timer requests into an [`Actions`] sink. Nothing blocks; all state lives
//! in the node.

use bytes::Bytes;
use gso_util::{SimDuration, SimTime};
use std::any::Any;
use std::fmt;

/// Identifies a node attached to the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl gso_detguard::StateDigest for NodeId {
    fn digest(&self, h: &mut gso_detguard::StableHasher) {
        h.write_u64(u64::from(self.0));
    }
}

/// Per-packet UDP/IPv4 overhead in bytes, added to every payload when
/// computing link occupancy.
pub const UDP_IP_OVERHEAD: usize = 28;

/// A datagram in flight.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Serialized payload (RTP or RTCP wire bytes).
    pub data: Bytes,
}

impl Packet {
    /// Wrap payload bytes.
    pub fn new(data: Bytes) -> Self {
        Packet { data }
    }

    /// Bytes this packet occupies on a link, including UDP/IP overhead.
    pub fn wire_size(&self) -> usize {
        self.data.len() + UDP_IP_OVERHEAD
    }
}

/// Side effects a node requests from the simulator.
#[derive(Debug, Default)]
pub struct Actions {
    pub(crate) sends: Vec<(NodeId, Packet)>,
    pub(crate) timers: Vec<(SimTime, u64)>,
}

impl Actions {
    /// The queued sends (exposed so node implementations can be unit-tested
    /// without a simulator).
    pub fn sends(&self) -> &[(NodeId, Packet)] {
        &self.sends
    }

    /// The queued timers.
    pub fn timers(&self) -> &[(SimTime, u64)] {
        &self.timers
    }
}

impl Actions {
    /// Queue a packet toward `dest` over the configured link.
    pub fn send(&mut self, dest: NodeId, packet: Packet) {
        self.sends.push((dest, packet));
    }

    /// Request a timer callback at absolute time `at` with an opaque token.
    pub fn timer_at(&mut self, at: SimTime, token: u64) {
        self.timers.push((at, token));
    }

    /// Request a timer callback after `delay`.
    pub fn timer_in(&mut self, now: SimTime, delay: SimDuration, token: u64) {
        self.timers.push((now + delay, token));
    }

    /// True if no actions were emitted.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.timers.is_empty()
    }
}

/// A component attached to the simulated network.
pub trait Node: Any {
    /// Called when a packet addressed to this node arrives.
    fn on_packet(&mut self, now: SimTime, from: NodeId, packet: Packet, out: &mut Actions);

    /// Called when a timer requested by this node fires.
    fn on_timer(&mut self, now: SimTime, token: u64, out: &mut Actions);

    /// Downcast support so harnesses can read node state after a run.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_includes_overhead() {
        let p = Packet::new(Bytes::from_static(&[0u8; 100]));
        assert_eq!(p.wire_size(), 128);
    }

    #[test]
    fn actions_accumulate() {
        let mut a = Actions::default();
        assert!(a.is_empty());
        a.send(NodeId(1), Packet::new(Bytes::new()));
        a.timer_in(SimTime::ZERO, SimDuration::from_millis(5), 7);
        assert_eq!(a.sends.len(), 1);
        assert_eq!(a.timers, vec![(SimTime::from_millis(5), 7)]);
    }
}
