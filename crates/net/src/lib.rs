//! Deterministic discrete-event packet network simulator.
//!
//! Stands in for the real Internet paths of the paper's evaluation: directed
//! links with configurable rate (time-varying), propagation delay,
//! exponential jitter, i.i.d. loss, and drop-tail byte queues — the exact
//! impairment knobs of the slow-link test matrix (Table 2) and the
//! transient-response experiment (Fig. 7).
//!
//! * [`node`] — the [`node::Node`] trait, packets, and action sinks.
//! * [`link`] — link model and impairment [`link::Schedule`]s.
//! * [`pacer`] — token-bucket packet pacing (§7's probe/media pacer).
//! * [`sim`] — the [`sim::Simulator`] event loop.
//!
//! Everything is seeded and deterministic: the same scenario and seed yield
//! the same packet trace, byte for byte.

pub mod link;
pub mod node;
pub mod pacer;
pub mod sim;

pub use link::{Link, LinkConfig, LinkStats, Schedule, Transmit};
pub use node::{Actions, Node, NodeId, Packet, UDP_IP_OVERHEAD};
pub use pacer::{Pacer, PacerConfig};
pub use sim::Simulator;
