//! Simulated links: rate limiting, propagation delay, jitter, random loss
//! and a drop-tail byte queue.
//!
//! Each direction between two nodes is an independent [`Link`]. Impairments
//! are *schedules* — step functions over simulated time — so experiments like
//! Fig. 7 ("limit the downlink to 625 Kbps at t = 20 s, restore at 57 s") and
//! the slow-link matrix of Table 2 are declared up front and applied
//! deterministically.

use crate::node::Packet;
use gso_util::{Bitrate, DetRng, SimDuration, SimTime};
use std::collections::VecDeque;

/// A right-continuous step function of simulated time.
#[derive(Debug, Clone)]
pub struct Schedule<T: Copy> {
    /// `(from_time, value)` steps, sorted ascending by time; the first entry
    /// should be at time zero.
    steps: Vec<(SimTime, T)>,
}

impl<T: Copy> Schedule<T> {
    /// A constant schedule.
    pub fn constant(value: T) -> Self {
        Schedule { steps: vec![(SimTime::ZERO, value)] }
    }

    /// Build from explicit steps; they are sorted by time.
    pub fn steps(mut steps: Vec<(SimTime, T)>) -> Self {
        assert!(!steps.is_empty(), "schedule needs at least one step");
        steps.sort_by_key(|&(t, _)| t);
        Schedule { steps }
    }

    /// Value in effect at time `t` (the last step at or before `t`; before
    /// the first step, the first step's value).
    pub fn at(&self, t: SimTime) -> T {
        let mut value = self.steps[0].1;
        for &(start, v) in &self.steps {
            if start <= t {
                value = v;
            } else {
                break;
            }
        }
        value
    }

    /// Append a step.
    pub fn push(&mut self, at: SimTime, value: T) {
        self.steps.push((at, value));
        self.steps.sort_by_key(|&(t, _)| t);
    }
}

/// Configuration of one directed link.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Bottleneck rate over time.
    pub rate: Schedule<Bitrate>,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Mean of an exponential random extra delay ("jitter"); zero disables.
    pub jitter: Schedule<SimDuration>,
    /// Independent per-packet loss probability in [0, 1].
    pub loss: Schedule<f64>,
    /// Independent per-packet duplication probability in [0, 1]: the far
    /// end receives a second copy of the packet (after the first). Models
    /// last-hop retransmission artefacts; control-plane endpoints must
    /// re-apply idempotently.
    pub duplicate: Schedule<f64>,
    /// Allow jitter to reorder deliveries. A single FIFO path never
    /// reorders, so this is off for realistic links; chaos schedules turn
    /// it on to exercise out-of-order control-plane delivery.
    pub allow_reorder: bool,
    /// Drop-tail queue capacity in bytes (including wire overhead).
    pub queue_bytes: usize,
    /// Additional bound on queueing *delay*: the effective queue limit is
    /// `min(queue_bytes, rate(now) × max_queue_delay)`. Real shapers bound
    /// sojourn time; without this, capping a fast link's rate would leave a
    /// multi-second bufferbloat queue behind.
    pub max_queue_delay: SimDuration,
    /// Partitioned: every offered packet is dropped at enqueue, consuming
    /// no bandwidth and leaving the queue untouched. Chaos harnesses toggle
    /// this mid-run (via `Simulator::link_config_mut`) to model network
    /// partitions that heal with the queue state intact.
    pub blocked: bool,
}

impl LinkConfig {
    /// A clean link at a constant rate with the given propagation delay and
    /// a queue sized for ~250 ms at that rate (a typical last-mile buffer).
    pub fn clean(rate: Bitrate, delay: SimDuration) -> Self {
        let queue_bytes = (rate.bytes_in(SimDuration::from_millis(250)) as usize).max(40_000);
        LinkConfig {
            rate: Schedule::constant(rate),
            delay,
            jitter: Schedule::constant(SimDuration::ZERO),
            loss: Schedule::constant(0.0),
            duplicate: Schedule::constant(0.0),
            allow_reorder: false,
            queue_bytes,
            max_queue_delay: SimDuration::from_millis(400),
            blocked: false,
        }
    }

    /// Set a constant loss rate.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss = Schedule::constant(p);
        self
    }

    /// Set a constant jitter mean.
    pub fn with_jitter(mut self, mean: SimDuration) -> Self {
        self.jitter = Schedule::constant(mean);
        self
    }

    /// Set a constant duplication rate.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = Schedule::constant(p);
        self
    }

    /// Let jitter reorder deliveries (for chaos schedules).
    pub fn with_reorder(mut self) -> Self {
        self.allow_reorder = true;
        self
    }

    /// Replace the rate schedule.
    pub fn with_rate_schedule(mut self, s: Schedule<Bitrate>) -> Self {
        self.rate = s;
        self
    }
}

/// Counters a link accumulates; used by tests and experiment reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Packets accepted onto the queue.
    pub enqueued: u64,
    /// Packets dropped because the queue was full.
    pub dropped_queue: u64,
    /// Packets dropped by random loss.
    pub dropped_loss: u64,
    /// Payload+overhead bytes delivered.
    pub delivered_bytes: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Extra copies delivered by random duplication.
    pub duplicated: u64,
    /// High-watermark of queued bytes (queue depth) over the run.
    pub peak_queued_bytes: u64,
}

impl gso_detguard::StateDigest for LinkStats {
    fn digest(&self, h: &mut gso_detguard::StableHasher) {
        h.write_u64(self.enqueued);
        h.write_u64(self.dropped_queue);
        h.write_u64(self.dropped_loss);
        h.write_u64(self.delivered_bytes);
        h.write_u64(self.delivered);
        h.write_u64(self.duplicated);
        h.write_u64(self.peak_queued_bytes);
    }
}

/// Runtime state of one directed link.
#[derive(Debug)]
pub struct Link {
    config: LinkConfig,
    rng: DetRng,
    /// Completion times of queued/in-flight transmissions (FIFO).
    tx_ends: VecDeque<(SimTime, usize)>,
    /// When the transmitter becomes free.
    busy_until: SimTime,
    /// Latest delivery time handed out; jitter must not reorder a FIFO path.
    last_arrival: SimTime,
    /// Accumulated counters.
    pub stats: LinkStats,
}

/// What happened to a packet offered to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transmit {
    /// Will arrive at the far end at this time.
    Deliver(SimTime),
    /// Will arrive twice: the original and a duplicated copy.
    DeliverDup(SimTime, SimTime),
    /// Dropped: queue overflow.
    DropQueue,
    /// Dropped: random loss (bandwidth was still consumed).
    DropLoss,
}

impl Link {
    /// Create a link with its own deterministic RNG stream.
    pub fn new(config: LinkConfig, rng: DetRng) -> Self {
        Link {
            config,
            rng,
            tx_ends: VecDeque::new(),
            busy_until: SimTime::ZERO,
            last_arrival: SimTime::ZERO,
            stats: LinkStats::default(),
        }
    }

    /// Mutable access to the impairment schedules (for mid-run changes
    /// between simulator steps).
    pub fn config_mut(&mut self) -> &mut LinkConfig {
        &mut self.config
    }

    /// Current queue occupancy in bytes (transmissions not yet completed).
    pub fn queued_bytes(&mut self, now: SimTime) -> usize {
        while matches!(self.tx_ends.front(), Some(&(end, _)) if end <= now) {
            self.tx_ends.pop_front();
        }
        self.tx_ends.iter().map(|&(_, sz)| sz).sum()
    }

    /// Offer a packet at time `now`; returns the delivery decision.
    pub fn offer(&mut self, now: SimTime, packet: &Packet) -> Transmit {
        if self.config.blocked {
            // Partitioned: the packet never reaches the bottleneck.
            self.stats.dropped_loss += 1;
            return Transmit::DropLoss;
        }
        let size = packet.wire_size();
        let delay_bound = self.config.rate.at(now).bytes_in(self.config.max_queue_delay) as usize;
        let limit = self.config.queue_bytes.min(delay_bound.max(2 * 1500));
        let queued = self.queued_bytes(now);
        if queued + size > limit {
            self.stats.dropped_queue += 1;
            return Transmit::DropQueue;
        }
        self.stats.peak_queued_bytes = self.stats.peak_queued_bytes.max((queued + size) as u64);

        let start = self.busy_until.max(now);
        let rate = self.config.rate.at(start);
        let Some(ser) = rate.serialization_time(size) else {
            // Zero-rate link: the packet would never finish; treat as a
            // queue drop so callers observe a dead link, not a hang.
            self.stats.dropped_queue += 1;
            return Transmit::DropQueue;
        };
        let tx_end = start + ser;
        self.busy_until = tx_end;
        self.tx_ends.push_back((tx_end, size));
        self.stats.enqueued += 1;

        // Random loss is applied after transmission: the bits crossed the
        // bottleneck (consuming bandwidth) and died on the last hop.
        if self.rng.chance(self.config.loss.at(now)) {
            self.stats.dropped_loss += 1;
            return Transmit::DropLoss;
        }

        // Jitter models variable queueing further along the path; a single
        // FIFO path never reorders, so deliveries are monotone unless a
        // chaos schedule explicitly allows reordering.
        let arrival = self.jittered(now, tx_end + self.config.delay);
        self.stats.delivered += 1;
        self.stats.delivered_bytes += size as u64;

        if self.rng.chance(self.config.duplicate.at(now)) {
            let dup_at = self.jittered(now, arrival);
            self.stats.duplicated += 1;
            self.stats.delivered += 1;
            self.stats.delivered_bytes += size as u64;
            return Transmit::DeliverDup(arrival, dup_at);
        }
        Transmit::Deliver(arrival)
    }

    /// Add a jitter sample to `base`, clamping to keep deliveries monotone
    /// unless the link is configured to reorder.
    fn jittered(&mut self, now: SimTime, base: SimTime) -> SimTime {
        let jitter_mean = self.config.jitter.at(now);
        let jitter = if jitter_mean.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(self.rng.exponential(jitter_mean.as_secs_f64()))
        };
        let arrival = base + jitter;
        if self.config.allow_reorder {
            return arrival;
        }
        let arrival = arrival.max(self.last_arrival);
        self.last_arrival = arrival;
        arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn packet(payload: usize) -> Packet {
        Packet::new(Bytes::from(vec![0u8; payload]))
    }

    fn mk_link(cfg: LinkConfig) -> Link {
        Link::new(cfg, DetRng::derive(1, "test-link"))
    }

    #[test]
    fn serialization_plus_propagation() {
        // 1 Mbps, 10 ms delay; 972-byte payload = 1000 wire bytes = 8 ms.
        let mut l = mk_link(LinkConfig::clean(Bitrate::from_mbps(1), SimDuration::from_millis(10)));
        let t = l.offer(SimTime::ZERO, &packet(972));
        assert_eq!(t, Transmit::Deliver(SimTime::from_millis(18)));
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut l = mk_link(LinkConfig::clean(Bitrate::from_mbps(1), SimDuration::ZERO));
        let a = l.offer(SimTime::ZERO, &packet(972));
        let b = l.offer(SimTime::ZERO, &packet(972));
        assert_eq!(a, Transmit::Deliver(SimTime::from_millis(8)));
        // Second packet waits for the first to serialize.
        assert_eq!(b, Transmit::Deliver(SimTime::from_millis(16)));
    }

    #[test]
    fn queue_overflows_drop_tail() {
        let mut cfg = LinkConfig::clean(Bitrate::from_kbps(100), SimDuration::ZERO);
        cfg.queue_bytes = 2_500;
        let mut l = mk_link(cfg);
        let mut delivered = 0;
        let mut dropped = 0;
        for _ in 0..10 {
            match l.offer(SimTime::ZERO, &packet(972)) {
                Transmit::Deliver(_) | Transmit::DeliverDup(..) => delivered += 1,
                Transmit::DropQueue => dropped += 1,
                Transmit::DropLoss => {}
            }
        }
        assert_eq!(delivered, 2, "only two 1000B packets fit a 2500B queue");
        assert_eq!(dropped, 8);
        assert_eq!(l.stats.dropped_queue, 8);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut cfg = LinkConfig::clean(Bitrate::from_mbps(1), SimDuration::ZERO);
        cfg.queue_bytes = 2_000;
        let mut l = mk_link(cfg);
        assert!(matches!(l.offer(SimTime::ZERO, &packet(972)), Transmit::Deliver(_)));
        assert!(matches!(l.offer(SimTime::ZERO, &packet(972)), Transmit::Deliver(_)));
        // Queue full now.
        assert_eq!(l.offer(SimTime::ZERO, &packet(972)), Transmit::DropQueue);
        // After 8 ms the first packet finished; room again.
        assert!(matches!(l.offer(SimTime::from_millis(8), &packet(972)), Transmit::Deliver(_)));
    }

    #[test]
    fn full_loss_drops_everything() {
        let cfg = LinkConfig::clean(Bitrate::from_mbps(10), SimDuration::ZERO).with_loss(1.0);
        let mut l = mk_link(cfg);
        assert_eq!(l.offer(SimTime::ZERO, &packet(100)), Transmit::DropLoss);
        assert_eq!(l.stats.dropped_loss, 1);
    }

    #[test]
    fn statistical_loss_rate() {
        let cfg = LinkConfig::clean(Bitrate::from_mbps(100), SimDuration::ZERO).with_loss(0.3);
        let mut l = mk_link(cfg);
        let mut lost = 0;
        let n = 10_000;
        for i in 0..n {
            if l.offer(SimTime::from_millis(i), &packet(100)) == Transmit::DropLoss {
                lost += 1;
            }
        }
        let rate = f64::from(lost) / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed loss {rate}");
    }

    #[test]
    fn rate_schedule_step_change() {
        // 2 Mbps until t=1s, then 500 Kbps.
        let rate = Schedule::steps(vec![
            (SimTime::ZERO, Bitrate::from_mbps(2)),
            (SimTime::from_secs(1), Bitrate::from_kbps(500)),
        ]);
        let cfg =
            LinkConfig::clean(Bitrate::from_mbps(2), SimDuration::ZERO).with_rate_schedule(rate);
        let mut l = mk_link(cfg);
        // 1000 wire bytes at 2 Mbps = 4 ms.
        assert_eq!(
            l.offer(SimTime::ZERO, &packet(972)),
            Transmit::Deliver(SimTime::from_millis(4))
        );
        // Same packet after the step: 16 ms at 500 Kbps.
        assert_eq!(
            l.offer(SimTime::from_secs(2), &packet(972)),
            Transmit::Deliver(SimTime::from_secs(2) + SimDuration::from_millis(16))
        );
    }

    #[test]
    fn jitter_adds_nonnegative_delay() {
        let cfg = LinkConfig::clean(Bitrate::from_mbps(10), SimDuration::from_millis(20))
            .with_jitter(SimDuration::from_millis(50));
        let mut l = mk_link(cfg);
        let base = SimTime::from_millis(20); // delay + ~0 serialization
        let mut total_extra = 0.0;
        let n = 2_000;
        for i in 0..n {
            let now = SimTime::from_secs(i);
            match l.offer(now, &packet(10)) {
                Transmit::Deliver(at) => {
                    let extra = at.saturating_since(now + (base - SimTime::ZERO));
                    total_extra += extra.as_secs_f64();
                }
                _ => panic!("clean link must deliver"),
            }
        }
        let mean_extra = total_extra / n as f64;
        // Mean extra delay ≈ serialization (~30 µs) + 50 ms jitter.
        assert!((mean_extra - 0.050).abs() < 0.01, "mean extra {mean_extra}");
    }

    #[test]
    fn schedule_lookup() {
        let s = Schedule::steps(vec![
            (SimTime::from_secs(10), 2u32),
            (SimTime::ZERO, 1u32),
            (SimTime::from_secs(20), 3u32),
        ]);
        assert_eq!(s.at(SimTime::ZERO), 1);
        assert_eq!(s.at(SimTime::from_secs(9)), 1);
        assert_eq!(s.at(SimTime::from_secs(10)), 2);
        assert_eq!(s.at(SimTime::from_secs(100)), 3);
    }

    #[test]
    fn full_duplication_delivers_two_copies() {
        let cfg = LinkConfig::clean(Bitrate::from_mbps(10), SimDuration::from_millis(5))
            .with_duplicate(1.0);
        let mut l = mk_link(cfg);
        match l.offer(SimTime::ZERO, &packet(100)) {
            Transmit::DeliverDup(first, second) => assert!(second >= first),
            other => panic!("expected a duplicated delivery, got {other:?}"),
        }
        assert_eq!(l.stats.duplicated, 1);
        assert_eq!(l.stats.delivered, 2);
    }

    #[test]
    fn statistical_duplication_rate() {
        let cfg =
            LinkConfig::clean(Bitrate::from_mbps(100), SimDuration::ZERO).with_duplicate(0.25);
        let mut l = mk_link(cfg);
        let n = 10_000u64;
        for i in 0..n {
            l.offer(SimTime::from_millis(i), &packet(100));
        }
        let rate = l.stats.duplicated as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed duplication {rate}");
    }

    #[test]
    fn reordering_requires_opt_in() {
        let jittery = LinkConfig::clean(Bitrate::from_mbps(100), SimDuration::from_millis(10))
            .with_jitter(SimDuration::from_millis(30));
        let arrivals = |cfg: LinkConfig| {
            let mut l = mk_link(cfg);
            (0..500u64)
                .map(|i| match l.offer(SimTime::from_millis(i), &packet(100)) {
                    Transmit::Deliver(at) => at,
                    other => panic!("clean link must deliver, got {other:?}"),
                })
                .collect::<Vec<_>>()
        };
        let fifo = arrivals(jittery.clone());
        assert!(fifo.windows(2).all(|w| w[0] <= w[1]), "FIFO link must stay monotone");
        let reordered = arrivals(jittery.with_reorder());
        assert!(
            reordered.windows(2).any(|w| w[0] > w[1]),
            "reorder-enabled jittery link should produce at least one inversion"
        );
    }

    #[test]
    fn blocked_link_drops_everything_and_heals() {
        let mut l = mk_link(LinkConfig::clean(Bitrate::from_mbps(10), SimDuration::from_millis(5)));
        assert!(matches!(l.offer(SimTime::ZERO, &packet(100)), Transmit::Deliver(_)));
        l.config_mut().blocked = true;
        assert_eq!(l.offer(SimTime::from_millis(1), &packet(100)), Transmit::DropLoss);
        assert_eq!(l.offer(SimTime::from_millis(2), &packet(100)), Transmit::DropLoss);
        assert_eq!(l.stats.dropped_loss, 2);
        assert_eq!(l.stats.enqueued, 1, "blocked packets never reach the queue");
        // Healing the partition restores delivery.
        l.config_mut().blocked = false;
        assert!(matches!(l.offer(SimTime::from_millis(3), &packet(100)), Transmit::Deliver(_)));
    }

    #[test]
    fn zero_rate_link_is_dead_not_hung() {
        let cfg = LinkConfig::clean(Bitrate::from_mbps(1), SimDuration::ZERO)
            .with_rate_schedule(Schedule::constant(Bitrate::ZERO));
        let mut l = mk_link(cfg);
        assert_eq!(l.offer(SimTime::ZERO, &packet(100)), Transmit::DropQueue);
    }
}
