//! The discrete-event simulation driver.
//!
//! The [`Simulator`] owns all nodes and directed links, and advances
//! simulated time by draining a time-ordered event queue. Events are packet
//! deliveries and node timers; node callbacks emit new sends/timers through
//! [`crate::node::Actions`]. Ties in time are broken by insertion
//! order, so runs are fully deterministic.

use crate::link::{Link, LinkConfig, LinkStats, Transmit};
use crate::node::{Actions, Node, NodeId, Packet};
use gso_detguard::{StableHasher, StateDigest};
use gso_util::{DetRng, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

enum EventKind {
    Deliver { from: NodeId, to: NodeId, packet: Packet },
    Timer { node: NodeId, token: u64 },
}

struct Event {
    kind: EventKind,
}

/// The event-driven network simulator.
pub struct Simulator {
    now: SimTime,
    seed: u64,
    next_seq: u64,
    queue: BinaryHeap<Reverse<(SimTime, u64)>>,
    // Both maps are BTreeMaps on principle (detguard rule `hash-collection`):
    // `events` is only ever keyed-removed, but a hash map here would invite
    // order-sensitive iteration later; `links` *is* iterated for exports.
    events: BTreeMap<u64, Event>,
    nodes: Vec<Option<Box<dyn Node>>>,
    links: BTreeMap<(NodeId, NodeId), Link>,
    /// Packets whose destination had no link/node; counted, not fatal.
    pub undeliverable: u64,
}

impl Simulator {
    /// Create a simulator; `seed` drives every random element (link loss,
    /// jitter) through per-link derived streams.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            seed,
            next_seq: 0,
            queue: BinaryHeap::new(),
            events: BTreeMap::new(),
            nodes: Vec::new(),
            links: BTreeMap::new(),
            undeliverable: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Attach a node; returns its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        id
    }

    /// Create the directed link `from → to`.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, config: LinkConfig) {
        let rng = DetRng::derive(self.seed, &format!("link-{}-{}", from.0, to.0));
        self.links.insert((from, to), Link::new(config, rng));
    }

    /// Create a symmetric pair of links with the same configuration.
    pub fn add_duplex_link(&mut self, a: NodeId, b: NodeId, config: LinkConfig) {
        self.add_link(a, b, config.clone());
        self.add_link(b, a, config);
    }

    /// Mutate a link's configuration (e.g. push an impairment step).
    pub fn link_config_mut(&mut self, from: NodeId, to: NodeId) -> Option<&mut LinkConfig> {
        self.links.get_mut(&(from, to)).map(super::link::Link::config_mut)
    }

    /// A link's accumulated statistics.
    pub fn link_stats(&self, from: NodeId, to: NodeId) -> Option<LinkStats> {
        self.links.get(&(from, to)).map(|l| l.stats)
    }

    /// Statistics of every link, in `(from, to)` order. The backing map is a
    /// `BTreeMap`, so iteration order is deterministic by construction.
    pub fn all_link_stats(&self) -> Vec<((NodeId, NodeId), LinkStats)> {
        self.links.iter().map(|(&k, l)| (k, l.stats)).collect()
    }

    /// Schedule a timer for a node from outside (e.g. to bootstrap it).
    pub fn schedule_timer(&mut self, node: NodeId, at: SimTime, token: u64) {
        self.push_event(at, EventKind::Timer { node, token });
    }

    /// Inject a packet as if `from` had sent it toward `to` at the current
    /// time (used by tests and harness bootstrap).
    pub fn inject(&mut self, from: NodeId, to: NodeId, packet: Packet) {
        let now = self.now;
        self.route(now, from, to, packet);
    }

    /// Borrow a node, downcast to its concrete type.
    pub fn node<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.nodes
            .get(id.0 as usize)
            .and_then(|n| n.as_ref())
            .and_then(|n| n.as_any().downcast_ref::<T>())
    }

    /// Mutably borrow a node, downcast to its concrete type.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes
            .get_mut(id.0 as usize)
            .and_then(|n| n.as_mut())
            .and_then(|n| n.as_any_mut().downcast_mut::<T>())
    }

    /// Invoke a node callback directly and process its actions (used to
    /// bootstrap components before the clock starts).
    pub fn with_node_actions<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Node, SimTime, &mut Actions),
    {
        let Some(mut node) = self.nodes.get_mut(id.0 as usize).and_then(Option::take) else {
            return;
        };
        let mut out = Actions::default();
        let now = self.now;
        f(node.as_mut(), now, &mut out);
        self.nodes[id.0 as usize] = Some(node);
        self.apply_actions(id, out);
    }

    /// Run until the queue is empty or `deadline` is reached. Events at
    /// exactly `deadline` are processed. Returns the number of events run.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(&Reverse((at, seq))) = self.queue.peek() {
            if at > deadline {
                break;
            }
            self.queue.pop();
            let Some(event) = self.events.remove(&seq) else { continue };
            self.now = at;
            processed += 1;
            match event.kind {
                EventKind::Deliver { from, to, packet } => {
                    self.dispatch_packet(from, to, packet);
                }
                EventKind::Timer { node, token } => {
                    self.dispatch_timer(node, token);
                }
            }
        }
        // Even with no events left, time advances to the deadline.
        self.now = self.now.max(deadline);
        processed
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse((at, seq)));
        self.events.insert(seq, Event { kind });
    }

    fn dispatch_packet(&mut self, from: NodeId, to: NodeId, packet: Packet) {
        let Some(mut node) = self.nodes.get_mut(to.0 as usize).and_then(Option::take) else {
            self.undeliverable += 1;
            return;
        };
        let mut out = Actions::default();
        node.on_packet(self.now, from, packet, &mut out);
        self.nodes[to.0 as usize] = Some(node);
        self.apply_actions(to, out);
    }

    fn dispatch_timer(&mut self, id: NodeId, token: u64) {
        let Some(mut node) = self.nodes.get_mut(id.0 as usize).and_then(Option::take) else {
            self.undeliverable += 1;
            return;
        };
        let mut out = Actions::default();
        node.on_timer(self.now, token, &mut out);
        self.nodes[id.0 as usize] = Some(node);
        self.apply_actions(id, out);
    }

    fn apply_actions(&mut self, source: NodeId, out: Actions) {
        let now = self.now;
        for (dest, packet) in out.sends {
            self.route(now, source, dest, packet);
        }
        for (at, token) in out.timers {
            self.push_event(at.max(now), EventKind::Timer { node: source, token });
        }
    }

    /// Stable digest of the simulator's observable state: the clock, the
    /// event-sequence counter, the undeliverable count, the pending event
    /// queue (as `(time, seq)` pairs in queue order), and every link's
    /// accumulated statistics. Two runs whose digests match at every tick
    /// processed the same events in the same order with the same outcomes.
    pub fn state_digest(&self) -> u64 {
        let mut h = StableHasher::new();
        self.now.digest(&mut h);
        h.write_u64(self.next_seq);
        h.write_u64(self.undeliverable);
        // BinaryHeap iteration order is unspecified; sort the snapshot.
        let mut pending: Vec<(SimTime, u64)> = self.queue.iter().map(|&Reverse(p)| p).collect();
        pending.sort_unstable();
        pending.digest(&mut h);
        h.write_len(self.links.len());
        for (&(from, to), link) in &self.links {
            from.digest(&mut h);
            to.digest(&mut h);
            link.stats.digest(&mut h);
        }
        h.finish()
    }

    fn route(&mut self, now: SimTime, from: NodeId, to: NodeId, packet: Packet) {
        let Some(link) = self.links.get_mut(&(from, to)) else {
            self.undeliverable += 1;
            return;
        };
        match link.offer(now, &packet) {
            Transmit::Deliver(at) => self.push_event(at, EventKind::Deliver { from, to, packet }),
            Transmit::DeliverDup(at, dup_at) => {
                self.push_event(at, EventKind::Deliver { from, to, packet: packet.clone() });
                self.push_event(dup_at, EventKind::Deliver { from, to, packet });
            }
            Transmit::DropQueue | Transmit::DropLoss => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use gso_util::{Bitrate, SimDuration};
    use std::any::Any;

    /// Echoes every packet back to its sender and counts arrivals.
    struct Echo {
        received: Vec<(SimTime, usize)>,
        timers: Vec<(SimTime, u64)>,
    }

    impl Echo {
        fn new() -> Self {
            Echo { received: Vec::new(), timers: Vec::new() }
        }
    }

    impl Node for Echo {
        fn on_packet(&mut self, now: SimTime, from: NodeId, packet: Packet, out: &mut Actions) {
            self.received.push((now, packet.data.len()));
            out.send(from, packet);
        }
        fn on_timer(&mut self, now: SimTime, token: u64, _out: &mut Actions) {
            self.timers.push((now, token));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Sends `count` packets on a timer cadence and records echoes.
    struct Pinger {
        peer: NodeId,
        remaining: u32,
        echoes: Vec<SimTime>,
    }

    impl Node for Pinger {
        fn on_packet(&mut self, now: SimTime, _from: NodeId, _p: Packet, _out: &mut Actions) {
            self.echoes.push(now);
        }
        fn on_timer(&mut self, now: SimTime, _token: u64, out: &mut Actions) {
            if self.remaining > 0 {
                self.remaining -= 1;
                out.send(self.peer, Packet::new(Bytes::from(vec![0u8; 72])));
                out.timer_in(now, SimDuration::from_millis(20), 0);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn duplex(sim: &mut Simulator, a: NodeId, b: NodeId) {
        sim.add_duplex_link(
            a,
            b,
            LinkConfig::clean(Bitrate::from_mbps(10), SimDuration::from_millis(5)),
        );
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = Simulator::new(1);
        let echo = sim.add_node(Box::new(Echo::new()));
        let pinger = sim.add_node(Box::new(Pinger { peer: echo, remaining: 3, echoes: vec![] }));
        duplex(&mut sim, pinger, echo);
        sim.schedule_timer(pinger, SimTime::ZERO, 0);
        sim.run_until(SimTime::from_secs(1));

        let p: &Pinger = sim.node(pinger).unwrap();
        assert_eq!(p.echoes.len(), 3);
        // 100 wire bytes at 10 Mbps = 80 µs each way + 2×5 ms propagation.
        assert_eq!(p.echoes[0], SimTime::from_micros(10_160));
        let e: &Echo = sim.node(echo).unwrap();
        assert_eq!(e.received.len(), 3);
    }

    #[test]
    fn timers_fire_in_order_with_fifo_ties() {
        let mut sim = Simulator::new(1);
        let echo = sim.add_node(Box::new(Echo::new()));
        sim.schedule_timer(echo, SimTime::from_millis(10), 2);
        sim.schedule_timer(echo, SimTime::from_millis(5), 1);
        sim.schedule_timer(echo, SimTime::from_millis(10), 3);
        sim.run_until(SimTime::from_secs(1));
        let e: &Echo = sim.node(echo).unwrap();
        let tokens: Vec<u64> = e.timers.iter().map(|&(_, t)| t).collect();
        assert_eq!(tokens, vec![1, 2, 3], "ties break by insertion order");
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulator::new(1);
        let echo = sim.add_node(Box::new(Echo::new()));
        sim.schedule_timer(echo, SimTime::from_millis(5), 1);
        sim.schedule_timer(echo, SimTime::from_millis(50), 2);
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.now(), SimTime::from_millis(10));
        let fired = sim.node::<Echo>(echo).unwrap().timers.len();
        assert_eq!(fired, 1);
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(sim.node::<Echo>(echo).unwrap().timers.len(), 2);
    }

    #[test]
    fn unlinked_destination_counts_undeliverable() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(Echo::new()));
        let b = sim.add_node(Box::new(Echo::new()));
        sim.inject(a, b, Packet::new(Bytes::new()));
        assert_eq!(sim.undeliverable, 1);
    }

    #[test]
    fn state_digest_replays_and_detects_divergence() {
        let run = |extra_inject: bool| {
            let mut sim = Simulator::new(7);
            let echo = sim.add_node(Box::new(Echo::new()));
            let pinger =
                sim.add_node(Box::new(Pinger { peer: echo, remaining: 10, echoes: vec![] }));
            duplex(&mut sim, pinger, echo);
            sim.schedule_timer(pinger, SimTime::ZERO, 0);
            sim.run_until(SimTime::from_millis(500));
            if extra_inject {
                // Packet to an unlinked destination bumps `undeliverable`.
                sim.inject(echo, NodeId(99), Packet::new(Bytes::new()));
            }
            sim.run_until(SimTime::from_secs(1));
            sim.state_digest()
        };
        assert_eq!(run(false), run(false), "same run must digest identically");
        assert_ne!(run(false), run(true), "a diverging run must digest differently");
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut sim = Simulator::new(99);
            let echo = sim.add_node(Box::new(Echo::new()));
            let pinger =
                sim.add_node(Box::new(Pinger { peer: echo, remaining: 50, echoes: vec![] }));
            sim.add_duplex_link(
                pinger,
                echo,
                LinkConfig::clean(Bitrate::from_kbps(500), SimDuration::from_millis(30))
                    .with_loss(0.2)
                    .with_jitter(SimDuration::from_millis(10)),
            );
            sim.schedule_timer(pinger, SimTime::ZERO, 0);
            sim.run_until(SimTime::from_secs(10));
            sim.node::<Pinger>(pinger).unwrap().echoes.clone()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
