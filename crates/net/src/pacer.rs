//! Token-bucket pacer.
//!
//! §7 of the paper: probing packets are sent "in short bursts controlled by
//! a pacer". A pacer also smooths media bursts (keyframes) so a
//! well-fitted stream does not spike the bottleneck queue. This
//! implementation is a classic token bucket with a byte-denominated budget:
//! packets are queued and released when enough tokens have accrued; the
//! caller polls for due packets and for the next release time.

use crate::node::Packet;
use gso_util::{Bitrate, SimDuration, SimTime};
use std::collections::VecDeque;

/// Pacer configuration.
#[derive(Debug, Clone)]
pub struct PacerConfig {
    /// Sustained release rate.
    pub rate: Bitrate,
    /// Bucket depth: how many bytes may be released back-to-back.
    pub burst_bytes: usize,
    /// Hard bound on queued bytes; excess packets are dropped (the pacer
    /// must never become an unbounded latency source).
    pub max_queue_bytes: usize,
}

impl PacerConfig {
    /// A pacer at `rate` with a burst of ~10 MTU packets and a 500 ms queue
    /// bound (WebRTC-like defaults).
    pub fn at_rate(rate: Bitrate) -> Self {
        PacerConfig {
            rate,
            burst_bytes: 12_000,
            max_queue_bytes: (rate.bytes_in(SimDuration::from_millis(500)) as usize).max(24_000),
        }
    }
}

/// A token-bucket packet pacer.
#[derive(Debug)]
pub struct Pacer {
    cfg: PacerConfig,
    tokens: f64,
    last_refill: SimTime,
    queue: VecDeque<Packet>,
    queued_bytes: usize,
    /// Packets dropped due to the queue bound.
    pub dropped: u64,
}

impl Pacer {
    /// New pacer with a full bucket.
    pub fn new(cfg: PacerConfig) -> Self {
        Pacer {
            tokens: cfg.burst_bytes as f64,
            cfg,
            last_refill: SimTime::ZERO,
            queue: VecDeque::new(),
            queued_bytes: 0,
            dropped: 0,
        }
    }

    /// Update the sustained rate (e.g. when the media target changes).
    pub fn set_rate(&mut self, rate: Bitrate) {
        self.cfg.rate = rate;
    }

    /// Enqueue a packet for paced release.
    pub fn enqueue(&mut self, packet: Packet) {
        let size = packet.wire_size();
        if self.queued_bytes + size > self.cfg.max_queue_bytes {
            self.dropped += 1;
            return;
        }
        self.queued_bytes += size;
        self.queue.push_back(packet);
    }

    /// Number of bytes currently queued.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + dt * self.cfg.rate.as_bps() as f64 / 8.0)
            .min(self.cfg.burst_bytes as f64);
    }

    /// Release every packet whose tokens are available at `now`.
    pub fn poll(&mut self, now: SimTime) -> Vec<Packet> {
        self.refill(now);
        let mut out = Vec::new();
        while let Some(front) = self.queue.front() {
            let size = front.wire_size() as f64;
            // Epsilon absorbs float error from the seconds conversion; a
            // micro-byte of missing budget must not delay a packet a full
            // refill period.
            if self.tokens + 1e-6 < size {
                break;
            }
            self.tokens -= size;
            self.queued_bytes -= front.wire_size();
            out.push(self.queue.pop_front().expect("front exists"));
        }
        out
    }

    /// When the head packet will have enough tokens, if anything is queued.
    pub fn next_release(&self, now: SimTime) -> Option<SimTime> {
        let front = self.queue.front()?;
        let deficit = front.wire_size() as f64 - self.tokens;
        if deficit <= 1e-6 {
            return Some(now);
        }
        let secs = deficit * 8.0 / self.cfg.rate.as_bps().max(1) as f64;
        Some(now + SimDuration::from_secs_f64(secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pkt(payload: usize) -> Packet {
        Packet::new(Bytes::from(vec![0u8; payload]))
    }

    fn pacer(rate_kbps: u64) -> Pacer {
        Pacer::new(PacerConfig::at_rate(Bitrate::from_kbps(rate_kbps)))
    }

    #[test]
    fn burst_releases_immediately_up_to_bucket_depth() {
        let mut p = pacer(1_000);
        for _ in 0..20 {
            p.enqueue(pkt(972)); // 1000 wire bytes
        }
        let released = p.poll(SimTime::ZERO);
        // 12 kB bucket → 12 packets at once, the rest wait.
        assert_eq!(released.len(), 12);
        assert_eq!(p.queued_bytes(), 8 * 1000);
    }

    #[test]
    fn sustained_rate_is_respected() {
        let mut p = Pacer::new(PacerConfig {
            rate: Bitrate::from_kbps(1_000), // 125 kB/s
            burst_bytes: 12_000,
            max_queue_bytes: 500_000,
        });
        for _ in 0..200 {
            p.enqueue(pkt(972));
        }
        let mut released = p.poll(SimTime::ZERO).len();
        for ms in (100..=1_000).step_by(100) {
            released += p.poll(SimTime::from_millis(ms)).len();
        }
        // 1 s at 125 kB/s = 125 packets + the 12-packet initial burst.
        assert!((130..=140).contains(&released), "released {released}");
    }

    #[test]
    fn next_release_predicts_token_availability() {
        let mut p = pacer(800); // 100 kB/s
        for _ in 0..13 {
            p.enqueue(pkt(972));
        }
        let _ = p.poll(SimTime::ZERO); // drains the burst (12 packets)
        let next = p.next_release(SimTime::ZERO).expect("one packet queued");
        // 1000 bytes at 100 kB/s = 10 ms.
        assert_eq!(next, SimTime::from_millis(10));
        assert!(p.poll(SimTime::from_millis(9)).is_empty());
        assert_eq!(p.poll(SimTime::from_millis(10)).len(), 1);
    }

    #[test]
    fn queue_bound_drops_excess() {
        let mut p = Pacer::new(PacerConfig {
            rate: Bitrate::from_kbps(100),
            burst_bytes: 2_000,
            max_queue_bytes: 3_000,
        });
        for _ in 0..10 {
            p.enqueue(pkt(972));
        }
        assert_eq!(p.dropped, 7, "only three 1000B packets fit 3000B");
    }

    #[test]
    fn empty_pacer_has_no_next_release() {
        let p = pacer(500);
        assert_eq!(p.next_release(SimTime::ZERO), None);
    }

    #[test]
    fn rate_change_applies_to_future_refills() {
        let mut p = pacer(1_000);
        for _ in 0..50 {
            p.enqueue(pkt(972));
        }
        let _ = p.poll(SimTime::ZERO);
        p.set_rate(Bitrate::from_kbps(8_000)); // 1 MB/s
                                               // After 100 ms, 100 kB of tokens accrued (capped at burst 12 kB)…
        let released = p.poll(SimTime::from_millis(100));
        assert_eq!(released.len(), 12, "capped by bucket depth");
    }
}
