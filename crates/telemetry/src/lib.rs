//! Deterministic, sim-time-stamped observability for a GSO conference.
//!
//! The paper's evaluation (Figs. 7–12) is built from *measurements* of a
//! running conference: bitrate traces, controller reaction times, stall
//! counts. This crate gives every layer of the reproduction one uniform way
//! to record those measurements:
//!
//! * **Counters** — monotone event tallies (GTMB sends, link drops).
//! * **Gauges** — last-value samples (current bandwidth estimate, QoE).
//! * **Histograms** — fixed-bucket distributions with static bounds
//!   (solve work per orchestration round, layer-switch latency).
//! * **Events** — a bounded ring of sim-time-stamped structured events
//!   (fallback entries, overuse transitions, GTMB delivery failures).
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Two runs of the same scenario must serialize
//!    byte-identical exports. All state lives in [`BTreeMap`]s keyed by
//!    `(static name, label)`, timestamps are [`SimTime`] (never wall
//!    clock), and the JSON writer emits keys in sorted order. There is no
//!    floating-point accumulation anywhere on the counter/histogram path.
//! 2. **Near-zero cost when disabled.** Every recording site holds a
//!    [`Telemetry`] handle; the disabled handle is a `None` and each
//!    operation is a single branch — labels are not even formatted.
//! 3. **Static metric keys.** Metric names are `&'static str` constants in
//!    [`keys`]; dynamic cardinality goes in the label dimension only.
//!
//! The export format is hand-rolled JSON in the same spirit as
//! `BENCH_solver.json` (the serde shim is a marker, not a serializer):
//! one object with a sorted `metrics` array and a bounded `events` ring.

pub mod keys;

use gso_util::SimTime;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::{self, Display, Write as _};
use std::rc::Rc;

/// Default capacity of the bounded event ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// One recorded metric value.
#[derive(Debug, Clone, PartialEq)]
enum MetricValue {
    /// Monotone counter.
    Counter(u64),
    /// Last-value gauge (finite values only; non-finite samples are dropped).
    Gauge(f64),
    /// Fixed-bucket histogram. `counts[i]` tallies samples `<= bounds[i]`;
    /// the final slot (`counts[bounds.len()]`) is the overflow (+inf) bucket.
    Histogram { bounds: &'static [u64], counts: Vec<u64>, total: u64, sum: u64 },
}

/// A sim-time-stamped structured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Simulation time of the event.
    pub at: SimTime,
    /// Registry-assigned arrival sequence number. Multiple sources (the
    /// controller, per-client SFU handles, BWE estimators) can record at the
    /// same sim-time; `seq` is the deterministic tie-breaker that makes the
    /// export order `(at, seq)` a total order independent of which source's
    /// recording call happened to land in the ring first.
    pub seq: u64,
    /// Static event kind (e.g. `"gtmb_failed"`).
    pub kind: &'static str,
    /// Free-form detail string (client id, value, …).
    pub detail: String,
}

/// Snapshot of one histogram, as returned by [`Telemetry::histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Static upper bounds of the finite buckets.
    pub bounds: &'static [u64],
    /// Bucket tallies; one longer than `bounds` (last slot = overflow).
    pub counts: Vec<u64>,
    /// Number of recorded samples.
    pub total: u64,
    /// Sum of recorded samples.
    pub sum: u64,
}

/// The per-conference metric registry behind an enabled [`Telemetry`]
/// handle. Not used directly — all access goes through the handle.
#[derive(Debug)]
struct Registry {
    conference: String,
    metrics: BTreeMap<(&'static str, String), MetricValue>,
    events: VecDeque<Event>,
    events_dropped: u64,
    event_capacity: usize,
    /// Next event sequence id; monotone over the registry's lifetime (keeps
    /// counting across ring evictions).
    next_event_seq: u64,
}

impl Registry {
    fn new(conference: String, event_capacity: usize) -> Self {
        Registry {
            conference,
            metrics: BTreeMap::new(),
            events: VecDeque::new(),
            events_dropped: 0,
            event_capacity,
            next_event_seq: 0,
        }
    }

    fn push_event(&mut self, at: SimTime, kind: &'static str, detail: String) {
        let seq = self.next_event_seq;
        self.next_event_seq += 1;
        if self.events.len() == self.event_capacity {
            self.events.pop_front();
            self.events_dropped += 1;
        }
        // sentinel: allow(hot-alloc, reason = "bounded event ring; push_back pairs with the pop_front cap below")
        self.events.push_back(Event { at, seq, kind, detail });
    }

    /// Events in export order: ascending `(at, seq)`. The ring holds arrival
    /// order, which equals seq order; sorting by time with the seq
    /// tie-break makes the export order provably stable even when a source
    /// records an event carrying an earlier timestamp after a later one was
    /// already ringed.
    fn ordered_events(&self) -> Vec<Event> {
        let mut evs: Vec<Event> = self.events.iter().cloned().collect();
        evs.sort_by_key(|e| (e.at, e.seq));
        evs
    }
}

/// Cloneable handle to a conference metric registry.
///
/// The simulation is single-threaded by design (see DESIGN.md), so the
/// handle is an `Rc<RefCell<_>>`; cloning is cheap and every clone records
/// into the same registry. [`Telemetry::disabled`] (also the [`Default`])
/// carries no registry: every operation is one branch and no label is
/// formatted, which keeps instrumented hot paths free for unit tests and
/// library consumers that do not observe.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Rc<RefCell<Registry>>>,
}

impl Telemetry {
    /// An enabled registry for the named conference.
    #[must_use]
    pub fn new(conference: impl Into<String>) -> Self {
        Telemetry {
            inner: Some(Rc::new(RefCell::new(Registry::new(
                conference.into(),
                DEFAULT_EVENT_CAPACITY,
            )))),
        }
    }

    /// An enabled registry with a custom event-ring capacity.
    #[must_use]
    pub fn with_event_capacity(conference: impl Into<String>, capacity: usize) -> Self {
        Telemetry {
            inner: Some(Rc::new(RefCell::new(Registry::new(conference.into(), capacity.max(1))))),
        }
    }

    /// A handle that records nothing (the default at every call site).
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Does this handle record into a registry?
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `delta` to the counter `(name, label)`.
    pub fn add(&self, name: &'static str, label: impl Display, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let mut reg = inner.borrow_mut();
        // sentinel: allow(hot-alloc, reason = "metric-label materialization; label interning is tracked by the telemetry roadmap item")
        let slot = reg.metrics.entry((name, label.to_string())).or_insert(MetricValue::Counter(0));
        if let MetricValue::Counter(v) = slot {
            *v += delta;
        } else {
            debug_assert!(false, "metric {name} recorded with mixed kinds");
        }
    }

    /// Increment the counter `(name, label)` by one.
    pub fn incr(&self, name: &'static str, label: impl Display) {
        self.add(name, label, 1);
    }

    /// Set the gauge `(name, label)` to `value`. Non-finite samples are
    /// dropped (they would poison the deterministic export).
    pub fn gauge(&self, name: &'static str, label: impl Display, value: f64) {
        let Some(inner) = &self.inner else { return };
        if !value.is_finite() {
            debug_assert!(false, "gauge {name} sampled with a non-finite value");
            return;
        }
        let mut reg = inner.borrow_mut();
        // sentinel: allow(hot-alloc, reason = "metric-label materialization; label interning is tracked by the telemetry roadmap item")
        reg.metrics.insert((name, label.to_string()), MetricValue::Gauge(value));
    }

    /// Record `value` into the fixed-bucket histogram `(name, label)`.
    ///
    /// `bounds` must be a static, strictly increasing slice of inclusive
    /// upper bounds; the same metric name must always be recorded with the
    /// same bounds (see [`keys`] for the shipped bound sets).
    pub fn observe(
        &self,
        name: &'static str,
        label: impl Display,
        value: u64,
        bounds: &'static [u64],
    ) {
        let Some(inner) = &self.inner else { return };
        let mut reg = inner.borrow_mut();
        // sentinel: allow(hot-alloc, reason = "metric-label materialization; label interning is tracked by the telemetry roadmap item")
        let slot = reg.metrics.entry((name, label.to_string())).or_insert_with(|| {
            // sentinel: allow(hot-alloc, reason = "a histogram lazily allocates its buckets once per (name, label) pair")
            MetricValue::Histogram { bounds, counts: vec![0; bounds.len() + 1], total: 0, sum: 0 }
        });
        if let MetricValue::Histogram { bounds, counts, total, sum } = slot {
            let idx = bounds.partition_point(|&b| b < value);
            *counts
                .get_mut(idx)
                .expect("invariant: counts holds bounds.len()+1 buckets and partition_point <= bounds.len()") += 1;
            *total += 1;
            *sum += value;
        } else {
            debug_assert!(false, "metric {name} recorded with mixed kinds");
        }
    }

    /// Append a structured event to the bounded ring (drop-oldest). The
    /// registry stamps each event with a monotone sequence id, so events
    /// recorded at the same sim-time keep a deterministic total order.
    pub fn event(&self, at: SimTime, kind: &'static str, detail: impl Display) {
        let Some(inner) = &self.inner else { return };
        // sentinel: allow(hot-alloc, reason = "event detail materialization; label interning is tracked by the telemetry roadmap item")
        inner.borrow_mut().push_event(at, kind, detail.to_string());
    }

    // ------------------------------------------------------------------
    // Queries (used by experiment drivers to summarize a run).
    // ------------------------------------------------------------------

    /// Value of the counter `(name, label)`; 0 when absent or disabled.
    #[must_use]
    pub fn counter(&self, name: &'static str, label: impl Display) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let reg = inner.borrow();
        match reg.metrics.get(&(name, label.to_string())) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Sum of the counter `name` across all labels.
    #[must_use]
    pub fn counter_total(&self, name: &'static str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let reg = inner.borrow();
        reg.metrics
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|(_, m)| match m {
                MetricValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// Last value of the gauge `(name, label)`.
    #[must_use]
    pub fn gauge_value(&self, name: &'static str, label: impl Display) -> Option<f64> {
        let inner = self.inner.as_ref()?;
        let reg = inner.borrow();
        match reg.metrics.get(&(name, label.to_string())) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Snapshot of the histogram `(name, label)`.
    #[must_use]
    pub fn histogram(&self, name: &'static str, label: impl Display) -> Option<HistogramSnapshot> {
        let inner = self.inner.as_ref()?;
        let reg = inner.borrow();
        match reg.metrics.get(&(name, label.to_string())) {
            Some(MetricValue::Histogram { bounds, counts, total, sum }) => {
                Some(HistogramSnapshot { bounds, counts: counts.clone(), total: *total, sum: *sum })
            }
            _ => None,
        }
    }

    /// `(sample count, sample sum)` of the histogram `name` across all
    /// labels.
    #[must_use]
    pub fn histogram_total(&self, name: &'static str) -> (u64, u64) {
        let Some(inner) = &self.inner else { return (0, 0) };
        let reg = inner.borrow();
        reg.metrics.iter().filter(|((n, _), _)| *n == name).fold((0, 0), |(c, s), (_, m)| match m {
            MetricValue::Histogram { total, sum, .. } => (c + total, s + sum),
            _ => (c, s),
        })
    }

    /// All recorded events in export order: ascending sim-time, ties broken
    /// by the deterministic per-registry sequence id.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.borrow().ordered_events(),
            None => Vec::new(),
        }
    }

    /// Serialize the registry as stable machine-readable JSON.
    ///
    /// The writer is deterministic by construction: metrics are emitted in
    /// `BTreeMap` order of `(name, label)`, events in ring (arrival) order,
    /// all integers in decimal and gauges through Rust's shortest-roundtrip
    /// `f64` formatter. Two runs that record the same sequence produce
    /// byte-identical strings. A disabled handle exports `"{}"`.
    #[must_use]
    pub fn export_json(&self) -> String {
        let Some(inner) = &self.inner else { return "{}".to_string() };
        let reg = inner.borrow();
        let mut out = String::new();
        out.push_str("{\n");
        let _ = write!(out, "  \"conference\": {},\n  \"metrics\": [", json_str(&reg.conference));
        let mut first = true;
        for ((name, label), metric) in &reg.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"name\": {}, \"label\": {}, ",
                json_str(name),
                json_str(label)
            );
            match metric {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"type\": \"counter\", \"value\": {v}}}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"type\": \"gauge\", \"value\": {v}}}");
                }
                MetricValue::Histogram { bounds, counts, total, sum } => {
                    let _ = write!(
                        out,
                        "\"type\": \"histogram\", \"count\": {total}, \"sum\": {sum}, \"buckets\": ["
                    );
                    for (i, n) in counts.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        match bounds.get(i) {
                            Some(le) => {
                                let _ = write!(out, "{{\"le\": {le}, \"n\": {n}}}");
                            }
                            None => {
                                let _ = write!(out, "{{\"le\": \"inf\", \"n\": {n}}}");
                            }
                        }
                    }
                    out.push_str("]}");
                }
            }
        }
        if !first {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"events\": {{\"capacity\": {}, \"dropped\": {}, \"entries\": [",
            reg.event_capacity, reg.events_dropped
        );
        let mut first = true;
        for ev in reg.ordered_events() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"t_us\": {}, \"seq\": {}, \"kind\": {}, \"detail\": {}}}",
                ev.at.as_micros(),
                ev.seq,
                json_str(ev.kind),
                json_str(&ev.detail)
            );
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("]}\n}\n");
        out
    }

    /// Stable 64-bit digest of the registry's exportable state: the
    /// conference name, every metric in `(name, label)` order, and the event
    /// ring in `(at, seq)` export order. Two registries export byte-identical
    /// JSON iff their digests match, at a fraction of the serialization cost
    /// — this is what the per-tick divergence recorder hashes.
    #[must_use]
    pub fn export_digest(&self) -> u64 {
        use gso_detguard::{StableHasher, StateDigest};
        let mut h = StableHasher::new();
        let Some(inner) = &self.inner else { return h.finish() };
        let reg = inner.borrow();
        h.write_str(&reg.conference);
        h.write_len(reg.metrics.len());
        for ((name, label), metric) in &reg.metrics {
            h.write_str(name);
            h.write_str(label);
            match metric {
                MetricValue::Counter(v) => {
                    h.write_u8(0);
                    h.write_u64(*v);
                }
                MetricValue::Gauge(v) => {
                    h.write_u8(1);
                    h.write_f64(*v);
                }
                MetricValue::Histogram { bounds, counts, total, sum } => {
                    h.write_u8(2);
                    bounds.digest(&mut h);
                    counts.digest(&mut h);
                    h.write_u64(*total);
                    h.write_u64(*sum);
                }
            }
        }
        h.write_u64(reg.events_dropped);
        let evs = reg.ordered_events();
        h.write_len(evs.len());
        for ev in evs {
            ev.at.digest(&mut h);
            h.write_u64(ev.seq);
            h.write_str(ev.kind);
            h.write_str(&ev.detail);
        }
        h.finish()
    }
}

/// Quote and escape a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.kind, self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        t.incr("x", 1);
        t.gauge("g", "", 3.5);
        t.observe("h", "", 10, &[1, 100]);
        t.event(SimTime::ZERO, "e", "detail");
        assert!(!t.enabled());
        assert_eq!(t.counter("x", 1), 0);
        assert_eq!(t.export_json(), "{}");
        assert!(t.events().is_empty());
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let t = Telemetry::new("conf");
        t.incr("c", "a");
        t.add("c", "a", 4);
        t.incr("c", "b");
        assert_eq!(t.counter("c", "a"), 5);
        assert_eq!(t.counter("c", "b"), 1);
        assert_eq!(t.counter_total("c"), 6);

        t.gauge("g", "", 1.0);
        t.gauge("g", "", 2.5);
        assert_eq!(t.gauge_value("g", ""), Some(2.5));

        const BOUNDS: &[u64] = &[10, 100];
        t.observe("h", "", 5, BOUNDS);
        t.observe("h", "", 10, BOUNDS); // inclusive upper bound
        t.observe("h", "", 50, BOUNDS);
        t.observe("h", "", 1000, BOUNDS); // overflow bucket
        let snap = t.histogram("h", "").unwrap();
        assert_eq!(snap.counts, vec![2, 1, 1]);
        assert_eq!(snap.total, 4);
        assert_eq!(snap.sum, 1065);
        assert_eq!(t.histogram_total("h"), (4, 1065));
    }

    #[test]
    fn clones_share_one_registry() {
        let t = Telemetry::new("conf");
        let u = t.clone();
        t.incr("c", "");
        u.incr("c", "");
        assert_eq!(t.counter("c", ""), 2);
    }

    #[test]
    fn event_ring_drops_oldest() {
        let t = Telemetry::with_event_capacity("conf", 2);
        t.event(SimTime::from_millis(1), "a", "");
        t.event(SimTime::from_millis(2), "b", "");
        t.event(SimTime::from_millis(3), "c", "");
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, "b");
        assert_eq!(evs[1].kind, "c");
        assert!(t.export_json().contains("\"dropped\": 1"));
    }

    #[test]
    fn identical_recordings_export_byte_identical_json() {
        let record = || {
            let t = Telemetry::new("conf-0");
            t.incr("gtmb.sent", 7);
            t.add("net.link.delivered_bytes", "n1->n2", 1500);
            t.gauge("bwe.estimate_bps", "up:3", 2_500_000.0);
            t.observe("ctrl.solve.iterations", "", 3, &[1, 2, 4, 8]);
            t.event(SimTime::from_millis(200), "fallback", "client 7");
            t.export_json()
        };
        let a = record();
        let b = record();
        assert_eq!(a, b, "same recording sequence must serialize identically");
        assert!(a.contains("\"conference\": \"conf-0\""));
    }

    #[test]
    fn export_is_sorted_by_name_then_label() {
        let t = Telemetry::new("conf");
        t.incr("z.metric", "b");
        t.incr("a.metric", "z");
        t.incr("z.metric", "a");
        let json = t.export_json();
        let a = json.find("a.metric").unwrap();
        let za = json.find("\"name\": \"z.metric\", \"label\": \"a\"").unwrap();
        let zb = json.find("\"name\": \"z.metric\", \"label\": \"b\"").unwrap();
        assert!(a < za && za < zb);
    }

    #[test]
    fn equal_time_events_keep_deterministic_seq_order() {
        // Simulate two concurrent sources recording at the same sim-time
        // through separate handle clones: the (at, seq) order must reflect
        // arrival order, and the export must carry the tie-breaking seq.
        let t = Telemetry::new("conf");
        let source_a = t.clone();
        let source_b = t.clone();
        let now = SimTime::from_millis(100);
        source_a.event(now, "bwe_overuse", "client 1");
        source_b.event(now, "fallback", "client 2");
        source_a.event(now, "bwe_overuse", "client 3");
        let evs = t.events();
        assert_eq!(
            evs.iter().map(|e| (e.seq, e.kind)).collect::<Vec<_>>(),
            vec![(0, "bwe_overuse"), (1, "fallback"), (2, "bwe_overuse")]
        );
        let json = t.export_json();
        let a = json.find("\"seq\": 0").unwrap();
        let b = json.find("\"seq\": 1").unwrap();
        let c = json.find("\"seq\": 2").unwrap();
        assert!(a < b && b < c, "export must emit equal-time events in seq order");
    }

    #[test]
    fn out_of_order_timestamps_export_in_time_order() {
        // A source may record an event carrying an earlier sim-time after a
        // later one is already in the ring (e.g. a summary flushed at tick
        // end). Export order is (at, seq), not arrival order.
        let t = Telemetry::new("conf");
        t.event(SimTime::from_millis(200), "late", "");
        t.event(SimTime::from_millis(100), "early", "");
        let evs = t.events();
        assert_eq!(evs[0].kind, "early");
        assert_eq!(evs[1].kind, "late");
        // Digest must agree with the export ordering (replayable).
        assert_eq!(t.export_digest(), t.export_digest());
    }

    #[test]
    fn export_digest_tracks_export_json() {
        let record = |flip: bool| {
            let t = Telemetry::new("conf");
            t.incr("c", "x");
            t.observe("h", "", 5, &[10, 100]);
            let (k1, k2) = if flip { ("b", "a") } else { ("a", "b") };
            t.event(SimTime::from_millis(5), k1, "1");
            t.event(SimTime::from_millis(5), k2, "2");
            (t.export_json(), t.export_digest())
        };
        let (json1, d1) = record(false);
        let (json2, d2) = record(false);
        assert_eq!(json1, json2);
        assert_eq!(d1, d2);
        let (json3, d3) = record(true);
        assert_ne!(json1, json3, "different equal-time event order must change the export");
        assert_ne!(d1, d3, "…and the digest must see it too");
    }

    #[test]
    fn seq_keeps_counting_across_ring_eviction() {
        let t = Telemetry::with_event_capacity("conf", 2);
        for i in 0..5 {
            t.event(SimTime::from_millis(i), "e", i);
        }
        let evs = t.events();
        assert_eq!(evs.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn json_strings_are_escaped() {
        let t = Telemetry::new("c\"onf\\");
        t.event(SimTime::ZERO, "kind", "line\nbreak\ttab");
        let json = t.export_json();
        assert!(json.contains("\"c\\\"onf\\\\\""));
        assert!(json.contains("line\\nbreak\\ttab"));
    }
}
