//! Static metric keys and histogram bound sets.
//!
//! Every metric name in the workspace lives here so the inventory is
//! greppable in one place and names cannot drift between recording sites
//! and experiment drivers. Dynamic cardinality (client ids, link
//! endpoints, scenario names) goes in the *label* dimension, never the
//! name. The full inventory with semantics is documented in DESIGN.md
//! ("Observability").

// ---------------------------------------------------------------------
// Controller (gso-control): orchestration rounds and §4.3 delivery.
// ---------------------------------------------------------------------

/// Counter — completed orchestration rounds (one per controller solve).
pub const CTRL_SOLVES: &str = "ctrl.solves";
/// Counter — rounds served by the §7 fallback policy instead of the solver.
pub const CTRL_FALLBACK_ROUNDS: &str = "ctrl.fallback_rounds";
/// Histogram — Knapsack–Merge–Reduction iterations per round
/// (bounds: [`ITERATION_BOUNDS`]).
pub const CTRL_SOLVE_ITERATIONS: &str = "ctrl.solve.iterations";
/// Histogram — DP class-rows recomputed per round: the deterministic
/// work/latency proxy for a solve (bounds: [`WORK_BOUNDS`]). The sim has
/// no wall clock, so solve "latency" is measured in the solver's dominant
/// cost unit (see DESIGN.md).
pub const CTRL_SOLVE_ROWS: &str = "ctrl.solve.rows_recomputed";
/// Counter — per-round layer-configuration changes (from `SolutionDiff`).
pub const CTRL_CHURN_LAYERS: &str = "ctrl.churn.layer_changes";
/// Counter — per-round subscriber switch changes (from `SolutionDiff`).
pub const CTRL_CHURN_SWITCHES: &str = "ctrl.churn.switch_changes";
/// Gauge — total QoE of the most recent solution.
pub const CTRL_QOE: &str = "ctrl.qoe_total";

/// Counter — transitions into §7 fallback (any cause).
pub const CTRL_FALLBACK_ENTERED: &str = "fallback.entered";
/// Counter — transitions out of §7 fallback back to full solving.
pub const CTRL_FALLBACK_EXITED: &str = "fallback.exited";
/// Histogram — controller-restart → first full (non-fallback) solution,
/// in milliseconds (bounds: [`RECOVERY_MS_BOUNDS`]).
pub const CTRL_RECOVERY_TIME_MS: &str = "recovery.time_ms";
/// Counter — solve rounds skipped by the deadline watchdog because the
/// engine's work proxy overran its budget (served by fallback instead).
pub const CTRL_DEADLINE_OVERRUNS: &str = "ctrl.deadline_overruns";
/// Counter — GTMB messages rejected by a client because they carried a
/// stale controller epoch (label: client).
pub const EPOCH_STALE_REJECTED: &str = "epoch.stale_rejected";
/// Counter — duplicate GTMB deliveries re-acked idempotently without
/// re-applying the configuration (label: client).
pub const EPOCH_DUP_REACKED: &str = "epoch.dup_reacked";

/// Counter — fresh GTMB configuration messages sent (label: client).
pub const GTMB_SENT: &str = "gtmb.sent";
/// Counter — GTMB retransmissions (label: client).
pub const GTMB_RETRANSMITS: &str = "gtmb.retransmits";
/// Counter — GTBN acknowledgements accepted (label: client).
pub const GTMB_ACKED: &str = "gtmb.acked";
/// Counter — clients handed to the failure path after exhausting the
/// retransmission budget (label: client).
pub const GTMB_FAILED: &str = "gtmb.failed";

// ---------------------------------------------------------------------
// Fleet multi-tenancy (gso-control fleet). Label: tenant ("t<id>:<tier>").
// ---------------------------------------------------------------------

/// Counter — orchestration rounds solved for a tenant's conferences.
pub const TENANT_SOLVED_ROUNDS: &str = "tenant.solved_rounds";
/// Counter — rounds a tenant's conferences served from the fallback
/// template (any cause, including overload shedding).
pub const TENANT_FALLBACK_ROUNDS: &str = "tenant.fallback_rounds";
/// Gauge — summed QoE of a tenant's most recent per-conference solutions.
pub const TENANT_QOE: &str = "tenant.qoe_total";
/// Counter — conferences demoted to the template baseline by overload
/// shedding.
pub const FLEET_SHED_DEMOTIONS: &str = "fleet.shed.demotions";
/// Counter — demoted conferences re-promoted to full solving after the
/// headroom hysteresis cleared.
pub const FLEET_SHED_PROMOTIONS: &str = "fleet.shed.promotions";
/// Gauge — conferences currently demoted by overload shedding.
pub const FLEET_SHED_ACTIVE: &str = "fleet.shed.active";
/// Histogram — summed DP rows recomputed per fleet tick across all
/// conferences (bounds: [`WORK_BOUNDS`]).
pub const FLEET_TICK_ROWS: &str = "fleet.tick.rows_recomputed";
/// Counter — joins admitted by the admission controller (label: tenant).
pub const ADMISSION_ADMITTED: &str = "admission.admitted";
/// Counter — joins parked in the admission queue (label: tenant).
pub const ADMISSION_QUEUED: &str = "admission.queued";
/// Counter — joins rejected by the admission controller (label: tenant).
pub const ADMISSION_REJECTED: &str = "admission.rejected";

// ---------------------------------------------------------------------
// Controller cluster (gso-cluster / sim failover). Label: shard ("s<id>")
// unless noted.
// ---------------------------------------------------------------------

/// Counter — heartbeats accepted by a failure detector, each renewing the
/// shard's lease for another lease interval.
pub const CLUSTER_LEASE_GRANTED: &str = "cluster.lease.granted";
/// Counter — leases that expired without a renewing heartbeat, declaring
/// the shard dead and arming promotion.
pub const CLUSTER_LEASE_EXPIRED: &str = "cluster.lease.expired";
/// Counter — standby promotions: a standby took over a dead shard's
/// partition under a bumped epoch.
pub const CLUSTER_PROMOTIONS: &str = "cluster.promotions";
/// Counter — stale-epoch control messages (Rules / ConfigPush /
/// ResyncRequest from a fenced-off zombie shard) rejected by epoch
/// fencing instead of being applied (label: receiving node's shard, or
/// client for access-node fencing).
pub const CLUSTER_FENCED: &str = "cluster.fenced";
/// Counter — snapshot-delta payload bytes streamed shard → standby.
pub const CLUSTER_REPLICATION_BYTES: &str = "cluster.replication.bytes";
/// Counter — snapshot deltas the standby could not apply in sequence
/// (gap, reorder, or digest mismatch) and answered with a full-snapshot
/// request.
pub const CLUSTER_REPLICATION_GAPS: &str = "cluster.replication.gaps";
/// Counter — a fenced active shard observed a newer epoch and stepped
/// down (stopped emitting control traffic for the partition).
pub const CLUSTER_STEPDOWNS: &str = "cluster.stepdowns";
/// Histogram — lease expiry → the promoted standby's first full
/// (non-fallback) solution, in milliseconds
/// (bounds: [`RECOVERY_MS_BOUNDS`]).
pub const CLUSTER_TAKEOVER_MS: &str = "cluster.takeover_ms";

// ---------------------------------------------------------------------
// Bandwidth estimation (gso-bwe). Label: path ("up:<client>"/"down:<client>").
// ---------------------------------------------------------------------

/// Gauge — current bandwidth estimate in bps.
pub const BWE_ESTIMATE_BPS: &str = "bwe.estimate_bps";
/// Counter — transitions into the overuse state.
pub const BWE_OVERUSE: &str = "bwe.overuse_transitions";
/// Counter — multiplicative decreases applied.
pub const BWE_DECREASES: &str = "bwe.decreases";
/// Counter — probe-validated capacity lifts.
pub const BWE_PROBE_LIFTS: &str = "bwe.probe_lifts";

// ---------------------------------------------------------------------
// SFU forwarding plane (gso-sfu / access nodes). Label: subscriber.
// ---------------------------------------------------------------------

/// Histogram — layer-switch request → keyframe-landing latency in µs
/// (bounds: [`LATENCY_US_BOUNDS`]).
pub const SFU_SWITCH_LATENCY_US: &str = "sfu.switch_latency_us";
/// Counter — media bytes forwarded to a subscriber.
pub const SFU_FORWARDED_BYTES: &str = "sfu.forwarded_bytes";
/// Counter — media bytes withheld from a subscriber (no selection, or
/// waiting for a keyframe to land a pending switch).
pub const SFU_DROPPED_BYTES: &str = "sfu.dropped_bytes";

// ---------------------------------------------------------------------
// Network (gso-net). Label: "n<from>->n<to>". Snapshotted from LinkStats.
// ---------------------------------------------------------------------

/// Counter — packets enqueued on a link.
pub const NET_ENQUEUED: &str = "net.link.enqueued";
/// Counter — packets dropped at the queue limit.
pub const NET_DROPPED_QUEUE: &str = "net.link.dropped_queue";
/// Counter — packets dropped by random loss.
pub const NET_DROPPED_LOSS: &str = "net.link.dropped_loss";
/// Counter — payload bytes delivered.
pub const NET_DELIVERED_BYTES: &str = "net.link.delivered_bytes";
/// Gauge — high-watermark of queued bytes over the run.
pub const NET_PEAK_QUEUE_BYTES: &str = "net.link.peak_queue_bytes";

// ---------------------------------------------------------------------
// Media rendering (gso-media aggregates, snapshotted per client).
// ---------------------------------------------------------------------

/// Counter — frames rendered at a receiving client (label: client).
pub const MEDIA_FRAMES_RENDERED: &str = "media.frames_rendered";
/// Counter — media bytes rendered at a receiving client (label: client).
pub const MEDIA_BYTES_RENDERED: &str = "media.bytes_rendered";
/// Counter — keyframes rendered at a receiving client (label: client).
pub const MEDIA_KEYFRAMES_RENDERED: &str = "media.keyframes_rendered";

// ---------------------------------------------------------------------
// Solver replay (gso-audit --metrics). Label: scenario name.
// ---------------------------------------------------------------------

/// Counter — scenarios replayed through the solver.
pub const AUDIT_SCENARIOS: &str = "audit.scenarios";
/// Histogram — iterations per scenario solve (bounds: [`ITERATION_BOUNDS`]).
pub const AUDIT_SOLVE_ITERATIONS: &str = "audit.solve.iterations";
/// Histogram — DP rows recomputed per scenario solve
/// (bounds: [`WORK_BOUNDS`]).
pub const AUDIT_SOLVE_ROWS: &str = "audit.solve.rows_recomputed";
/// Gauge — total QoE of a scenario's solution (label: scenario).
pub const AUDIT_QOE: &str = "audit.qoe_total";

// ---------------------------------------------------------------------
// Event kinds.
// ---------------------------------------------------------------------

/// Event — the controller entered or left §7 fallback mode.
pub const EV_FALLBACK: &str = "fallback";
/// Event — a client exhausted its GTMB retransmission budget.
pub const EV_GTMB_FAILED: &str = "gtmb_failed";
/// Event — a bandwidth estimator transitioned into overuse.
pub const EV_BWE_OVERUSE: &str = "bwe_overuse";
/// Event — a probe validated extra capacity.
pub const EV_BWE_PROBE: &str = "bwe_probe";
/// Event — a pending layer switch landed on a keyframe.
pub const EV_SWITCH_LANDED: &str = "switch_landed";
/// Event — the conference node's controller crashed (chaos injection).
pub const EV_CTRL_CRASH: &str = "ctrl_crash";
/// Event — the conference node's controller restarted and began resync.
pub const EV_CTRL_RESTART: &str = "ctrl_restart";
/// Event — a standby's lease on its shard expired and it promoted itself.
pub const EV_CLUSTER_PROMOTED: &str = "cluster_promoted";
/// Event — a fenced shard saw a newer epoch and stepped down.
pub const EV_CLUSTER_STEPDOWN: &str = "cluster_stepdown";

// ---------------------------------------------------------------------
// Histogram bound sets (inclusive upper bounds, strictly increasing).
// ---------------------------------------------------------------------

/// Bounds for latency histograms in microseconds: 1 ms … 10 s.
pub const LATENCY_US_BOUNDS: &[u64] =
    &[1_000, 5_000, 10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000, 2_500_000, 10_000_000];

/// Bounds for solver iteration counts (the paper's Fig. 6b tops out in
/// the low tens).
pub const ITERATION_BOUNDS: &[u64] = &[1, 2, 3, 5, 8, 13, 21, 34];

/// Bounds for solver work units (DP class-rows recomputed per solve).
pub const WORK_BOUNDS: &[u64] = &[0, 10, 100, 1_000, 10_000, 100_000, 1_000_000];

/// Bounds for recovery-time histograms in milliseconds: one controller
/// scheduling interval up to well past the 3 s maximum solve gap.
pub const RECOVERY_MS_BOUNDS: &[u64] = &[100, 250, 500, 1_000, 2_000, 3_000, 5_000, 10_000, 30_000];
