//! Screen share + speaker-first: the advanced stream-management features of
//! §4.4 — priorities and multi-stream subscriptions via virtual publishers.
//!
//! A presenter shares a screen while speaking; viewers subscribe to the
//! screen (high priority), a high-resolution camera view of the speaker
//! (speaker-first, tag 1) *and* a thumbnail of the same camera (tag 0).
//!
//! Run with: `cargo run --example screen_share`

use gso_simulcast::algo::qoe::{SCREEN_BOOST, SPEAKER_BOOST};
use gso_simulcast::algo::{
    ladders, solver, ClientSpec, Problem, PublisherSource, Resolution, SourceId, Subscription,
};
use gso_simulcast::util::{Bitrate, ClientId, StreamKind};

fn main() {
    let ladder = ladders::paper_table1();
    let presenter = ClientId(1);
    let viewer_a = ClientId(2);
    let viewer_b = ClientId(3);

    // The presenter publishes both a camera and a screen source.
    let mut presenter_spec =
        ClientSpec::new(presenter, Bitrate::from_mbps(4), Bitrate::from_mbps(4), ladder.clone());
    presenter_spec
        .sources
        .push(PublisherSource { id: SourceId::screen(presenter), ladder: ladders::coarse3() });

    let clients = vec![
        presenter_spec,
        ClientSpec::new(viewer_a, Bitrate::from_mbps(2), Bitrate::from_mbps(3), ladder.clone()),
        // Viewer B is bandwidth-poor: priorities decide what survives.
        ClientSpec::new(viewer_b, Bitrate::from_mbps(2), Bitrate::from_kbps(1_200), ladder),
    ];

    let mut subs = Vec::new();
    for &v in &[viewer_a, viewer_b] {
        // Screen share: top priority.
        subs.push(
            Subscription::new(v, SourceId::screen(presenter), Resolution::R720)
                .with_boost(SCREEN_BOOST),
        );
        // Speaker-first: a thumbnail (tag 0) …
        subs.push(Subscription::new(v, SourceId::video(presenter), Resolution::R180));
        // … plus a separate high-resolution view of the same camera
        // (tag 1 = the virtual publisher X' of §4.4).
        subs.push(
            Subscription::new(v, SourceId::video(presenter), Resolution::R720)
                .with_tag(1)
                .with_boost(SPEAKER_BOOST),
        );
    }
    // Viewers also watch each other at thumbnail size.
    subs.push(Subscription::new(viewer_a, SourceId::video(viewer_b), Resolution::R360));
    subs.push(Subscription::new(viewer_b, SourceId::video(viewer_a), Resolution::R360));

    let problem = Problem::new(clients, subs).expect("valid conference");
    let solution = solver::solve(&problem, &Default::default());
    solution.validate(&problem).expect("constraints hold");

    println!("screen-share + speaker-first orchestration:\n");
    for kind in [StreamKind::Screen, StreamKind::Video] {
        let source = SourceId { client: presenter, kind };
        println!("presenter {kind} publishes:");
        for p in solution.policies(source) {
            println!("  {} @ {} -> {:?}", p.resolution, p.bitrate, p.audience);
        }
    }
    println!();
    for &v in &[viewer_a, viewer_b] {
        println!("{v} (downlink {}):", problem.client(v).unwrap().downlink);
        for r in solution.received.get(&v).map_or(&[] as &[_], Vec::as_slice) {
            let what = match (r.source.kind, r.tag) {
                (StreamKind::Screen, _) => "screen",
                (_, 1) => "speaker view",
                _ => "thumbnail",
            };
            println!("  {:<13} {} @ {}", what, r.resolution, r.bitrate);
        }
        println!();
    }
    println!(
        "The bandwidth-poor viewer keeps the screen and a *reduced* speaker\n\
         view (both downgraded to 360P to fit 1.2 Mbps); the redundant\n\
         thumbnail is dropped first — the QoE boosts of §4.4 decide what\n\
         survives, not arrival order."
    );
}
