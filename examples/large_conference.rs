//! Large-conference orchestration: hundreds of participants, solved in
//! real time — the scaling capability Fig. 6c demonstrates — then re-solved
//! incrementally after a bandwidth report, the controller's steady state.
//!
//! Run with: `cargo run --release --example large_conference [publishers] [subscribers]`

use gso_simulcast::algo::{Problem, Resolution, SolveEngine, SolverConfig, SourceId};
use gso_simulcast::sim::experiments::fig6::asymmetric_meeting;
use gso_simulcast::util::{Bitrate, ClientId};
// detguard: allow(wall-clock, reason = "demo stopwatch printing host solve latency to the console; never feeds back into simulated behaviour")
use std::time::Instant;

fn main() {
    let pubs: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let subs: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(300);
    println!(
        "building a conference with {pubs} publishers and {subs} subscribers (18-level ladders)…"
    );
    let problem = asymmetric_meeting(pubs, subs, 18);

    let mut engine = SolveEngine::new(SolverConfig::default());
    // detguard: allow(wall-clock, reason = "demo stopwatch printing host solve latency to the console; never feeds back into simulated behaviour")
    let start = Instant::now();
    let solution = engine.solve(&problem);
    let elapsed = start.elapsed();
    solution.validate(&problem).expect("all constraints satisfied");

    println!(
        "solved in {elapsed:?} ({} Knapsack-Merge-Reduction iterations)\n",
        solution.iterations
    );

    // A single subscriber reports a smaller downlink: the warm re-solve
    // touches only that client's knapsack.
    let mut clients = problem.clients().to_vec();
    if let Some(victim) = clients.iter_mut().rfind(|c| c.sources.is_empty()) {
        victim.downlink = Bitrate::from_bps(victim.downlink.as_bps() * 7 / 10);
        let jittered = Problem::new(clients, problem.subscriptions().to_vec())
            .expect("perturbed problem valid");
        engine.reset_stats();
        // detguard: allow(wall-clock, reason = "demo stopwatch printing host solve latency to the console; never feeds back into simulated behaviour")
        let start = Instant::now();
        let resolved = engine.solve(&jittered);
        let warm = start.elapsed();
        resolved.validate(&jittered).expect("warm re-solve valid");
        let stats = engine.stats();
        println!(
            "warm re-solve after one bandwidth report: {warm:?} \
             ({} knapsack cache hits, {} capacity backtracks, {} recomputes)\n",
            stats.full_hits,
            stats.backtracks,
            stats.suffix_recomputes + stats.fresh_recomputes
        );
    }

    // Publisher-side summary.
    println!("publisher configurations:");
    for i in 1..=pubs.min(5) as u32 {
        let policies = solution.policies(SourceId::video(ClientId(i)));
        let desc: Vec<String> = policies
            .iter()
            .map(|p| format!("{}@{} ({} subs)", p.resolution, p.bitrate, p.audience.len()))
            .collect();
        println!("  client{i}: {}", desc.join(", "));
    }
    if pubs > 5 {
        println!("  … and {} more publishers", pubs - 5);
    }

    // Subscriber-side distribution: how well downlinks are filled.
    let mut res_hist = [0usize; 3];
    let mut fill = Vec::new();
    for c in problem.clients().iter().filter(|c| c.sources.is_empty()) {
        let used = solution.receive_rate(c.id);
        if c.downlink.as_bps() > 0 {
            fill.push(used.as_bps() as f64 / c.downlink.as_bps() as f64);
        }
        for r in solution.received.get(&c.id).map_or(&[] as &[_], Vec::as_slice) {
            match r.resolution {
                Resolution::R180 => res_hist[0] += 1,
                Resolution::R360 => res_hist[1] += 1,
                _ => res_hist[2] += 1,
            }
        }
    }
    fill.sort_by(f64::total_cmp);
    let pct = |p: f64| fill[((fill.len() - 1) as f64 * p) as usize];
    println!(
        "\nsubscriber downlink utilization: p10 {:.0}%  median {:.0}%  p90 {:.0}%",
        pct(0.1) * 100.0,
        pct(0.5) * 100.0,
        pct(0.9) * 100.0
    );
    println!(
        "delivered streams by resolution: 180P×{}  360P×{}  720P×{}",
        res_hist[0], res_hist[1], res_hist[2]
    );
    println!("total QoE utility: {:.0}", solution.total_qoe);
}
