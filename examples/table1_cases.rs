//! Reprint Table 1 of the paper from the implemented control algorithm.
//!
//! Run with: `cargo run --example table1_cases`

use gso_simulcast::sim::experiments::table1;

fn main() {
    println!("Table 1: examples of GSO-Simulcast's control algorithm");
    println!("(9-level ladder: 720P {{1.5M,1.3M,1M}}, 360P {{800K,600K,500K,400K}}, 180P {{300K,100K}})\n");
    let descriptions = [
        "case 1: C's downlink limited to 500 Kbps",
        "case 2: B's uplink limited to 600 Kbps",
        "case 3: B's uplink (600 Kbps) and downlink (700 Kbps) limited",
    ];
    for (case, description) in descriptions.iter().enumerate() {
        println!("{description}");
        println!("  {:<8} {:>10} {:>10} {:>10}", "client", "720P", "360P", "180P");
        let rows = table1::solve_case(case);
        let paper = table1::paper_rows(case);
        for (row, expect) in rows.iter().zip(&paper) {
            let fmt = |b: Option<gso_simulcast::util::Bitrate>| {
                b.map_or_else(|| "-".into(), |b| b.to_string())
            };
            println!(
                "  {:<8} {:>10} {:>10} {:>10}   {}",
                row.client,
                fmt(row.r720),
                fmt(row.r360),
                fmt(row.r180),
                if row == expect { "✓ matches the paper" } else { "✗ MISMATCH" }
            );
        }
        println!();
    }
}
