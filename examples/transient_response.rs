//! Transient response (Fig. 7): watch GSO re-fit the video bitrate when the
//! downlink is abruptly capped and restored, vs the coarse Non-GSO baseline.
//!
//! Run with: `cargo run --release --example transient_response [cap_kbps]`

use gso_simulcast::sim::experiments::fig7;
use gso_simulcast::sim::PolicyMode;
use gso_simulcast::util::{Bitrate, SimTime};

fn main() {
    let cap_kbps: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(625);
    let cap = Bitrate::from_kbps(cap_kbps);
    println!(
        "one publisher → one subscriber; downlink capped to {cap} at t=20s, restored at t=57s\n"
    );

    let gso = fig7::run_one(PolicyMode::Gso, cap, 11);
    let non = fig7::run_one(PolicyMode::NonGso, cap, 11);

    println!("{:>6} {:>12} {:>12}", "t(s)", "GSO (kbps)", "NonGSO (kbps)");
    for sec in (2..=80).step_by(2) {
        let w = |s: &gso_simulcast::util::stats::TimeSeries| {
            s.window_mean(SimTime::from_secs(sec - 2), SimTime::from_secs(sec)).unwrap_or(0.0)
                / 1000.0
        };
        let marker = if sec == 20 {
            "  <- bandwidth reduced"
        } else if sec == 58 {
            "  <- bandwidth recovered"
        } else {
            ""
        };
        println!("{:>6} {:>12.0} {:>12.0}{}", sec, w(&gso), w(&non), marker);
    }

    let g = fig7::capped_window_mean(&gso).unwrap_or(0.0) / 1000.0;
    let n = fig7::capped_window_mean(&non).unwrap_or(0.0) / 1000.0;
    println!(
        "\nwhile capped at {cap}: GSO delivers {g:.0} kbps ({:.0}% of the cap), \
         Non-GSO {n:.0} kbps ({:.0}%)",
        g * 1000.0 * 100.0 / cap.as_bps() as f64,
        n * 1000.0 * 100.0 / cap.as_bps() as f64,
    );
    println!("the fine 15-level ladder lets GSO fit just under the limit (Fig. 7a vs 7b).");
}
