//! Slow-link demo: the full simulated stack (clients, SFU, controller)
//! under one of the paper's Table-2 impairments, GSO vs the Non-GSO
//! baseline.
//!
//! Run with: `cargo run --release --example slow_link [case-name]`
//! e.g. `cargo run --release --example slow_link down-0.5M`

use gso_simulcast::sim::experiments::fig8::run_case;
use gso_simulcast::sim::workloads::slow_link_cases;
use gso_simulcast::sim::PolicyMode;

fn main() {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "down-0.5M".to_string());
    let case = slow_link_cases().into_iter().find(|c| c.name == wanted).unwrap_or_else(|| {
        eprintln!(
            "unknown case {wanted:?}; available: {:?}",
            slow_link_cases().iter().map(|c| c.name).collect::<Vec<_>>()
        );
        std::process::exit(1);
    });

    println!("slow-link case {:?}: 3-party conference, 60 s simulated\n", case.name);
    for mode in [PolicyMode::Gso, PolicyMode::NonGso] {
        let r = run_case(mode, case, 42, false);
        println!("{mode:?}:");
        println!("  mean framerate    {:>8.2} fps", r.framerate);
        println!("  mean quality      {:>8.2} (VMAF proxy)", r.quality);
        println!("  video stall rate  {:>8.4}", r.video_stall);
        println!("  voice stall rate  {:>8.4}", r.voice_stall);
        println!();
    }
    println!("The global controller adapts publishers to the impaired link;");
    println!("the template baseline only sees its local fragment of the network.");
}
