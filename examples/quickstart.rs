//! Quickstart: solve a small conference with the GSO control algorithm.
//!
//! Three participants with heterogeneous links; the controller decides what
//! everyone publishes (resolution + fine-grained bitrate) and what everyone
//! receives, respecting every constraint of §4.1 of the paper.
//!
//! Run with: `cargo run --example quickstart`

use gso_simulcast::algo::{
    ladders, solver, ClientSpec, Problem, Resolution, SourceId, Subscription,
};
use gso_simulcast::util::{Bitrate, ClientId};

fn main() {
    // The production-style fine ladder: 15 bitrate levels across 180P/360P/720P.
    let ladder = ladders::fine15();

    // Three clients: a well-connected host, a typical participant, and a
    // mobile user on a weak downlink.
    let host = ClientId(1);
    let peer = ClientId(2);
    let mobile = ClientId(3);
    let clients = vec![
        ClientSpec::new(host, Bitrate::from_mbps(5), Bitrate::from_mbps(5), ladder.clone()),
        ClientSpec::new(peer, Bitrate::from_mbps(2), Bitrate::from_mbps(3), ladder.clone()),
        ClientSpec::new(mobile, Bitrate::from_kbps(800), Bitrate::from_kbps(900), ladder),
    ];

    // Everyone watches everyone (like a gallery view), up to 720P.
    let mut subscriptions = Vec::new();
    for &a in &[host, peer, mobile] {
        for &b in &[host, peer, mobile] {
            if a != b {
                subscriptions.push(Subscription::new(a, SourceId::video(b), Resolution::R720));
            }
        }
    }

    let problem = Problem::new(clients, subscriptions).expect("valid conference");
    let solution = solver::solve(&problem, &Default::default());
    solution.validate(&problem).expect("solution satisfies every constraint");

    println!("GSO orchestration for a 3-party conference:\n");
    for &c in &[host, peer, mobile] {
        println!("{c} publishes:");
        for p in solution.policies(SourceId::video(c)) {
            println!("  {} @ {}  -> {} subscriber(s)", p.resolution, p.bitrate, p.audience.len());
        }
        let received = solution.received.get(&c).map_or(&[] as &[_], Vec::as_slice);
        println!("{c} receives:");
        for r in received {
            println!("  {} @ {} from {}", r.resolution, r.bitrate, r.source);
        }
        println!(
            "  (uplink used {}, downlink used {})\n",
            solution.publish_rate(c),
            solution.receive_rate(c)
        );
    }
    println!("total QoE utility: {:.0}", solution.total_qoe);
    println!("solver iterations: {}", solution.iterations);
}
