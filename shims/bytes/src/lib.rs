//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the subset it uses: [`Bytes`] (cheaply cloneable, sliceable, shared),
//! [`BytesMut`] (growable builder), and the [`Buf`]/[`BufMut`] cursor traits
//! with the big-endian accessors the RTP/RTCP codecs rely on. Semantics match
//! the published crate for this subset: network byte order, panics on
//! under-run, `freeze` moves a builder into shared storage without copying.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Shared debug formatting for both buffer types.
macro_rules! fmt_bytes_debug {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "b\"")?;
            for &b in self.as_slice() {
                if b.is_ascii_graphic() || b == b' ' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\x{b:02x}")?;
                }
            }
            write!(f, "\"")
        }
    };
}

/// A cheaply cloneable, contiguous, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static byte slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A shared sub-range of this buffer (no copy).
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Split off the bytes from `at` onward; `self` keeps `[0, at)`.
    ///
    /// Panics if `at > len`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }

    /// Split off the first `at` bytes and return them; `self` keeps the rest.
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Self {
        m.freeze()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fmt_bytes_debug!();
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable, uniquely owned byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor for the `Buf` impl.
    read: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap), read: 0 }
    }

    /// Length of the unread contents.
    pub fn len(&self) -> usize {
        self.data.len() - self.read
    }

    /// True if no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.read..]
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Reserve additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Resize the unread contents, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(self.read + new_len, value);
    }

    /// Freeze into an immutable shared [`Bytes`] (no copy).
    pub fn freeze(mut self) -> Bytes {
        if self.read > 0 {
            self.data.drain(..self.read);
        }
        Bytes::from(self.data)
    }

    /// Copy the unread contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { data: s.to_vec(), read: 0 }
    }
}

impl<const N: usize> From<&[u8; N]> for BytesMut {
    fn from(s: &[u8; N]) -> Self {
        BytesMut { data: s.to_vec(), read: 0 }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let read = self.read;
        &mut self.data[read..]
    }
}

impl fmt::Debug for BytesMut {
    fmt_bytes_debug!();
}

/// Read cursor over a byte buffer. Big-endian accessors, as on the wire.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Discard the next `cnt` bytes. Panics on under-run.
    fn advance(&mut self, cnt: usize);

    /// True while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte. Panics on under-run.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a big-endian u16. Panics on under-run.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Read a big-endian u32. Panics on under-run.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Read a big-endian u64. Panics on under-run.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Read a big-endian f64. Panics on under-run.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Fill `dst` from the buffer. Panics on under-run.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer under-run");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Take the next `len` bytes as an owned [`Bytes`]. Panics on under-run.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer under-run");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "buffer under-run");
        let out = self.slice(..len);
        self.start += len;
        out
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.read += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte buffer. Big-endian, as on the wire.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian f64.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut m = BytesMut::new();
        m.put_u8(0xAB);
        m.put_u16(0x1234);
        m.put_u32(0xDEAD_BEEF);
        m.put_u64(0x0102_0304_0506_0708);
        m.put_f64(1.5);
        let mut b = m.freeze();
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(b.get_u8(), 0xAB);
        assert_eq!(b.get_u16(), 0x1234);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 0x0102_0304_0506_0708);
        assert!((b.get_f64() - 1.5).abs() < f64::EPSILON);
        assert!(b.is_empty());
    }

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut c = b.clone();
        let tail = c.split_off(2);
        assert_eq!(&c[..], &[1, 2]);
        assert_eq!(&tail[..], &[3, 4, 5]);
        let mut d = b.clone();
        let head = d.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&d[..], &[3, 4, 5]);
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        let first = b.copy_to_bytes(2);
        assert_eq!(&first[..], &[9, 8]);
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.get_u8(), 7);
    }

    #[test]
    #[should_panic(expected = "buffer under-run")]
    fn under_run_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32();
    }

    #[test]
    fn bytes_equality_and_debug() {
        let b = Bytes::from_static(b"ok\x01");
        assert_eq!(b, Bytes::from(vec![b'o', b'k', 1]));
        assert_eq!(format!("{b:?}"), "b\"ok\\x01\"");
    }
}
