//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the minimal API surface it actually consumes: [`SeedableRng`],
//! [`Rng::gen`] / [`Rng::gen_range`], and [`rngs::StdRng`]. The generator is
//! deterministic (xoshiro256++ seeded via SplitMix64), which is exactly what
//! `gso_util::DetRng` needs — statistical quality comparable to the real
//! `StdRng` for simulation purposes, bit-for-bit reproducible across runs.
//!
//! This is *not* a cryptographic RNG and must never be used as one.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift rejection-free mapping; bias is < 2^-64 per
                // draw, negligible for simulation workloads.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u64, usize, u32, u16, u8, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The subset of `rand::Rng` this workspace uses.
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly over its domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// The subset of `rand::SeedableRng` this workspace uses.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256++ seeded
    /// through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(5u64..10);
            assert!((5..10).contains(&v));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
    }
}
