//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! small API surface the `gso-bench` targets use: `Criterion::default()
//! .configure_from_args()`, `benchmark_group`, `sample_size`,
//! `bench_function` with `Bencher::iter`, `finish`, and `final_summary`.
//!
//! Measurement is deliberately simple — wall-clock medians over
//! `sample_size` samples after a short warm-up — with none of criterion's
//! statistical machinery. Numbers are indicative, not publication-grade;
//! they exist so `cargo bench` keeps working offline.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup { _parent: self, sample_size: 10 }
    }

    /// Print the closing summary line.
    pub fn final_summary(&self) {
        println!("\nbench run complete (shim harness: wall-clock medians, no statistics)");
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut bencher = Bencher { samples: Vec::new(), iters_per_sample: 1 };
        // Calibration pass: size iteration batches to ~1 ms per sample.
        f(&mut bencher);
        if let Some(&first) = bencher.samples.first() {
            let target = Duration::from_millis(1);
            if first > Duration::ZERO && first < target {
                let scale = target.as_nanos() / first.as_nanos().max(1);
                bencher.iters_per_sample = (scale as u64).clamp(1, 1_000_000);
            }
        }
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        bencher.samples.sort();
        let median =
            bencher.samples.get(bencher.samples.len() / 2).copied().unwrap_or(Duration::ZERO);
        let per_iter = median.as_nanos() / u128::from(bencher.iters_per_sample).max(1);
        println!(
            "  {name:<40} median {:>12} ns/iter ({} samples x {} iters)",
            per_iter, self.sample_size, bencher.iters_per_sample
        );
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Timing handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine`, preventing the optimizer from discarding its result.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            hint::black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default().configure_from_args();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        c.final_summary();
        assert!(runs > 0);
    }
}
