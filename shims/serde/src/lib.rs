//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and derive
//! namespaces so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. No actual
//! serialization is implemented — nothing in this workspace serializes yet;
//! the annotations mark types as wire-ready for future subsystems. Swap these
//! shims for the published crates once the build environment has registry
//! access.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
