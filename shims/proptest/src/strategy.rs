//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy built from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Uniform `bool` (`prop::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Full-domain numeric strategy (`prop::num::u16::ANY`, …).
#[derive(Debug, Clone, Copy)]
pub struct AnyNum<T>(PhantomData<T>);

impl<T> AnyNum<T> {
    /// The strategy value (used by the `prop::num` consts).
    pub const fn new() -> Self {
        AnyNum(PhantomData)
    }
}

impl<T> Default for AnyNum<T> {
    fn default() -> Self {
        AnyNum::new()
    }
}

macro_rules! impl_any_num {
    ($($t:ty),*) => {$(
        impl Strategy for AnyNum<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_num!(u8, u16, u32, u64, usize);

/// Accepted lengths for [`vec`]: an exact size, a `Range`, or a
/// `RangeInclusive`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// A vector whose length is drawn from `size` and whose elements come from
/// `element` (`prop::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..5_000 {
            assert!((5u64..10).generate(&mut r) < 10);
            let v = (2usize..=6).generate(&mut r);
            assert!((2..=6).contains(&v));
            let f = (0.5f64..2.0).generate(&mut r);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_size() {
        let mut r = rng();
        for _ in 0..2_000 {
            let v = vec(0u8..10, 3usize..7).generate(&mut r);
            assert!((3..7).contains(&v.len()));
            let exact = vec(0u8..10, 4usize).generate(&mut r);
            assert_eq!(exact.len(), 4);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1u64..5).prop_flat_map(|n| {
            (Just(n), vec(0u64..10, n as usize)).prop_map(|(n, v)| (n, v.len()))
        });
        for _ in 0..1_000 {
            let (n, len) = s.generate(&mut r);
            assert_eq!(n as usize, len);
        }
    }

    #[test]
    fn tuple_strategies_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = (0u8..4, AnyBool, Just(7i32)).generate(&mut r);
        assert!(a < 4);
        let _: bool = b;
        assert_eq!(c, 7);
    }
}
