//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! subset of proptest this workspace uses: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range and tuple strategies, `Just`,
//! `prop::collection::vec`, `prop::bool::ANY`, `prop::num::*::ANY`, the
//! [`proptest!`] macro, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from the real crate, deliberate for a test-only shim:
//!
//! * **No shrinking.** A failing case reports its case number and seed; the
//!   whole run is deterministic (seed derived from the test name), so any
//!   failure reproduces exactly on re-run.
//! * **Discards count as passes.** `prop_assume!` skips the case without
//!   retrying, so heavy use of assumptions reduces effective case counts.
//! * `ProptestConfig` keeps only the `cases` knob; other fields are ignored
//!   at construction.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// Namespaced strategy constructors (`prop::collection::vec`, `prop::bool::ANY`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }

    /// Boolean strategies.
    pub mod bool {
        /// Uniform `bool`.
        pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
    }

    /// Full-domain numeric strategies.
    pub mod num {
        macro_rules! any_mod {
            ($($m:ident : $t:ty),*) => {$(
                pub mod $m {
                    /// Uniform over the full domain.
                    pub const ANY: crate::strategy::AnyNum<$t> =
                        crate::strategy::AnyNum::new();
                }
            )*};
        }
        any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize);
    }
}

/// The subset of `proptest::prelude` this workspace uses.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Run each `fn` as a `#[test]` over `cases` generated inputs.
///
/// Accepts the same shape as the real `proptest!` macro:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop_holds(x in 0u64..100, v in prop::collection::vec(0u8..255, 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    (@funcs ($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                let strat = ($($strat,)*);
                for case in 0..config.cases {
                    let ($($arg,)*) =
                        $crate::strategy::Strategy::generate(&strat, &mut rng);
                    let outcome: ::std::result::Result<
                        (),
                        ::std::string::String,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "proptest case {case} of {} failed: {message}",
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @funcs ($crate::test_runner::ProptestConfig::default()); $($rest)*
        );
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {l:?}\n right: {r:?}",
            stringify!($left),
            stringify!($right),
        );
    }};
}

/// Skip the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}
