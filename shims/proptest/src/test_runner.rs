//! Deterministic test RNG and run configuration.

/// Configuration for a `proptest!` block. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG used by strategies (xoshiro256++ seeded via SplitMix64).
///
/// Each property derives its seed from its own name, so adding or reordering
/// tests never perturbs another property's cases, and every failure
/// reproduces exactly on re-run.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG with a seed derived from the property name (FNV-1a).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// RNG from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// The next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_name_determinism() {
        let mut a = TestRng::for_test("prop_x");
        let mut b = TestRng::for_test("prop_x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(TestRng::for_test("prop_x").next_u64(), TestRng::for_test("prop_y").next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_seed(1);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }
}
