//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, and nothing in this
//! workspace serializes yet — the `#[derive(Serialize, Deserialize)]`
//! attributes only mark types as wire-ready for future subsystems. These
//! derives therefore expand to nothing, keeping the annotations compiling
//! without pulling in syn/quote. When real serialization lands, replace the
//! `shims/serde*` crates with the published ones.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
