//! The paper's headline deployment claims (§6), checked in direction and
//! rough magnitude against the simulator: with GSO, average video stall
//! drops, voice stall drops, and framerate does not regress, across a mixed
//! slow-link workload. The exact production percentages (−35 %, −50 %, +6 %)
//! cannot be reproduced without Dingtalk's traffic; the *sign and rough
//! size* of each delta is the reproducible claim.

use gso_simulcast::sim::deployment::{
    measure_improvements, simulate_deployment, window_mean, Rollout,
};

#[test]
fn gso_improves_the_population_metrics() {
    // A 5-case sample of the Table 2 matrix under both systems.
    let f = measure_improvements(77, 3);
    assert!(
        f.video_stall_reduction > 0.10,
        "video stall should drop by a sizable fraction, got {:.3}",
        f.video_stall_reduction
    );
    assert!(
        f.voice_stall_reduction > -0.05,
        "voice stall must not regress, got {:.3}",
        f.voice_stall_reduction
    );
    assert!(f.framerate_gain > -0.02, "framerate must not regress, got {:.3}", f.framerate_gain);
}

#[test]
fn rollout_series_reflects_measured_improvements() {
    let f = measure_improvements(78, 5);
    let days = simulate_deployment(Rollout::paper(), f, 78);
    let before = window_mean(&days, 0..50, |d| d.video_stall);
    let after = window_mean(&days, 80..106, |d| d.video_stall);
    assert!(after < before, "video stall must fall across the rollout: {before:.4} -> {after:.4}");
    let sat_before = window_mean(&days, 0..50, |d| d.satisfaction);
    let sat_after = window_mean(&days, 80..106, |d| d.satisfaction);
    assert!(
        sat_after > sat_before,
        "satisfaction must rise across the rollout: {sat_before:.4} -> {sat_after:.4}"
    );
}
