//! Property-based tests over the core invariants.
//!
//! * Any randomly generated conference yields a GSO solution that passes
//!   the full constraint validator (bandwidths, codec, subscriptions).
//! * The MCKP DP matches exhaustive enumeration on small random instances.
//! * RTP and RTCP wire formats round-trip arbitrary field values.
//! * The bandwidth hysteresis gate's output never exceeds the largest
//!   measurement seen and applies downgrades immediately.

use gso_simulcast::algo::{
    ladders, mckp, solver, ClientSpec, Problem, Resolution, SolverConfig, SourceId, Subscription,
};
use gso_simulcast::util::{Bitrate, ClientId, SimTime};
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = Problem> {
    // 2–6 clients, random bandwidths, random subscription matrix with
    // random resolution caps.
    (2usize..=6).prop_flat_map(|n| {
        let bw = prop::collection::vec((50u64..6_000, 50u64..6_000), n);
        let subs = prop::collection::vec(prop::bool::ANY, n * n);
        let caps = prop::collection::vec(0usize..3, n * n);
        (Just(n), bw, subs, caps).prop_map(|(n, bw, subs, caps)| {
            let ladder = ladders::paper_table1();
            let clients: Vec<ClientSpec> = bw
                .iter()
                .enumerate()
                .map(|(i, &(up, down))| {
                    ClientSpec::new(
                        ClientId(i as u32 + 1),
                        Bitrate::from_kbps(up),
                        Bitrate::from_kbps(down),
                        ladder.clone(),
                    )
                })
                .collect();
            let resolutions = [Resolution::R180, Resolution::R360, Resolution::R720];
            let mut subscriptions = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    if i != j && subs[i * n + j] {
                        subscriptions.push(Subscription::new(
                            ClientId(i as u32 + 1),
                            SourceId::video(ClientId(j as u32 + 1)),
                            resolutions[caps[i * n + j]],
                        ));
                    }
                }
            }
            Problem::new(clients, subscriptions).expect("generated problem is valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solver_output_always_satisfies_all_constraints(problem in arb_problem()) {
        let solution = solver::solve(&problem, &SolverConfig::default());
        prop_assert!(solution.validate(&problem).is_ok(),
            "violation: {:?}", solution.validate(&problem));
    }

    #[test]
    fn solver_never_exceeds_iteration_bound(problem in arb_problem()) {
        let solution = solver::solve(&problem, &SolverConfig::default());
        let bound = 1 + problem.sources().len() * 3; // 3 resolutions each
        prop_assert!(solution.iterations <= bound);
    }

    #[test]
    fn mckp_matches_exhaustive_enumeration(
        // 1–3 classes of 1–4 items, small weights so enumeration is cheap.
        classes in prop::collection::vec(
            prop::collection::vec((1u64..40, 0.0f64..100.0), 1..4), 1..4),
        capacity in 1u64..80,
    ) {
        let as_bitrates: Vec<Vec<(Bitrate, f64)>> = classes
            .iter()
            .map(|c| c.iter().map(|&(w, v)| (Bitrate::from_kbps(w * 10), v)).collect())
            .collect();
        let dp = mckp::solve_bitrates(
            &as_bitrates,
            Bitrate::from_kbps(capacity * 10),
            Bitrate::from_kbps(10),
        );
        // Exhaustive: iterate all choice vectors.
        let mut best = 0.0f64;
        let counts: Vec<usize> = classes.iter().map(|c| c.len() + 1).collect();
        let total: usize = counts.iter().product();
        for mut idx in 0..total {
            let mut weight = 0u64;
            let mut value = 0.0;
            for (c, &count) in classes.iter().zip(&counts) {
                let pick = idx % count;
                idx /= count;
                if pick > 0 {
                    weight += c[pick - 1].0;
                    value += c[pick - 1].1;
                }
            }
            if weight <= capacity && value > best {
                best = value;
            }
        }
        prop_assert!((dp.value - best).abs() < 1e-9,
            "dp {} vs exhaustive {}", dp.value, best);
    }

    #[test]
    fn rtp_packets_roundtrip(
        marker in prop::bool::ANY,
        pt in 0u8..128,
        seq in prop::num::u16::ANY,
        ts in prop::num::u32::ANY,
        ssrc in prop::num::u32::ANY,
        payload in prop::collection::vec(prop::num::u8::ANY, 0..256),
    ) {
        use gso_simulcast::rtp::RtpPacket;
        let p = RtpPacket {
            marker,
            payload_type: pt,
            sequence: seq,
            timestamp: ts,
            ssrc: gso_simulcast::util::Ssrc(ssrc),
            payload: bytes::Bytes::from(payload),
        };
        let back = RtpPacket::parse(p.serialize()).unwrap();
        prop_assert_eq!(back, p);
    }

    #[test]
    fn tmmbr_entries_roundtrip_conservatively(
        ssrc in prop::num::u32::ANY,
        kbps in 0u64..1_000_000,
        overhead in 0u16..512,
    ) {
        use gso_simulcast::rtp::{RtcpPacket, GsoTmmbr, TmmbrEntry};
        let entry = TmmbrEntry {
            ssrc: gso_simulcast::util::Ssrc(ssrc),
            bitrate: Bitrate::from_kbps(kbps),
            overhead,
        };
        let msg = RtcpPacket::GsoTmmbr(GsoTmmbr {
            sender_ssrc: gso_simulcast::util::Ssrc(1),
            epoch: 0,
            request_seq: 1,
            entries: vec![entry],
        });
        let parsed = RtcpPacket::parse_compound(msg.serialize()).unwrap();
        let RtcpPacket::GsoTmmbr(back) = &parsed[0] else { panic!() };
        // Mantissa truncation is conservative: never report more than asked.
        prop_assert!(back.entries[0].bitrate <= entry.bitrate);
        // With a 17-bit mantissa the post-shift mantissa is ≥ 2^16, so the
        // truncation error is below bitrate / 2^16.
        let err = (entry.bitrate.as_bps() - back.entries[0].bitrate.as_bps()) as f64;
        prop_assert!(err <= entry.bitrate.as_bps() as f64 / f64::from(1 << 16) + 1.0);
        prop_assert_eq!(back.entries[0].overhead, overhead & 0x1ff);
    }

    #[test]
    fn hysteresis_gate_is_bounded_and_downgrades_fast(
        measurements in prop::collection::vec(50u64..5_000, 1..40),
    ) {
        use gso_simulcast::control::{BandwidthHysteresis, HysteresisConfig};
        let mut gate = BandwidthHysteresis::new(HysteresisConfig::default());
        let max_seen = *measurements.iter().max().unwrap();
        let mut prev: Option<Bitrate> = None;
        for (i, &kbps) in measurements.iter().enumerate() {
            let m = Bitrate::from_kbps(kbps);
            let out = gate.filter(0u32, SimTime::from_secs(i as u64), m);
            // Never invents bandwidth beyond the largest measurement.
            prop_assert!(out <= Bitrate::from_kbps(max_seen));
            match prev {
                // First sample passes through.
                None => prop_assert_eq!(out, m),
                // Downgrades apply immediately…
                Some(p) if m < p => prop_assert_eq!(out, m),
                // …upgrades may be gated, but never above the measurement.
                Some(p) => {
                    prop_assert!(out >= p);
                    prop_assert!(out <= m.max(p));
                }
            }
            prev = Some(out);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The exact optimum never loses to the heuristic, and the heuristic
    /// stays near-optimal (Fig. 6a/6b's optimality ≈ 1) on small random
    /// instances.
    #[test]
    fn brute_force_dominates_gso_but_not_by_much(
        bw in prop::collection::vec((200u64..3_000, 200u64..3_000), 2..4),
    ) {
        use gso_simulcast::algo::brute;
        let ladder = ladders::fine(4);
        let n = bw.len();
        let clients: Vec<ClientSpec> = bw
            .iter()
            .enumerate()
            .map(|(i, &(up, down))| {
                ClientSpec::new(
                    ClientId(i as u32 + 1),
                    Bitrate::from_kbps(up),
                    Bitrate::from_kbps(down),
                    ladder.clone(),
                )
            })
            .collect();
        let mut subs = Vec::new();
        for i in 1..=n as u32 {
            for j in 1..=n as u32 {
                if i != j {
                    subs.push(Subscription::new(
                        ClientId(i),
                        SourceId::video(ClientId(j)),
                        Resolution::R720,
                    ));
                }
            }
        }
        let problem = Problem::new(clients, subs).unwrap();
        let cfg = SolverConfig::default();
        let gso = solver::solve(&problem, &cfg);
        let exact = brute::solve_brute(&problem, &cfg, Some(500_000));
        prop_assume!(exact.exact);
        exact.solution.validate(&problem).unwrap();
        prop_assert!(exact.solution.total_qoe >= gso.total_qoe - 1e-6);
        if exact.solution.total_qoe > 0.0 {
            let ratio = gso.total_qoe / exact.solution.total_qoe;
            prop_assert!(ratio > 0.8, "optimality {ratio}");
        }
    }

    /// The control-channel parser never panics and never mis-accepts
    /// arbitrary bytes as RTP/RTCP (magic byte discipline). The generator
    /// forces the magic prefix and a valid tag on most inputs so the deep
    /// field parsers actually get fuzzed.
    #[test]
    fn ctrl_parser_handles_arbitrary_bytes(
        tag in 0u8..12,
        body in prop::collection::vec(prop::num::u8::ANY, 0..120),
    ) {
        use gso_simulcast::sim::ctrl::CtrlMessage;
        let mut data = vec![0xCCu8, tag];
        data.extend_from_slice(&body);
        let parsed = CtrlMessage::parse(bytes::Bytes::from(data));
        // Whatever parses must re-serialize and re-parse identically.
        if let Some(msg) = parsed {
            let re = CtrlMessage::parse(msg.serialize());
            prop_assert_eq!(re, Some(msg));
        }
    }

    /// RTCP compound parsing never panics on arbitrary input.
    #[test]
    fn rtcp_parser_never_panics(
        data in prop::collection::vec(prop::num::u8::ANY, 0..200),
    ) {
        use gso_simulcast::rtp::RtcpPacket;
        let _ = RtcpPacket::parse_compound(bytes::Bytes::from(data));
    }

    /// RTP parsing never panics on arbitrary input.
    #[test]
    fn rtp_parser_never_panics(
        data in prop::collection::vec(prop::num::u8::ANY, 0..200),
    ) {
        use gso_simulcast::rtp::RtpPacket;
        let _ = RtpPacket::parse(bytes::Bytes::from(data));
    }
}
