//! Cross-crate protocol pipeline: controller decision → GTMB wire bytes →
//! parse at the client → encoder reconfiguration → GTBN acknowledgement →
//! executor bookkeeping — the full §4.3 feedback loop, without the network
//! simulator in between.

use gso_simulcast::algo::{
    ladders, solver, ClientSpec, Problem, Resolution, SourceId, Subscription,
};
use gso_simulcast::control::{FeedbackConfig, FeedbackExecutor};
use gso_simulcast::media::{EncoderConfig, LayerConfig, SimulcastEncoder};
use gso_simulcast::rtp::{ssrc_for, GsoTmmbn, RtcpPacket};
use gso_simulcast::util::{Bitrate, ClientId, DetRng, SimTime, StreamKind};
use std::collections::BTreeMap;

#[test]
fn solution_to_wire_to_encoder_roundtrip() {
    // 1. A two-party problem and its GSO solution.
    let ladder = ladders::paper_table1();
    let a = ClientId(1);
    let b = ClientId(2);
    let problem = Problem::new(
        vec![
            ClientSpec::new(a, Bitrate::from_mbps(5), Bitrate::from_mbps(5), ladder.clone()),
            ClientSpec::new(b, Bitrate::from_mbps(5), Bitrate::from_kbps(900), ladder.clone()),
        ],
        vec![Subscription::new(b, SourceId::video(a), Resolution::R720)],
    )
    .unwrap();
    let solution = solver::solve(&problem, &Default::default());

    // 2. The executor turns it into per-client GTMB messages.
    let mut executor =
        FeedbackExecutor::new(FeedbackConfig::default(), gso_simulcast::util::Ssrc(7));
    let mut layers = BTreeMap::new();
    layers.insert(SourceId::video(a), vec![180u16, 360, 720]);
    layers.insert(SourceId::video(b), vec![180u16, 360, 720]);
    let (configs, rules) = executor.execute(SimTime::ZERO, &solution, &layers);
    let (_, gtmb) = configs.iter().find(|(c, _)| *c == a).expect("A gets a config");

    // 3. Serialize to RTCP wire bytes and parse back.
    let wire = RtcpPacket::serialize_compound(&[RtcpPacket::GsoTmmbr(gtmb.clone())]);
    let parsed = RtcpPacket::parse_compound(wire).unwrap();
    let RtcpPacket::GsoTmmbr(received) = &parsed[0] else { panic!("expected GTMB") };
    assert_eq!(received.request_seq, gtmb.request_seq);

    // 4. A's encoder bank applies the configuration.
    let mut encoder = SimulcastEncoder::new(
        EncoderConfig::default(),
        [180u16, 360, 720]
            .iter()
            .map(|&lines| LayerConfig {
                ssrc: ssrc_for(a, StreamKind::Video, lines),
                resolution_lines: lines,
                target: Bitrate::ZERO,
            })
            .collect(),
        DetRng::derive(1, "pipeline"),
    );
    for e in &received.entries {
        assert!(encoder.set_layer_rate(e.ssrc, e.bitrate), "unknown ssrc {}", e.ssrc);
    }
    // B's 900 Kbps downlink admits the 800 Kbps 360P stream; only that
    // layer is active.
    assert_eq!(
        encoder.layer_rate(ssrc_for(a, StreamKind::Video, 360)),
        Some(Bitrate::from_kbps(800))
    );
    assert_eq!(encoder.layer_rate(ssrc_for(a, StreamKind::Video, 720)), Some(Bitrate::ZERO));
    assert_eq!(encoder.total_target(), Bitrate::from_kbps(800));

    // 5. The forwarding rules target the same SSRC.
    assert_eq!(rules.len(), 1);
    assert_eq!(rules[0].ssrc, ssrc_for(a, StreamKind::Video, 360));

    // 6. The GTBN acknowledgement clears the executor's retransmission state.
    assert!(executor.pending(a));
    let ack = GsoTmmbn {
        sender_ssrc: ssrc_for(a, StreamKind::Video, 0),
        epoch: received.epoch,
        request_seq: received.request_seq,
        entries: received.entries.clone(),
    };
    let ack_wire = RtcpPacket::serialize_compound(&[RtcpPacket::GsoTmmbn(ack)]);
    let ack_parsed = RtcpPacket::parse_compound(ack_wire).unwrap();
    let RtcpPacket::GsoTmmbn(ack) = &ack_parsed[0] else { panic!("expected GTBN") };
    executor.on_ack(a, ack);
    assert!(!executor.pending(a));
}

#[test]
fn semb_report_survives_the_wire_with_encoding_tolerance() {
    use gso_simulcast::rtp::Semb;
    // 3.7 Mbps does not fit an 18-bit mantissa exactly; the decoded value
    // must be within the documented relative error and never above the
    // original (conservative truncation).
    let original = Bitrate::from_bps(3_700_001);
    let semb = RtcpPacket::Semb(Semb {
        sender_ssrc: gso_simulcast::util::Ssrc(1),
        bitrate: original,
        ssrcs: vec![],
    });
    let parsed = RtcpPacket::parse_compound(semb.serialize()).unwrap();
    let RtcpPacket::Semb(back) = &parsed[0] else { panic!("expected SEMB") };
    assert!(back.bitrate <= original);
    let rel = (original.as_bps() - back.bitrate.as_bps()) as f64 / original.as_bps() as f64;
    assert!(rel < 1.0 / f64::from(1 << 18) + 1e-9, "relative error {rel}");
}
