//! Design-for-failure, end to end (§7): the service must survive a
//! control-plane outage. When the link between the accessing node and the
//! conference node dies mid-conference, no new orchestration reaches the
//! media plane — but the last configuration keeps forwarding, so media
//! continues to flow (the paper: "the service could continue, however, at
//! the cost of reduced QoE").

use gso_simulcast::algo::{Resolution, SourceId};
use gso_simulcast::control::{ControllerConfig, SubscribeIntent};
use gso_simulcast::net::{LinkConfig, Schedule, Simulator};
use gso_simulcast::sim::access::AccessNode;
use gso_simulcast::sim::client::{ClientConfig, ClientNode, PolicyMode};
use gso_simulcast::sim::conference::ConferenceNode;
use gso_simulcast::util::{Bitrate, ClientId, SimDuration, SimTime};

#[test]
fn media_survives_control_plane_partition() {
    let ladder = gso_simulcast::sim::workloads::ladder_for_mode(PolicyMode::Gso);
    let base = Bitrate::from_mbps(4);
    let mut sim = Simulator::new(777);

    let cn =
        sim.add_node(Box::new(ConferenceNode::new(ControllerConfig::paper_defaults(), vec![])));
    let an = sim.add_node(Box::new(AccessNode::new(PolicyMode::Gso, Some(cn))));
    // The AN↔CN control links die completely at t = 12 s (zero rate drops
    // everything).
    let dead_after = Schedule::steps(vec![
        (SimTime::ZERO, Bitrate::from_mbps(1_000)),
        (SimTime::from_secs(12), Bitrate::ZERO),
    ]);
    let ctrl_link = LinkConfig::clean(Bitrate::from_mbps(1_000), SimDuration::from_millis(2))
        .with_rate_schedule(dead_after);
    sim.add_link(an, cn, ctrl_link.clone());
    sim.add_link(cn, an, ctrl_link);
    if let Some(c) = sim.node_mut::<ConferenceNode>(cn) {
        c.register_access_node(an);
    }

    let ids = [ClientId(1), ClientId(2)];
    let mut endpoints = Vec::new();
    for (i, &id) in ids.iter().enumerate() {
        let subs: Vec<SubscribeIntent> = ids
            .iter()
            .filter(|&&o| o != id)
            .map(|&o| SubscribeIntent {
                source: SourceId::video(o),
                max_resolution: Resolution::R720,
                tag: 0,
            })
            .collect();
        let cfg = ClientConfig {
            id,
            mode: PolicyMode::Gso,
            ladder: ladder.clone(),
            screen_ladder: None,
            subscriptions: subs,
            audio: true,
            bwe: Default::default(),
        };
        let node = sim.add_node(Box::new(ClientNode::new(cfg, an, 777)));
        sim.add_duplex_link(node, an, LinkConfig::clean(base, SimDuration::from_millis(20)));
        if let Some(a) = sim.node_mut::<AccessNode>(an) {
            a.attach(id, node);
        }
        sim.schedule_timer(node, SimTime::from_millis(137 * i as u64), 0);
        endpoints.push(node);
    }
    ConferenceNode::schedule_boot(cn, &mut sim);
    AccessNode::schedule_boot(an, &mut sim);

    sim.run_until(SimTime::from_secs(40));

    // The controller stopped hearing from the world at t=12 s…
    let intervals =
        sim.node::<ConferenceNode>(cn).map_or(0, |c| c.controller.call_intervals().len());
    assert!(intervals > 0, "the controller ran before the partition");

    // …but media kept flowing long after: both clients still render video
    // in the final 10 seconds, a full 18+ seconds into the outage.
    for &node in &endpoints {
        let client: &ClientNode = sim.node(node).expect("client");
        let late_rate = client
            .metrics
            .recv_rate
            .window_mean(SimTime::from_secs(30), SimTime::from_secs(40))
            .unwrap_or(0.0);
        assert!(
            late_rate > 300_000.0,
            "media must keep flowing through the outage, got {late_rate} bps"
        );
        let m = client.session_metrics(SimTime::from_secs(40));
        assert!(m.framerate > 10.0, "framerate {}", m.framerate);
    }
}

#[test]
fn client_downgrade_monitor_survives_dead_high_layer() {
    // §7 client-side exception: "a server instructs a client to send
    // multiple streams, however, only a low bitrate stream is received."
    // The downgrade monitor must steer subscriptions to the layer that is
    // actually alive. (Unit-level companion to the full-stack test above.)
    use gso_simulcast::control::DowngradeMonitor;
    use gso_simulcast::rtp::ssrc_for;
    use gso_simulcast::util::StreamKind;

    let publisher = ClientId(9);
    let high = ssrc_for(publisher, StreamKind::Video, 720);
    let low = ssrc_for(publisher, StreamKind::Video, 180);
    let mut monitor = DowngradeMonitor::new(SimDuration::from_secs(2));

    // Only the low layer produces packets.
    for s in 0..10u64 {
        monitor.on_packet(SimTime::from_secs(s), low);
    }
    let preference = [high, low];
    assert_eq!(
        monitor.best_alive(SimTime::from_secs(10), &preference),
        Some(low),
        "the dead high layer must be abandoned for the live low layer"
    );
}
