//! Paper-fidelity gate: the implemented control algorithm must reproduce
//! Table 1 of the paper exactly — all three worked cases, every client,
//! every resolution column.

use gso_simulcast::sim::experiments::table1;

#[test]
fn table1_all_cases_exact() {
    for case in 0..3 {
        let got = table1::solve_case(case);
        let expected = table1::paper_rows(case);
        assert_eq!(got, expected, "Table 1 case {} diverged from the paper", case + 1);
    }
}

#[test]
fn table1_solutions_satisfy_all_constraints() {
    for case in 0..3 {
        let problem = table1::case_problem(case);
        let solution = gso_simulcast::algo::solver::solve(&problem, &Default::default());
        solution.validate(&problem).unwrap();
        // Uplink discipline: nobody exceeds their budget.
        for client in problem.clients() {
            assert!(solution.publish_rate(client.id) <= client.uplink);
            assert!(solution.receive_rate(client.id) <= client.downlink);
        }
    }
}

#[test]
fn table1_is_deterministic() {
    for case in 0..3 {
        assert_eq!(table1::solve_case(case), table1::solve_case(case));
    }
}
