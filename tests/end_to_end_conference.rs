//! Full-stack integration: clients, accessing node, conference node and
//! controller wired over the packet simulator. Exercises the complete
//! control loop of the paper: SDP-style join → SEMB/downlink reports →
//! Knapsack-Merge-Reduction → GTMB/GTBN → selective forwarding → playback.

use gso_simulcast::algo::Resolution;
use gso_simulcast::sim::workloads::ladder_for_mode;
use gso_simulcast::sim::{ClientScenario, PolicyMode, Scenario};
use gso_simulcast::util::{Bitrate, ClientId, SimDuration, SimTime};

fn meeting(mode: PolicyMode, n: u32, seed: u64, secs: u64) -> Scenario {
    let ladder = ladder_for_mode(mode);
    let clients = (1..=n)
        .map(|i| {
            ClientScenario::clean(
                ClientId(i),
                Bitrate::from_mbps(4),
                Bitrate::from_mbps(4),
                ladder.clone(),
            )
        })
        .collect();
    let mut s = Scenario {
        seed,
        mode,
        duration: SimDuration::from_secs(secs),
        clients,
        speaker_schedule: Vec::new(),
        standby: false,
    };
    s.subscribe_all_to_all(Resolution::R720);
    s
}

#[test]
fn gso_four_party_healthy_end_to_end() {
    let r = meeting(PolicyMode::Gso, 4, 100, 30).run();
    for (id, m) in &r.per_client {
        assert!(m.framerate > 12.0, "{id}: framerate {}", m.framerate);
        assert!(m.video_stall < 0.15, "{id}: video stall {}", m.video_stall);
        assert!(m.voice_stall < 0.1, "{id}: voice stall {}", m.voice_stall);
        assert!(m.quality > 25.0, "{id}: quality {}", m.quality);
    }
    // Controller ran at the production cadence throughout.
    assert!(r.controller_intervals.len() >= 5);
    for d in &r.controller_intervals {
        assert!(*d >= SimDuration::from_secs(1));
        assert!(*d <= SimDuration::from_millis(3_200));
    }
}

#[test]
fn gso_never_overruns_subscriber_downlinks() {
    // A meeting with one very slow subscriber: the controller must keep the
    // aggregate delivered rate under that client's downlink.
    let mut s = meeting(PolicyMode::Gso, 3, 7, 30);
    s.clients[2].downlink = gso_simulcast::net::LinkConfig::clean(
        Bitrate::from_kbps(700),
        SimDuration::from_millis(20),
    );
    let r = s.run();
    let slow = ClientId(3);
    // Steady-state receive rate stays within the physical link.
    let late = r.recv_series[&slow]
        .window_mean(SimTime::from_secs(15), SimTime::from_secs(30))
        .unwrap_or(0.0);
    assert!(late < 700_000.0 * 1.05, "slow client received {late} bps");
    assert!(late > 100_000.0, "slow client starved: {late} bps");
    // And the fast clients are not dragged down to the slow one's level —
    // the slow-link problem (Fig. 2a) that Simulcast exists to solve.
    let fast = r.recv_series[&ClientId(1)]
        .window_mean(SimTime::from_secs(15), SimTime::from_secs(30))
        .unwrap_or(0.0);
    assert!(fast > 2.0 * late, "fast client {fast} vs slow {late}");
}

#[test]
fn baselines_run_end_to_end_too() {
    for mode in [PolicyMode::NonGso, PolicyMode::Competitor1, PolicyMode::Competitor2] {
        let r = meeting(mode, 3, 11, 20).run();
        let fr = r.mean_framerate();
        assert!(fr > 5.0, "{mode:?}: framerate {fr}");
        assert!(r.controller_intervals.is_empty(), "{mode:?} must not use the controller");
    }
}

#[test]
fn full_stack_is_deterministic() {
    let a = meeting(PolicyMode::Gso, 3, 1234, 15).run();
    let b = meeting(PolicyMode::Gso, 3, 1234, 15).run();
    for id in a.recv_series.keys() {
        assert_eq!(a.recv_series[id].points(), b.recv_series[id].points());
    }
    assert_eq!(a.controller_intervals, b.controller_intervals);
}

#[test]
fn different_seeds_differ() {
    let a = meeting(PolicyMode::Gso, 3, 1, 15).run();
    let b = meeting(PolicyMode::Gso, 3, 2, 15).run();
    let pa = a.recv_series[&ClientId(1)].points();
    let pb = b.recv_series[&ClientId(1)].points();
    assert!(pa != pb, "different seeds should perturb the packet trace");
}
