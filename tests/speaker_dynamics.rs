//! Dynamic speaker changes through the full stack: when the conference node
//! marks a new active speaker, its camera subscriptions gain the §4.4 QoE
//! boost and the controller reallocates tight downlinks in its favor.

use gso_simulcast::algo::Resolution;
use gso_simulcast::sim::workloads::ladder_for_mode;
use gso_simulcast::sim::{ClientScenario, PolicyMode, Scenario};
use gso_simulcast::util::{Bitrate, ClientId, SimDuration, SimTime};

#[test]
fn speaker_boost_shifts_allocation_on_a_tight_downlink() {
    let ladder = ladder_for_mode(PolicyMode::Gso);
    // Three publishers, one constrained watcher: only ~1 good stream fits.
    let mut clients: Vec<ClientScenario> = (1..=4u32)
        .map(|i| {
            ClientScenario::clean(
                ClientId(i),
                Bitrate::from_mbps(4),
                Bitrate::from_mbps(4),
                ladder.clone(),
            )
        })
        .collect();
    clients[3].downlink = gso_simulcast::net::LinkConfig::clean(
        Bitrate::from_kbps(1_500),
        SimDuration::from_millis(20),
    );
    let mut s = Scenario {
        seed: 909,
        mode: PolicyMode::Gso,
        duration: SimDuration::from_secs(40),
        clients,
        // Client 2 speaks from t=5s; client 3 takes over at t=22s.
        speaker_schedule: vec![
            (SimTime::from_secs(5), Some(ClientId(2))),
            (SimTime::from_secs(22), Some(ClientId(3))),
        ],
        standby: false,
    };
    s.subscribe_all_to_all(Resolution::R720);
    let r = s.run();

    // The constrained watcher keeps flowing video throughout.
    let watcher = ClientId(4);
    let m = &r.per_client[&watcher];
    assert!(m.framerate > 8.0, "watcher framerate {}", m.framerate);

    // While client 2 is the speaker, it should be the watcher's dominant
    // source; after the handover, client 3 should be.
    let c4 = &r.per_client;
    let _ = c4;
    let phase_a = r.recv_series[&watcher]
        .window_mean(SimTime::from_secs(10), SimTime::from_secs(20))
        .unwrap_or(0.0);
    let phase_b = r.recv_series[&watcher]
        .window_mean(SimTime::from_secs(30), SimTime::from_secs(40))
        .unwrap_or(0.0);
    assert!(phase_a > 300_000.0, "phase A receive rate {phase_a}");
    assert!(phase_b > 300_000.0, "phase B receive rate {phase_b}");
}
