//! GSO-Simulcast — a from-scratch Rust reproduction of
//! *"GSO-Simulcast: Global Stream Orchestration in Simulcast Video
//! Conferencing Systems"* (SIGCOMM '22).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`algo`] — the Knapsack–Merge–Reduction control algorithm (the paper's
//!   core contribution), exact brute-force baseline, ladders and QoE model.
//! * [`audit`] — static constraint-invariant auditor for solutions, wired
//!   into debug builds at the solver, controller and SFU trust boundaries.
//! * [`rtp`] — RTP/RTCP wire formats including the paper's SEMB and
//!   orchestration TMMBR/TMMBN (GTMB/GTBN) messages.
//! * [`net`] — deterministic discrete-event packet network simulator.
//! * [`media`] — simulcast encoders, packetization, receive pipeline, and
//!   the paper's stall/framerate/quality metrics.
//! * [`bwe`] — GCC-style sender-side bandwidth estimation with probing.
//! * [`sfu`] — selective-forwarding building blocks and baseline policies.
//! * [`control`] — conference node, GSO controller, feedback execution.
//! * [`sim`] — the full-system harness and the per-figure experiment
//!   drivers.
//! * [`telemetry`] — deterministic per-conference metrics/event registry
//!   with stable JSON export.
//! * [`util`] — simulated time, bitrates, deterministic RNG, statistics.
//!
//! See `examples/quickstart.rs` for a three-line tour, and the
//! `crates/bench` targets for the regeneration of every table and figure in
//! the paper's evaluation.

pub use gso_algo as algo;
pub use gso_audit as audit;
pub use gso_bwe as bwe;
pub use gso_control as control;
pub use gso_media as media;
pub use gso_net as net;
pub use gso_rtp as rtp;
pub use gso_sfu as sfu;
pub use gso_sim as sim;
pub use gso_telemetry as telemetry;
pub use gso_util as util;
