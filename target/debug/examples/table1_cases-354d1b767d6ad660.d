/root/repo/target/debug/examples/table1_cases-354d1b767d6ad660.d: examples/table1_cases.rs

/root/repo/target/debug/examples/table1_cases-354d1b767d6ad660: examples/table1_cases.rs

examples/table1_cases.rs:
