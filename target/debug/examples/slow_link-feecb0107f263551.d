/root/repo/target/debug/examples/slow_link-feecb0107f263551.d: examples/slow_link.rs

/root/repo/target/debug/examples/slow_link-feecb0107f263551: examples/slow_link.rs

examples/slow_link.rs:
