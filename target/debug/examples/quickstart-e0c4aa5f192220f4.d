/root/repo/target/debug/examples/quickstart-e0c4aa5f192220f4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e0c4aa5f192220f4: examples/quickstart.rs

examples/quickstart.rs:
