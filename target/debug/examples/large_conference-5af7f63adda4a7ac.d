/root/repo/target/debug/examples/large_conference-5af7f63adda4a7ac.d: examples/large_conference.rs Cargo.toml

/root/repo/target/debug/examples/liblarge_conference-5af7f63adda4a7ac.rmeta: examples/large_conference.rs Cargo.toml

examples/large_conference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
