/root/repo/target/debug/examples/table1_cases-2d94e0707a5c6036.d: examples/table1_cases.rs Cargo.toml

/root/repo/target/debug/examples/libtable1_cases-2d94e0707a5c6036.rmeta: examples/table1_cases.rs Cargo.toml

examples/table1_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
