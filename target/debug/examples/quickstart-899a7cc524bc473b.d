/root/repo/target/debug/examples/quickstart-899a7cc524bc473b.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-899a7cc524bc473b.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
