/root/repo/target/debug/examples/transient_response-3dcdc398d1a0178d.d: examples/transient_response.rs

/root/repo/target/debug/examples/transient_response-3dcdc398d1a0178d: examples/transient_response.rs

examples/transient_response.rs:
