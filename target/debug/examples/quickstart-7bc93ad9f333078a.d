/root/repo/target/debug/examples/quickstart-7bc93ad9f333078a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7bc93ad9f333078a: examples/quickstart.rs

examples/quickstart.rs:
