/root/repo/target/debug/examples/table1_cases-7e9b893cce9a3d86.d: examples/table1_cases.rs

/root/repo/target/debug/examples/table1_cases-7e9b893cce9a3d86: examples/table1_cases.rs

examples/table1_cases.rs:
