/root/repo/target/debug/examples/large_conference-96818fdbad2fe3e1.d: examples/large_conference.rs

/root/repo/target/debug/examples/large_conference-96818fdbad2fe3e1: examples/large_conference.rs

examples/large_conference.rs:
