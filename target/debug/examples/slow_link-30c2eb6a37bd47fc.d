/root/repo/target/debug/examples/slow_link-30c2eb6a37bd47fc.d: examples/slow_link.rs

/root/repo/target/debug/examples/slow_link-30c2eb6a37bd47fc: examples/slow_link.rs

examples/slow_link.rs:
