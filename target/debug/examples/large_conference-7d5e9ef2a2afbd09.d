/root/repo/target/debug/examples/large_conference-7d5e9ef2a2afbd09.d: examples/large_conference.rs

/root/repo/target/debug/examples/large_conference-7d5e9ef2a2afbd09: examples/large_conference.rs

examples/large_conference.rs:
