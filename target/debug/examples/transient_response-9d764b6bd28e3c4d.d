/root/repo/target/debug/examples/transient_response-9d764b6bd28e3c4d.d: examples/transient_response.rs Cargo.toml

/root/repo/target/debug/examples/libtransient_response-9d764b6bd28e3c4d.rmeta: examples/transient_response.rs Cargo.toml

examples/transient_response.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
