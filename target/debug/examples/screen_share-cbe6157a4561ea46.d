/root/repo/target/debug/examples/screen_share-cbe6157a4561ea46.d: examples/screen_share.rs Cargo.toml

/root/repo/target/debug/examples/libscreen_share-cbe6157a4561ea46.rmeta: examples/screen_share.rs Cargo.toml

examples/screen_share.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
