/root/repo/target/debug/examples/transient_response-515b5a0763c63897.d: examples/transient_response.rs

/root/repo/target/debug/examples/transient_response-515b5a0763c63897: examples/transient_response.rs

examples/transient_response.rs:
