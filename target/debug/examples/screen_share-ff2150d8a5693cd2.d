/root/repo/target/debug/examples/screen_share-ff2150d8a5693cd2.d: examples/screen_share.rs

/root/repo/target/debug/examples/screen_share-ff2150d8a5693cd2: examples/screen_share.rs

examples/screen_share.rs:
