/root/repo/target/debug/examples/audit_probe_scratch-09a9f7aeff7ac25d.d: examples/audit_probe_scratch.rs

/root/repo/target/debug/examples/audit_probe_scratch-09a9f7aeff7ac25d: examples/audit_probe_scratch.rs

examples/audit_probe_scratch.rs:
