/root/repo/target/debug/examples/slow_link-7ebb33908eaeb0f9.d: examples/slow_link.rs Cargo.toml

/root/repo/target/debug/examples/libslow_link-7ebb33908eaeb0f9.rmeta: examples/slow_link.rs Cargo.toml

examples/slow_link.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
