/root/repo/target/debug/examples/screen_share-edf2cf560533e53d.d: examples/screen_share.rs

/root/repo/target/debug/examples/screen_share-edf2cf560533e53d: examples/screen_share.rs

examples/screen_share.rs:
