/root/repo/target/debug/deps/serde_derive-ab97b9542a2800cf.d: shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-ab97b9542a2800cf.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
