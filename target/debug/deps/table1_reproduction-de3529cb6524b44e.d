/root/repo/target/debug/deps/table1_reproduction-de3529cb6524b44e.d: tests/table1_reproduction.rs

/root/repo/target/debug/deps/table1_reproduction-de3529cb6524b44e: tests/table1_reproduction.rs

tests/table1_reproduction.rs:
