/root/repo/target/debug/deps/gso_algo-9d83cc801e4c6e6e.d: crates/algo/src/lib.rs crates/algo/src/brute.rs crates/algo/src/diff.rs crates/algo/src/ladders.rs crates/algo/src/mckp.rs crates/algo/src/problem.rs crates/algo/src/qoe.rs crates/algo/src/solution.rs crates/algo/src/solver.rs crates/algo/src/types.rs

/root/repo/target/debug/deps/libgso_algo-9d83cc801e4c6e6e.rlib: crates/algo/src/lib.rs crates/algo/src/brute.rs crates/algo/src/diff.rs crates/algo/src/ladders.rs crates/algo/src/mckp.rs crates/algo/src/problem.rs crates/algo/src/qoe.rs crates/algo/src/solution.rs crates/algo/src/solver.rs crates/algo/src/types.rs

/root/repo/target/debug/deps/libgso_algo-9d83cc801e4c6e6e.rmeta: crates/algo/src/lib.rs crates/algo/src/brute.rs crates/algo/src/diff.rs crates/algo/src/ladders.rs crates/algo/src/mckp.rs crates/algo/src/problem.rs crates/algo/src/qoe.rs crates/algo/src/solution.rs crates/algo/src/solver.rs crates/algo/src/types.rs

crates/algo/src/lib.rs:
crates/algo/src/brute.rs:
crates/algo/src/diff.rs:
crates/algo/src/ladders.rs:
crates/algo/src/mckp.rs:
crates/algo/src/problem.rs:
crates/algo/src/qoe.rs:
crates/algo/src/solution.rs:
crates/algo/src/solver.rs:
crates/algo/src/types.rs:
