/root/repo/target/debug/deps/gso_rtp-05cea22ca34a69a3.d: crates/rtp/src/lib.rs crates/rtp/src/app.rs crates/rtp/src/compound.rs crates/rtp/src/error.rs crates/rtp/src/feedback.rs crates/rtp/src/header.rs crates/rtp/src/mantissa.rs crates/rtp/src/report.rs crates/rtp/src/ssrc_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libgso_rtp-05cea22ca34a69a3.rmeta: crates/rtp/src/lib.rs crates/rtp/src/app.rs crates/rtp/src/compound.rs crates/rtp/src/error.rs crates/rtp/src/feedback.rs crates/rtp/src/header.rs crates/rtp/src/mantissa.rs crates/rtp/src/report.rs crates/rtp/src/ssrc_alloc.rs Cargo.toml

crates/rtp/src/lib.rs:
crates/rtp/src/app.rs:
crates/rtp/src/compound.rs:
crates/rtp/src/error.rs:
crates/rtp/src/feedback.rs:
crates/rtp/src/header.rs:
crates/rtp/src/mantissa.rs:
crates/rtp/src/report.rs:
crates/rtp/src/ssrc_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
