/root/repo/target/debug/deps/gso_sfu-c3238cf5e2b197a8.d: crates/sfu/src/lib.rs crates/sfu/src/relay.rs crates/sfu/src/selector.rs crates/sfu/src/switcher.rs crates/sfu/src/template.rs

/root/repo/target/debug/deps/libgso_sfu-c3238cf5e2b197a8.rlib: crates/sfu/src/lib.rs crates/sfu/src/relay.rs crates/sfu/src/selector.rs crates/sfu/src/switcher.rs crates/sfu/src/template.rs

/root/repo/target/debug/deps/libgso_sfu-c3238cf5e2b197a8.rmeta: crates/sfu/src/lib.rs crates/sfu/src/relay.rs crates/sfu/src/selector.rs crates/sfu/src/switcher.rs crates/sfu/src/template.rs

crates/sfu/src/lib.rs:
crates/sfu/src/relay.rs:
crates/sfu/src/selector.rs:
crates/sfu/src/switcher.rs:
crates/sfu/src/template.rs:
