/root/repo/target/debug/deps/gso_simulcast-ff777984e43cb3fa.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgso_simulcast-ff777984e43cb3fa.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
