/root/repo/target/debug/deps/speaker_dynamics-515b800146eea61f.d: tests/speaker_dynamics.rs

/root/repo/target/debug/deps/speaker_dynamics-515b800146eea61f: tests/speaker_dynamics.rs

tests/speaker_dynamics.rs:
