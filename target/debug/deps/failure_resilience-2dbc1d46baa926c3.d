/root/repo/target/debug/deps/failure_resilience-2dbc1d46baa926c3.d: tests/failure_resilience.rs

/root/repo/target/debug/deps/failure_resilience-2dbc1d46baa926c3: tests/failure_resilience.rs

tests/failure_resilience.rs:
