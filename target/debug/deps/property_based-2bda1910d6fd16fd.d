/root/repo/target/debug/deps/property_based-2bda1910d6fd16fd.d: tests/property_based.rs

/root/repo/target/debug/deps/property_based-2bda1910d6fd16fd: tests/property_based.rs

tests/property_based.rs:
