/root/repo/target/debug/deps/speaker_dynamics-3417729a1b329b22.d: tests/speaker_dynamics.rs Cargo.toml

/root/repo/target/debug/deps/libspeaker_dynamics-3417729a1b329b22.rmeta: tests/speaker_dynamics.rs Cargo.toml

tests/speaker_dynamics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
