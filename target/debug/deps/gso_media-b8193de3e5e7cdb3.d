/root/repo/target/debug/deps/gso_media-b8193de3e5e7cdb3.d: crates/media/src/lib.rs crates/media/src/audio.rs crates/media/src/cost.rs crates/media/src/encoder.rs crates/media/src/frame.rs crates/media/src/metrics.rs crates/media/src/quality.rs crates/media/src/receiver.rs

/root/repo/target/debug/deps/libgso_media-b8193de3e5e7cdb3.rlib: crates/media/src/lib.rs crates/media/src/audio.rs crates/media/src/cost.rs crates/media/src/encoder.rs crates/media/src/frame.rs crates/media/src/metrics.rs crates/media/src/quality.rs crates/media/src/receiver.rs

/root/repo/target/debug/deps/libgso_media-b8193de3e5e7cdb3.rmeta: crates/media/src/lib.rs crates/media/src/audio.rs crates/media/src/cost.rs crates/media/src/encoder.rs crates/media/src/frame.rs crates/media/src/metrics.rs crates/media/src/quality.rs crates/media/src/receiver.rs

crates/media/src/lib.rs:
crates/media/src/audio.rs:
crates/media/src/cost.rs:
crates/media/src/encoder.rs:
crates/media/src/frame.rs:
crates/media/src/metrics.rs:
crates/media/src/quality.rs:
crates/media/src/receiver.rs:
