/root/repo/target/debug/deps/gso_audit-54f52798729c2cc3.d: crates/audit/src/lib.rs crates/audit/src/scenarios.rs

/root/repo/target/debug/deps/libgso_audit-54f52798729c2cc3.rlib: crates/audit/src/lib.rs crates/audit/src/scenarios.rs

/root/repo/target/debug/deps/libgso_audit-54f52798729c2cc3.rmeta: crates/audit/src/lib.rs crates/audit/src/scenarios.rs

crates/audit/src/lib.rs:
crates/audit/src/scenarios.rs:
