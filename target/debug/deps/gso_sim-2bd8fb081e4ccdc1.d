/root/repo/target/debug/deps/gso_sim-2bd8fb081e4ccdc1.d: crates/sim/src/lib.rs crates/sim/src/access.rs crates/sim/src/client.rs crates/sim/src/conference.rs crates/sim/src/ctrl.rs crates/sim/src/deployment.rs crates/sim/src/experiments/mod.rs crates/sim/src/experiments/fig12.rs crates/sim/src/experiments/fig6.rs crates/sim/src/experiments/fig7.rs crates/sim/src/experiments/fig8.rs crates/sim/src/experiments/fig9.rs crates/sim/src/experiments/table1.rs crates/sim/src/scenario.rs crates/sim/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libgso_sim-2bd8fb081e4ccdc1.rmeta: crates/sim/src/lib.rs crates/sim/src/access.rs crates/sim/src/client.rs crates/sim/src/conference.rs crates/sim/src/ctrl.rs crates/sim/src/deployment.rs crates/sim/src/experiments/mod.rs crates/sim/src/experiments/fig12.rs crates/sim/src/experiments/fig6.rs crates/sim/src/experiments/fig7.rs crates/sim/src/experiments/fig8.rs crates/sim/src/experiments/fig9.rs crates/sim/src/experiments/table1.rs crates/sim/src/scenario.rs crates/sim/src/workloads.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/access.rs:
crates/sim/src/client.rs:
crates/sim/src/conference.rs:
crates/sim/src/ctrl.rs:
crates/sim/src/deployment.rs:
crates/sim/src/experiments/mod.rs:
crates/sim/src/experiments/fig12.rs:
crates/sim/src/experiments/fig6.rs:
crates/sim/src/experiments/fig7.rs:
crates/sim/src/experiments/fig8.rs:
crates/sim/src/experiments/fig9.rs:
crates/sim/src/experiments/table1.rs:
crates/sim/src/scenario.rs:
crates/sim/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
