/root/repo/target/debug/deps/gso_bench-e588d291501e86bb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/gso_bench-e588d291501e86bb: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
