/root/repo/target/debug/deps/gso_media-d57005ddb6702016.d: crates/media/src/lib.rs crates/media/src/audio.rs crates/media/src/cost.rs crates/media/src/encoder.rs crates/media/src/frame.rs crates/media/src/metrics.rs crates/media/src/quality.rs crates/media/src/receiver.rs Cargo.toml

/root/repo/target/debug/deps/libgso_media-d57005ddb6702016.rmeta: crates/media/src/lib.rs crates/media/src/audio.rs crates/media/src/cost.rs crates/media/src/encoder.rs crates/media/src/frame.rs crates/media/src/metrics.rs crates/media/src/quality.rs crates/media/src/receiver.rs Cargo.toml

crates/media/src/lib.rs:
crates/media/src/audio.rs:
crates/media/src/cost.rs:
crates/media/src/encoder.rs:
crates/media/src/frame.rs:
crates/media/src/metrics.rs:
crates/media/src/quality.rs:
crates/media/src/receiver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
