/root/repo/target/debug/deps/end_to_end_conference-62d03d3e816562fb.d: tests/end_to_end_conference.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_conference-62d03d3e816562fb.rmeta: tests/end_to_end_conference.rs Cargo.toml

tests/end_to_end_conference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
