/root/repo/target/debug/deps/deployment_headline-8aa064e520ca722f.d: tests/deployment_headline.rs

/root/repo/target/debug/deps/deployment_headline-8aa064e520ca722f: tests/deployment_headline.rs

tests/deployment_headline.rs:
