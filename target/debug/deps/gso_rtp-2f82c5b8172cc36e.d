/root/repo/target/debug/deps/gso_rtp-2f82c5b8172cc36e.d: crates/rtp/src/lib.rs crates/rtp/src/app.rs crates/rtp/src/compound.rs crates/rtp/src/error.rs crates/rtp/src/feedback.rs crates/rtp/src/header.rs crates/rtp/src/mantissa.rs crates/rtp/src/report.rs crates/rtp/src/ssrc_alloc.rs

/root/repo/target/debug/deps/libgso_rtp-2f82c5b8172cc36e.rlib: crates/rtp/src/lib.rs crates/rtp/src/app.rs crates/rtp/src/compound.rs crates/rtp/src/error.rs crates/rtp/src/feedback.rs crates/rtp/src/header.rs crates/rtp/src/mantissa.rs crates/rtp/src/report.rs crates/rtp/src/ssrc_alloc.rs

/root/repo/target/debug/deps/libgso_rtp-2f82c5b8172cc36e.rmeta: crates/rtp/src/lib.rs crates/rtp/src/app.rs crates/rtp/src/compound.rs crates/rtp/src/error.rs crates/rtp/src/feedback.rs crates/rtp/src/header.rs crates/rtp/src/mantissa.rs crates/rtp/src/report.rs crates/rtp/src/ssrc_alloc.rs

crates/rtp/src/lib.rs:
crates/rtp/src/app.rs:
crates/rtp/src/compound.rs:
crates/rtp/src/error.rs:
crates/rtp/src/feedback.rs:
crates/rtp/src/header.rs:
crates/rtp/src/mantissa.rs:
crates/rtp/src/report.rs:
crates/rtp/src/ssrc_alloc.rs:
