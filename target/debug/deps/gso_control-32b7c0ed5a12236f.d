/root/repo/target/debug/deps/gso_control-32b7c0ed5a12236f.d: crates/control/src/lib.rs crates/control/src/controller.rs crates/control/src/failure.rs crates/control/src/feedback.rs crates/control/src/hysteresis.rs crates/control/src/scheduler.rs crates/control/src/sdp.rs crates/control/src/state.rs

/root/repo/target/debug/deps/libgso_control-32b7c0ed5a12236f.rlib: crates/control/src/lib.rs crates/control/src/controller.rs crates/control/src/failure.rs crates/control/src/feedback.rs crates/control/src/hysteresis.rs crates/control/src/scheduler.rs crates/control/src/sdp.rs crates/control/src/state.rs

/root/repo/target/debug/deps/libgso_control-32b7c0ed5a12236f.rmeta: crates/control/src/lib.rs crates/control/src/controller.rs crates/control/src/failure.rs crates/control/src/feedback.rs crates/control/src/hysteresis.rs crates/control/src/scheduler.rs crates/control/src/sdp.rs crates/control/src/state.rs

crates/control/src/lib.rs:
crates/control/src/controller.rs:
crates/control/src/failure.rs:
crates/control/src/feedback.rs:
crates/control/src/hysteresis.rs:
crates/control/src/scheduler.rs:
crates/control/src/sdp.rs:
crates/control/src/state.rs:
