/root/repo/target/debug/deps/gso_simulcast-2daf9f3a2f3e08bb.d: src/lib.rs

/root/repo/target/debug/deps/gso_simulcast-2daf9f3a2f3e08bb: src/lib.rs

src/lib.rs:
