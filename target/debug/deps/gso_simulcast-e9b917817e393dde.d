/root/repo/target/debug/deps/gso_simulcast-e9b917817e393dde.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgso_simulcast-e9b917817e393dde.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
