/root/repo/target/debug/deps/gso_simulcast-e9b917817e393dde.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgso_simulcast-e9b917817e393dde.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
