/root/repo/target/debug/deps/gso_rtp-258cb7ccc0cad1e2.d: crates/rtp/src/lib.rs crates/rtp/src/app.rs crates/rtp/src/compound.rs crates/rtp/src/error.rs crates/rtp/src/feedback.rs crates/rtp/src/header.rs crates/rtp/src/mantissa.rs crates/rtp/src/report.rs crates/rtp/src/ssrc_alloc.rs

/root/repo/target/debug/deps/gso_rtp-258cb7ccc0cad1e2: crates/rtp/src/lib.rs crates/rtp/src/app.rs crates/rtp/src/compound.rs crates/rtp/src/error.rs crates/rtp/src/feedback.rs crates/rtp/src/header.rs crates/rtp/src/mantissa.rs crates/rtp/src/report.rs crates/rtp/src/ssrc_alloc.rs

crates/rtp/src/lib.rs:
crates/rtp/src/app.rs:
crates/rtp/src/compound.rs:
crates/rtp/src/error.rs:
crates/rtp/src/feedback.rs:
crates/rtp/src/header.rs:
crates/rtp/src/mantissa.rs:
crates/rtp/src/report.rs:
crates/rtp/src/ssrc_alloc.rs:
