/root/repo/target/debug/deps/audit-6f6f6a9124450515.d: crates/audit/src/bin/audit.rs

/root/repo/target/debug/deps/audit-6f6f6a9124450515: crates/audit/src/bin/audit.rs

crates/audit/src/bin/audit.rs:
