/root/repo/target/debug/deps/protocol_pipeline-ee4747d5c8918af1.d: tests/protocol_pipeline.rs

/root/repo/target/debug/deps/protocol_pipeline-ee4747d5c8918af1: tests/protocol_pipeline.rs

tests/protocol_pipeline.rs:
