/root/repo/target/debug/deps/gso_bench-dc391f7dc39e492d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgso_bench-dc391f7dc39e492d.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgso_bench-dc391f7dc39e492d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
