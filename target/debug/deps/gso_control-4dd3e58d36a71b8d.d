/root/repo/target/debug/deps/gso_control-4dd3e58d36a71b8d.d: crates/control/src/lib.rs crates/control/src/controller.rs crates/control/src/failure.rs crates/control/src/feedback.rs crates/control/src/hysteresis.rs crates/control/src/scheduler.rs crates/control/src/sdp.rs crates/control/src/state.rs

/root/repo/target/debug/deps/libgso_control-4dd3e58d36a71b8d.rlib: crates/control/src/lib.rs crates/control/src/controller.rs crates/control/src/failure.rs crates/control/src/feedback.rs crates/control/src/hysteresis.rs crates/control/src/scheduler.rs crates/control/src/sdp.rs crates/control/src/state.rs

/root/repo/target/debug/deps/libgso_control-4dd3e58d36a71b8d.rmeta: crates/control/src/lib.rs crates/control/src/controller.rs crates/control/src/failure.rs crates/control/src/feedback.rs crates/control/src/hysteresis.rs crates/control/src/scheduler.rs crates/control/src/sdp.rs crates/control/src/state.rs

crates/control/src/lib.rs:
crates/control/src/controller.rs:
crates/control/src/failure.rs:
crates/control/src/feedback.rs:
crates/control/src/hysteresis.rs:
crates/control/src/scheduler.rs:
crates/control/src/sdp.rs:
crates/control/src/state.rs:
