/root/repo/target/debug/deps/table1_reproduction-9e15452d7eb504bc.d: tests/table1_reproduction.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_reproduction-9e15452d7eb504bc.rmeta: tests/table1_reproduction.rs Cargo.toml

tests/table1_reproduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
