/root/repo/target/debug/deps/solver_vs_brute-ce6ff41a146af18b.d: crates/audit/tests/solver_vs_brute.rs

/root/repo/target/debug/deps/solver_vs_brute-ce6ff41a146af18b: crates/audit/tests/solver_vs_brute.rs

crates/audit/tests/solver_vs_brute.rs:
