/root/repo/target/debug/deps/table1-507e1bfaba4510be.d: crates/bench/benches/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-507e1bfaba4510be.rmeta: crates/bench/benches/table1.rs Cargo.toml

crates/bench/benches/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
