/root/repo/target/debug/deps/gso_net-f8a961ec1d598b48.d: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/node.rs crates/net/src/pacer.rs crates/net/src/sim.rs

/root/repo/target/debug/deps/libgso_net-f8a961ec1d598b48.rlib: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/node.rs crates/net/src/pacer.rs crates/net/src/sim.rs

/root/repo/target/debug/deps/libgso_net-f8a961ec1d598b48.rmeta: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/node.rs crates/net/src/pacer.rs crates/net/src/sim.rs

crates/net/src/lib.rs:
crates/net/src/link.rs:
crates/net/src/node.rs:
crates/net/src/pacer.rs:
crates/net/src/sim.rs:
