/root/repo/target/debug/deps/table1_reproduction-b902134704e47e8c.d: tests/table1_reproduction.rs

/root/repo/target/debug/deps/table1_reproduction-b902134704e47e8c: tests/table1_reproduction.rs

tests/table1_reproduction.rs:
