/root/repo/target/debug/deps/audit-9d05fba111539c4c.d: crates/audit/src/bin/audit.rs

/root/repo/target/debug/deps/audit-9d05fba111539c4c: crates/audit/src/bin/audit.rs

crates/audit/src/bin/audit.rs:
