/root/repo/target/debug/deps/gso_util-e00b8962ad358b77.d: crates/util/src/lib.rs crates/util/src/bitrate.rs crates/util/src/ewma.rs crates/util/src/ids.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/time.rs

/root/repo/target/debug/deps/gso_util-e00b8962ad358b77: crates/util/src/lib.rs crates/util/src/bitrate.rs crates/util/src/ewma.rs crates/util/src/ids.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/time.rs

crates/util/src/lib.rs:
crates/util/src/bitrate.rs:
crates/util/src/ewma.rs:
crates/util/src/ids.rs:
crates/util/src/rng.rs:
crates/util/src/stats.rs:
crates/util/src/time.rs:
