/root/repo/target/debug/deps/end_to_end_conference-b7226f4661d8b4ce.d: tests/end_to_end_conference.rs

/root/repo/target/debug/deps/end_to_end_conference-b7226f4661d8b4ce: tests/end_to_end_conference.rs

tests/end_to_end_conference.rs:
