/root/repo/target/debug/deps/fig6c-25547065b55e41bf.d: crates/bench/benches/fig6c.rs Cargo.toml

/root/repo/target/debug/deps/libfig6c-25547065b55e41bf.rmeta: crates/bench/benches/fig6c.rs Cargo.toml

crates/bench/benches/fig6c.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
