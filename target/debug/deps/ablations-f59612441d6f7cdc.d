/root/repo/target/debug/deps/ablations-f59612441d6f7cdc.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-f59612441d6f7cdc.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
