/root/repo/target/debug/deps/fig6b-aa155d7cdf2cc4a9.d: crates/bench/benches/fig6b.rs Cargo.toml

/root/repo/target/debug/deps/libfig6b-aa155d7cdf2cc4a9.rmeta: crates/bench/benches/fig6b.rs Cargo.toml

crates/bench/benches/fig6b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
