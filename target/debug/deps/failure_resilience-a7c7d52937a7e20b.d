/root/repo/target/debug/deps/failure_resilience-a7c7d52937a7e20b.d: tests/failure_resilience.rs

/root/repo/target/debug/deps/failure_resilience-a7c7d52937a7e20b: tests/failure_resilience.rs

tests/failure_resilience.rs:
