/root/repo/target/debug/deps/gso_sim-cce07e80d5d6aaa8.d: crates/sim/src/lib.rs crates/sim/src/access.rs crates/sim/src/client.rs crates/sim/src/conference.rs crates/sim/src/ctrl.rs crates/sim/src/deployment.rs crates/sim/src/experiments/mod.rs crates/sim/src/experiments/fig12.rs crates/sim/src/experiments/fig6.rs crates/sim/src/experiments/fig7.rs crates/sim/src/experiments/fig8.rs crates/sim/src/experiments/fig9.rs crates/sim/src/experiments/table1.rs crates/sim/src/scenario.rs crates/sim/src/workloads.rs

/root/repo/target/debug/deps/gso_sim-cce07e80d5d6aaa8: crates/sim/src/lib.rs crates/sim/src/access.rs crates/sim/src/client.rs crates/sim/src/conference.rs crates/sim/src/ctrl.rs crates/sim/src/deployment.rs crates/sim/src/experiments/mod.rs crates/sim/src/experiments/fig12.rs crates/sim/src/experiments/fig6.rs crates/sim/src/experiments/fig7.rs crates/sim/src/experiments/fig8.rs crates/sim/src/experiments/fig9.rs crates/sim/src/experiments/table1.rs crates/sim/src/scenario.rs crates/sim/src/workloads.rs

crates/sim/src/lib.rs:
crates/sim/src/access.rs:
crates/sim/src/client.rs:
crates/sim/src/conference.rs:
crates/sim/src/ctrl.rs:
crates/sim/src/deployment.rs:
crates/sim/src/experiments/mod.rs:
crates/sim/src/experiments/fig12.rs:
crates/sim/src/experiments/fig6.rs:
crates/sim/src/experiments/fig7.rs:
crates/sim/src/experiments/fig8.rs:
crates/sim/src/experiments/fig9.rs:
crates/sim/src/experiments/table1.rs:
crates/sim/src/scenario.rs:
crates/sim/src/workloads.rs:
