/root/repo/target/debug/deps/gso_util-1c1cc47a980d0049.d: crates/util/src/lib.rs crates/util/src/bitrate.rs crates/util/src/ewma.rs crates/util/src/ids.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libgso_util-1c1cc47a980d0049.rmeta: crates/util/src/lib.rs crates/util/src/bitrate.rs crates/util/src/ewma.rs crates/util/src/ids.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/time.rs Cargo.toml

crates/util/src/lib.rs:
crates/util/src/bitrate.rs:
crates/util/src/ewma.rs:
crates/util/src/ids.rs:
crates/util/src/rng.rs:
crates/util/src/stats.rs:
crates/util/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
