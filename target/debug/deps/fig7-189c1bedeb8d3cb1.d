/root/repo/target/debug/deps/fig7-189c1bedeb8d3cb1.d: crates/bench/benches/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-189c1bedeb8d3cb1.rmeta: crates/bench/benches/fig7.rs Cargo.toml

crates/bench/benches/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
