/root/repo/target/debug/deps/gso_media-6204f7bbf2dc7bce.d: crates/media/src/lib.rs crates/media/src/audio.rs crates/media/src/cost.rs crates/media/src/encoder.rs crates/media/src/frame.rs crates/media/src/metrics.rs crates/media/src/quality.rs crates/media/src/receiver.rs

/root/repo/target/debug/deps/gso_media-6204f7bbf2dc7bce: crates/media/src/lib.rs crates/media/src/audio.rs crates/media/src/cost.rs crates/media/src/encoder.rs crates/media/src/frame.rs crates/media/src/metrics.rs crates/media/src/quality.rs crates/media/src/receiver.rs

crates/media/src/lib.rs:
crates/media/src/audio.rs:
crates/media/src/cost.rs:
crates/media/src/encoder.rs:
crates/media/src/frame.rs:
crates/media/src/metrics.rs:
crates/media/src/quality.rs:
crates/media/src/receiver.rs:
