/root/repo/target/debug/deps/deployment_headline-63ca1db52315b263.d: tests/deployment_headline.rs Cargo.toml

/root/repo/target/debug/deps/libdeployment_headline-63ca1db52315b263.rmeta: tests/deployment_headline.rs Cargo.toml

tests/deployment_headline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
