/root/repo/target/debug/deps/bytes-d65185dc933da8ad.d: shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-d65185dc933da8ad.rmeta: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
