/root/repo/target/debug/deps/speaker_dynamics-61ade4a42f153aae.d: tests/speaker_dynamics.rs

/root/repo/target/debug/deps/speaker_dynamics-61ade4a42f153aae: tests/speaker_dynamics.rs

tests/speaker_dynamics.rs:
