/root/repo/target/debug/deps/serde-a76d964f8a641ac0.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a76d964f8a641ac0.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a76d964f8a641ac0.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
