/root/repo/target/debug/deps/gso_net-8731046c901d12f4.d: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/node.rs crates/net/src/pacer.rs crates/net/src/sim.rs

/root/repo/target/debug/deps/gso_net-8731046c901d12f4: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/node.rs crates/net/src/pacer.rs crates/net/src/sim.rs

crates/net/src/lib.rs:
crates/net/src/link.rs:
crates/net/src/node.rs:
crates/net/src/pacer.rs:
crates/net/src/sim.rs:
