/root/repo/target/debug/deps/gso_control-c8e1e2c1e5255f9e.d: crates/control/src/lib.rs crates/control/src/controller.rs crates/control/src/failure.rs crates/control/src/feedback.rs crates/control/src/hysteresis.rs crates/control/src/scheduler.rs crates/control/src/sdp.rs crates/control/src/state.rs

/root/repo/target/debug/deps/gso_control-c8e1e2c1e5255f9e: crates/control/src/lib.rs crates/control/src/controller.rs crates/control/src/failure.rs crates/control/src/feedback.rs crates/control/src/hysteresis.rs crates/control/src/scheduler.rs crates/control/src/sdp.rs crates/control/src/state.rs

crates/control/src/lib.rs:
crates/control/src/controller.rs:
crates/control/src/failure.rs:
crates/control/src/feedback.rs:
crates/control/src/hysteresis.rs:
crates/control/src/scheduler.rs:
crates/control/src/sdp.rs:
crates/control/src/state.rs:
