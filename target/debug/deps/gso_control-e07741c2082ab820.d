/root/repo/target/debug/deps/gso_control-e07741c2082ab820.d: crates/control/src/lib.rs crates/control/src/controller.rs crates/control/src/failure.rs crates/control/src/feedback.rs crates/control/src/hysteresis.rs crates/control/src/scheduler.rs crates/control/src/sdp.rs crates/control/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libgso_control-e07741c2082ab820.rmeta: crates/control/src/lib.rs crates/control/src/controller.rs crates/control/src/failure.rs crates/control/src/feedback.rs crates/control/src/hysteresis.rs crates/control/src/scheduler.rs crates/control/src/sdp.rs crates/control/src/state.rs Cargo.toml

crates/control/src/lib.rs:
crates/control/src/controller.rs:
crates/control/src/failure.rs:
crates/control/src/feedback.rs:
crates/control/src/hysteresis.rs:
crates/control/src/scheduler.rs:
crates/control/src/sdp.rs:
crates/control/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
