/root/repo/target/debug/deps/property_based-8b7c6d34b30628f3.d: tests/property_based.rs

/root/repo/target/debug/deps/property_based-8b7c6d34b30628f3: tests/property_based.rs

tests/property_based.rs:
