/root/repo/target/debug/deps/property_based-3309f700ed230667.d: tests/property_based.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_based-3309f700ed230667.rmeta: tests/property_based.rs Cargo.toml

tests/property_based.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
