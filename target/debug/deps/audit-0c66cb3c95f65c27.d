/root/repo/target/debug/deps/audit-0c66cb3c95f65c27.d: crates/audit/src/bin/audit.rs Cargo.toml

/root/repo/target/debug/deps/libaudit-0c66cb3c95f65c27.rmeta: crates/audit/src/bin/audit.rs Cargo.toml

crates/audit/src/bin/audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
