/root/repo/target/debug/deps/deployment_headline-cba4ee7145f6a962.d: tests/deployment_headline.rs

/root/repo/target/debug/deps/deployment_headline-cba4ee7145f6a962: tests/deployment_headline.rs

tests/deployment_headline.rs:
