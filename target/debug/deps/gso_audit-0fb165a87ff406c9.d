/root/repo/target/debug/deps/gso_audit-0fb165a87ff406c9.d: crates/audit/src/lib.rs crates/audit/src/scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libgso_audit-0fb165a87ff406c9.rmeta: crates/audit/src/lib.rs crates/audit/src/scenarios.rs Cargo.toml

crates/audit/src/lib.rs:
crates/audit/src/scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
