/root/repo/target/debug/deps/failure_resilience-31650ec4146bcac7.d: tests/failure_resilience.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_resilience-31650ec4146bcac7.rmeta: tests/failure_resilience.rs Cargo.toml

tests/failure_resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
