/root/repo/target/debug/deps/gso_audit-f0b45462ff58e13a.d: crates/audit/src/lib.rs crates/audit/src/scenarios.rs crates/audit/src/tests.rs

/root/repo/target/debug/deps/gso_audit-f0b45462ff58e13a: crates/audit/src/lib.rs crates/audit/src/scenarios.rs crates/audit/src/tests.rs

crates/audit/src/lib.rs:
crates/audit/src/scenarios.rs:
crates/audit/src/tests.rs:
