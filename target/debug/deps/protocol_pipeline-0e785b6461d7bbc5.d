/root/repo/target/debug/deps/protocol_pipeline-0e785b6461d7bbc5.d: tests/protocol_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_pipeline-0e785b6461d7bbc5.rmeta: tests/protocol_pipeline.rs Cargo.toml

tests/protocol_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
