/root/repo/target/debug/deps/gso_sfu-b12a53c4ce03a0c6.d: crates/sfu/src/lib.rs crates/sfu/src/relay.rs crates/sfu/src/selector.rs crates/sfu/src/switcher.rs crates/sfu/src/template.rs

/root/repo/target/debug/deps/gso_sfu-b12a53c4ce03a0c6: crates/sfu/src/lib.rs crates/sfu/src/relay.rs crates/sfu/src/selector.rs crates/sfu/src/switcher.rs crates/sfu/src/template.rs

crates/sfu/src/lib.rs:
crates/sfu/src/relay.rs:
crates/sfu/src/selector.rs:
crates/sfu/src/switcher.rs:
crates/sfu/src/template.rs:
