/root/repo/target/debug/deps/gso_audit-2fe67bb3eebece00.d: crates/audit/src/lib.rs crates/audit/src/scenarios.rs crates/audit/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libgso_audit-2fe67bb3eebece00.rmeta: crates/audit/src/lib.rs crates/audit/src/scenarios.rs crates/audit/src/tests.rs Cargo.toml

crates/audit/src/lib.rs:
crates/audit/src/scenarios.rs:
crates/audit/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
