/root/repo/target/debug/deps/fig12-5ebbd599b977a0da.d: crates/bench/benches/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-5ebbd599b977a0da.rmeta: crates/bench/benches/fig12.rs Cargo.toml

crates/bench/benches/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
