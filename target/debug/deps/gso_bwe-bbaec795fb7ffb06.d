/root/repo/target/debug/deps/gso_bwe-bbaec795fb7ffb06.d: crates/bwe/src/lib.rs crates/bwe/src/estimator.rs crates/bwe/src/history.rs crates/bwe/src/probe.rs crates/bwe/src/semb.rs crates/bwe/src/twcc.rs Cargo.toml

/root/repo/target/debug/deps/libgso_bwe-bbaec795fb7ffb06.rmeta: crates/bwe/src/lib.rs crates/bwe/src/estimator.rs crates/bwe/src/history.rs crates/bwe/src/probe.rs crates/bwe/src/semb.rs crates/bwe/src/twcc.rs Cargo.toml

crates/bwe/src/lib.rs:
crates/bwe/src/estimator.rs:
crates/bwe/src/history.rs:
crates/bwe/src/probe.rs:
crates/bwe/src/semb.rs:
crates/bwe/src/twcc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
