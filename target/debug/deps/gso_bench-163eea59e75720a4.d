/root/repo/target/debug/deps/gso_bench-163eea59e75720a4.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgso_bench-163eea59e75720a4.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
