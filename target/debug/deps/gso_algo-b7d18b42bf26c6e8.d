/root/repo/target/debug/deps/gso_algo-b7d18b42bf26c6e8.d: crates/algo/src/lib.rs crates/algo/src/brute.rs crates/algo/src/diff.rs crates/algo/src/ladders.rs crates/algo/src/mckp.rs crates/algo/src/problem.rs crates/algo/src/qoe.rs crates/algo/src/solution.rs crates/algo/src/solver.rs crates/algo/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libgso_algo-b7d18b42bf26c6e8.rmeta: crates/algo/src/lib.rs crates/algo/src/brute.rs crates/algo/src/diff.rs crates/algo/src/ladders.rs crates/algo/src/mckp.rs crates/algo/src/problem.rs crates/algo/src/qoe.rs crates/algo/src/solution.rs crates/algo/src/solver.rs crates/algo/src/types.rs Cargo.toml

crates/algo/src/lib.rs:
crates/algo/src/brute.rs:
crates/algo/src/diff.rs:
crates/algo/src/ladders.rs:
crates/algo/src/mckp.rs:
crates/algo/src/problem.rs:
crates/algo/src/qoe.rs:
crates/algo/src/solution.rs:
crates/algo/src/solver.rs:
crates/algo/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
