/root/repo/target/debug/deps/protocol_pipeline-47d0a1519dfee05f.d: tests/protocol_pipeline.rs

/root/repo/target/debug/deps/protocol_pipeline-47d0a1519dfee05f: tests/protocol_pipeline.rs

tests/protocol_pipeline.rs:
