/root/repo/target/debug/deps/fig10-6414302543ee6418.d: crates/bench/benches/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-6414302543ee6418.rmeta: crates/bench/benches/fig10.rs Cargo.toml

crates/bench/benches/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
