/root/repo/target/debug/deps/gso_bench-f3af03ccd1ec149a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/gso_bench-f3af03ccd1ec149a: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
