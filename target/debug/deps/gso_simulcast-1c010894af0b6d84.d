/root/repo/target/debug/deps/gso_simulcast-1c010894af0b6d84.d: src/lib.rs

/root/repo/target/debug/deps/gso_simulcast-1c010894af0b6d84: src/lib.rs

src/lib.rs:
