/root/repo/target/debug/deps/fig11-4e9f2f1481007a18.d: crates/bench/benches/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-4e9f2f1481007a18.rmeta: crates/bench/benches/fig11.rs Cargo.toml

crates/bench/benches/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
