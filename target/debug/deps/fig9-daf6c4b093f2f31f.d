/root/repo/target/debug/deps/fig9-daf6c4b093f2f31f.d: crates/bench/benches/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-daf6c4b093f2f31f.rmeta: crates/bench/benches/fig9.rs Cargo.toml

crates/bench/benches/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
