/root/repo/target/debug/deps/gso_simulcast-2f90493a8e6f9092.d: src/lib.rs

/root/repo/target/debug/deps/libgso_simulcast-2f90493a8e6f9092.rlib: src/lib.rs

/root/repo/target/debug/deps/libgso_simulcast-2f90493a8e6f9092.rmeta: src/lib.rs

src/lib.rs:
