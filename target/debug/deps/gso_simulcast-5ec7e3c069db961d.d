/root/repo/target/debug/deps/gso_simulcast-5ec7e3c069db961d.d: src/lib.rs

/root/repo/target/debug/deps/libgso_simulcast-5ec7e3c069db961d.rlib: src/lib.rs

/root/repo/target/debug/deps/libgso_simulcast-5ec7e3c069db961d.rmeta: src/lib.rs

src/lib.rs:
