/root/repo/target/debug/deps/fig6a-768ea7d0c2dfe814.d: crates/bench/benches/fig6a.rs Cargo.toml

/root/repo/target/debug/deps/libfig6a-768ea7d0c2dfe814.rmeta: crates/bench/benches/fig6a.rs Cargo.toml

crates/bench/benches/fig6a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
