/root/repo/target/debug/deps/gso_bwe-db0c7de79d4f7b7d.d: crates/bwe/src/lib.rs crates/bwe/src/estimator.rs crates/bwe/src/history.rs crates/bwe/src/probe.rs crates/bwe/src/semb.rs crates/bwe/src/twcc.rs

/root/repo/target/debug/deps/gso_bwe-db0c7de79d4f7b7d: crates/bwe/src/lib.rs crates/bwe/src/estimator.rs crates/bwe/src/history.rs crates/bwe/src/probe.rs crates/bwe/src/semb.rs crates/bwe/src/twcc.rs

crates/bwe/src/lib.rs:
crates/bwe/src/estimator.rs:
crates/bwe/src/history.rs:
crates/bwe/src/probe.rs:
crates/bwe/src/semb.rs:
crates/bwe/src/twcc.rs:
