/root/repo/target/debug/deps/gso_bench-d795c80c27148a8a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgso_bench-d795c80c27148a8a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
