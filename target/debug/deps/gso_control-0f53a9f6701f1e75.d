/root/repo/target/debug/deps/gso_control-0f53a9f6701f1e75.d: crates/control/src/lib.rs crates/control/src/controller.rs crates/control/src/failure.rs crates/control/src/feedback.rs crates/control/src/hysteresis.rs crates/control/src/scheduler.rs crates/control/src/sdp.rs crates/control/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libgso_control-0f53a9f6701f1e75.rmeta: crates/control/src/lib.rs crates/control/src/controller.rs crates/control/src/failure.rs crates/control/src/feedback.rs crates/control/src/hysteresis.rs crates/control/src/scheduler.rs crates/control/src/sdp.rs crates/control/src/state.rs Cargo.toml

crates/control/src/lib.rs:
crates/control/src/controller.rs:
crates/control/src/failure.rs:
crates/control/src/feedback.rs:
crates/control/src/hysteresis.rs:
crates/control/src/scheduler.rs:
crates/control/src/sdp.rs:
crates/control/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
