/root/repo/target/debug/deps/solver_vs_brute-2a2c3351aa1611a1.d: crates/audit/tests/solver_vs_brute.rs Cargo.toml

/root/repo/target/debug/deps/libsolver_vs_brute-2a2c3351aa1611a1.rmeta: crates/audit/tests/solver_vs_brute.rs Cargo.toml

crates/audit/tests/solver_vs_brute.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
