/root/repo/target/debug/deps/fig8-b9c249f1124d8681.d: crates/bench/benches/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-b9c249f1124d8681.rmeta: crates/bench/benches/fig8.rs Cargo.toml

crates/bench/benches/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
