/root/repo/target/debug/deps/gso_bwe-bdc2467966302e9a.d: crates/bwe/src/lib.rs crates/bwe/src/estimator.rs crates/bwe/src/history.rs crates/bwe/src/probe.rs crates/bwe/src/semb.rs crates/bwe/src/twcc.rs

/root/repo/target/debug/deps/libgso_bwe-bdc2467966302e9a.rlib: crates/bwe/src/lib.rs crates/bwe/src/estimator.rs crates/bwe/src/history.rs crates/bwe/src/probe.rs crates/bwe/src/semb.rs crates/bwe/src/twcc.rs

/root/repo/target/debug/deps/libgso_bwe-bdc2467966302e9a.rmeta: crates/bwe/src/lib.rs crates/bwe/src/estimator.rs crates/bwe/src/history.rs crates/bwe/src/probe.rs crates/bwe/src/semb.rs crates/bwe/src/twcc.rs

crates/bwe/src/lib.rs:
crates/bwe/src/estimator.rs:
crates/bwe/src/history.rs:
crates/bwe/src/probe.rs:
crates/bwe/src/semb.rs:
crates/bwe/src/twcc.rs:
