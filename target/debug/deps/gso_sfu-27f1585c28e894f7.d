/root/repo/target/debug/deps/gso_sfu-27f1585c28e894f7.d: crates/sfu/src/lib.rs crates/sfu/src/relay.rs crates/sfu/src/selector.rs crates/sfu/src/switcher.rs crates/sfu/src/template.rs Cargo.toml

/root/repo/target/debug/deps/libgso_sfu-27f1585c28e894f7.rmeta: crates/sfu/src/lib.rs crates/sfu/src/relay.rs crates/sfu/src/selector.rs crates/sfu/src/switcher.rs crates/sfu/src/template.rs Cargo.toml

crates/sfu/src/lib.rs:
crates/sfu/src/relay.rs:
crates/sfu/src/selector.rs:
crates/sfu/src/switcher.rs:
crates/sfu/src/template.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
