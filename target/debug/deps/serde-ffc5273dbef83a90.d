/root/repo/target/debug/deps/serde-ffc5273dbef83a90.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-ffc5273dbef83a90.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
