/root/repo/target/debug/deps/gso_util-e92b13f081a638ae.d: crates/util/src/lib.rs crates/util/src/bitrate.rs crates/util/src/ewma.rs crates/util/src/ids.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/time.rs

/root/repo/target/debug/deps/libgso_util-e92b13f081a638ae.rlib: crates/util/src/lib.rs crates/util/src/bitrate.rs crates/util/src/ewma.rs crates/util/src/ids.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/time.rs

/root/repo/target/debug/deps/libgso_util-e92b13f081a638ae.rmeta: crates/util/src/lib.rs crates/util/src/bitrate.rs crates/util/src/ewma.rs crates/util/src/ids.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/time.rs

crates/util/src/lib.rs:
crates/util/src/bitrate.rs:
crates/util/src/ewma.rs:
crates/util/src/ids.rs:
crates/util/src/rng.rs:
crates/util/src/stats.rs:
crates/util/src/time.rs:
