/root/repo/target/debug/deps/audit-c5a857cf49b6d94a.d: crates/audit/src/bin/audit.rs Cargo.toml

/root/repo/target/debug/deps/libaudit-c5a857cf49b6d94a.rmeta: crates/audit/src/bin/audit.rs Cargo.toml

crates/audit/src/bin/audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
