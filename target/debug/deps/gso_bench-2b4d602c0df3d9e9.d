/root/repo/target/debug/deps/gso_bench-2b4d602c0df3d9e9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgso_bench-2b4d602c0df3d9e9.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgso_bench-2b4d602c0df3d9e9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
