/root/repo/target/debug/deps/end_to_end_conference-2943818851f25ffd.d: tests/end_to_end_conference.rs

/root/repo/target/debug/deps/end_to_end_conference-2943818851f25ffd: tests/end_to_end_conference.rs

tests/end_to_end_conference.rs:
