/root/repo/target/debug/deps/gso_net-ddba78fe51d010e4.d: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/node.rs crates/net/src/pacer.rs crates/net/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libgso_net-ddba78fe51d010e4.rmeta: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/node.rs crates/net/src/pacer.rs crates/net/src/sim.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/link.rs:
crates/net/src/node.rs:
crates/net/src/pacer.rs:
crates/net/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
