/root/repo/target/release/deps/gso_net-b482e605f2fdb0ae.d: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/node.rs crates/net/src/pacer.rs crates/net/src/sim.rs

/root/repo/target/release/deps/libgso_net-b482e605f2fdb0ae.rlib: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/node.rs crates/net/src/pacer.rs crates/net/src/sim.rs

/root/repo/target/release/deps/libgso_net-b482e605f2fdb0ae.rmeta: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/node.rs crates/net/src/pacer.rs crates/net/src/sim.rs

crates/net/src/lib.rs:
crates/net/src/link.rs:
crates/net/src/node.rs:
crates/net/src/pacer.rs:
crates/net/src/sim.rs:
