/root/repo/target/release/deps/gso_rtp-b4d0687c617832e1.d: crates/rtp/src/lib.rs crates/rtp/src/app.rs crates/rtp/src/compound.rs crates/rtp/src/error.rs crates/rtp/src/feedback.rs crates/rtp/src/header.rs crates/rtp/src/mantissa.rs crates/rtp/src/report.rs crates/rtp/src/ssrc_alloc.rs

/root/repo/target/release/deps/libgso_rtp-b4d0687c617832e1.rlib: crates/rtp/src/lib.rs crates/rtp/src/app.rs crates/rtp/src/compound.rs crates/rtp/src/error.rs crates/rtp/src/feedback.rs crates/rtp/src/header.rs crates/rtp/src/mantissa.rs crates/rtp/src/report.rs crates/rtp/src/ssrc_alloc.rs

/root/repo/target/release/deps/libgso_rtp-b4d0687c617832e1.rmeta: crates/rtp/src/lib.rs crates/rtp/src/app.rs crates/rtp/src/compound.rs crates/rtp/src/error.rs crates/rtp/src/feedback.rs crates/rtp/src/header.rs crates/rtp/src/mantissa.rs crates/rtp/src/report.rs crates/rtp/src/ssrc_alloc.rs

crates/rtp/src/lib.rs:
crates/rtp/src/app.rs:
crates/rtp/src/compound.rs:
crates/rtp/src/error.rs:
crates/rtp/src/feedback.rs:
crates/rtp/src/header.rs:
crates/rtp/src/mantissa.rs:
crates/rtp/src/report.rs:
crates/rtp/src/ssrc_alloc.rs:
