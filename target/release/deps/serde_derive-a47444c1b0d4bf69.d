/root/repo/target/release/deps/serde_derive-a47444c1b0d4bf69.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-a47444c1b0d4bf69.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
