/root/repo/target/release/deps/gso_util-9e0dff8d70e54ee7.d: crates/util/src/lib.rs crates/util/src/bitrate.rs crates/util/src/ewma.rs crates/util/src/ids.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/time.rs

/root/repo/target/release/deps/libgso_util-9e0dff8d70e54ee7.rlib: crates/util/src/lib.rs crates/util/src/bitrate.rs crates/util/src/ewma.rs crates/util/src/ids.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/time.rs

/root/repo/target/release/deps/libgso_util-9e0dff8d70e54ee7.rmeta: crates/util/src/lib.rs crates/util/src/bitrate.rs crates/util/src/ewma.rs crates/util/src/ids.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/time.rs

crates/util/src/lib.rs:
crates/util/src/bitrate.rs:
crates/util/src/ewma.rs:
crates/util/src/ids.rs:
crates/util/src/rng.rs:
crates/util/src/stats.rs:
crates/util/src/time.rs:
