/root/repo/target/release/deps/gso_bwe-39a78bcd210265be.d: crates/bwe/src/lib.rs crates/bwe/src/estimator.rs crates/bwe/src/history.rs crates/bwe/src/probe.rs crates/bwe/src/semb.rs crates/bwe/src/twcc.rs

/root/repo/target/release/deps/libgso_bwe-39a78bcd210265be.rlib: crates/bwe/src/lib.rs crates/bwe/src/estimator.rs crates/bwe/src/history.rs crates/bwe/src/probe.rs crates/bwe/src/semb.rs crates/bwe/src/twcc.rs

/root/repo/target/release/deps/libgso_bwe-39a78bcd210265be.rmeta: crates/bwe/src/lib.rs crates/bwe/src/estimator.rs crates/bwe/src/history.rs crates/bwe/src/probe.rs crates/bwe/src/semb.rs crates/bwe/src/twcc.rs

crates/bwe/src/lib.rs:
crates/bwe/src/estimator.rs:
crates/bwe/src/history.rs:
crates/bwe/src/probe.rs:
crates/bwe/src/semb.rs:
crates/bwe/src/twcc.rs:
