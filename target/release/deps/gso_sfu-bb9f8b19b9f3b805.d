/root/repo/target/release/deps/gso_sfu-bb9f8b19b9f3b805.d: crates/sfu/src/lib.rs crates/sfu/src/relay.rs crates/sfu/src/selector.rs crates/sfu/src/switcher.rs crates/sfu/src/template.rs

/root/repo/target/release/deps/libgso_sfu-bb9f8b19b9f3b805.rlib: crates/sfu/src/lib.rs crates/sfu/src/relay.rs crates/sfu/src/selector.rs crates/sfu/src/switcher.rs crates/sfu/src/template.rs

/root/repo/target/release/deps/libgso_sfu-bb9f8b19b9f3b805.rmeta: crates/sfu/src/lib.rs crates/sfu/src/relay.rs crates/sfu/src/selector.rs crates/sfu/src/switcher.rs crates/sfu/src/template.rs

crates/sfu/src/lib.rs:
crates/sfu/src/relay.rs:
crates/sfu/src/selector.rs:
crates/sfu/src/switcher.rs:
crates/sfu/src/template.rs:
