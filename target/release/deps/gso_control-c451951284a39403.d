/root/repo/target/release/deps/gso_control-c451951284a39403.d: crates/control/src/lib.rs crates/control/src/controller.rs crates/control/src/failure.rs crates/control/src/feedback.rs crates/control/src/hysteresis.rs crates/control/src/scheduler.rs crates/control/src/sdp.rs crates/control/src/state.rs

/root/repo/target/release/deps/libgso_control-c451951284a39403.rlib: crates/control/src/lib.rs crates/control/src/controller.rs crates/control/src/failure.rs crates/control/src/feedback.rs crates/control/src/hysteresis.rs crates/control/src/scheduler.rs crates/control/src/sdp.rs crates/control/src/state.rs

/root/repo/target/release/deps/libgso_control-c451951284a39403.rmeta: crates/control/src/lib.rs crates/control/src/controller.rs crates/control/src/failure.rs crates/control/src/feedback.rs crates/control/src/hysteresis.rs crates/control/src/scheduler.rs crates/control/src/sdp.rs crates/control/src/state.rs

crates/control/src/lib.rs:
crates/control/src/controller.rs:
crates/control/src/failure.rs:
crates/control/src/feedback.rs:
crates/control/src/hysteresis.rs:
crates/control/src/scheduler.rs:
crates/control/src/sdp.rs:
crates/control/src/state.rs:
