/root/repo/target/release/deps/gso_simulcast-59f0ad510b3e8518.d: src/lib.rs

/root/repo/target/release/deps/libgso_simulcast-59f0ad510b3e8518.rlib: src/lib.rs

/root/repo/target/release/deps/libgso_simulcast-59f0ad510b3e8518.rmeta: src/lib.rs

src/lib.rs:
