/root/repo/target/release/deps/audit-b9c14b14a19c3269.d: crates/audit/src/bin/audit.rs

/root/repo/target/release/deps/audit-b9c14b14a19c3269: crates/audit/src/bin/audit.rs

crates/audit/src/bin/audit.rs:
