/root/repo/target/release/deps/serde-063392aee396444d.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-063392aee396444d.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-063392aee396444d.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
