/root/repo/target/release/deps/gso_simulcast-75a22fbf9268c881.d: src/lib.rs

/root/repo/target/release/deps/libgso_simulcast-75a22fbf9268c881.rlib: src/lib.rs

/root/repo/target/release/deps/libgso_simulcast-75a22fbf9268c881.rmeta: src/lib.rs

src/lib.rs:
