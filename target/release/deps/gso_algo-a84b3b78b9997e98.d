/root/repo/target/release/deps/gso_algo-a84b3b78b9997e98.d: crates/algo/src/lib.rs crates/algo/src/brute.rs crates/algo/src/diff.rs crates/algo/src/ladders.rs crates/algo/src/mckp.rs crates/algo/src/problem.rs crates/algo/src/qoe.rs crates/algo/src/solution.rs crates/algo/src/solver.rs crates/algo/src/types.rs

/root/repo/target/release/deps/libgso_algo-a84b3b78b9997e98.rlib: crates/algo/src/lib.rs crates/algo/src/brute.rs crates/algo/src/diff.rs crates/algo/src/ladders.rs crates/algo/src/mckp.rs crates/algo/src/problem.rs crates/algo/src/qoe.rs crates/algo/src/solution.rs crates/algo/src/solver.rs crates/algo/src/types.rs

/root/repo/target/release/deps/libgso_algo-a84b3b78b9997e98.rmeta: crates/algo/src/lib.rs crates/algo/src/brute.rs crates/algo/src/diff.rs crates/algo/src/ladders.rs crates/algo/src/mckp.rs crates/algo/src/problem.rs crates/algo/src/qoe.rs crates/algo/src/solution.rs crates/algo/src/solver.rs crates/algo/src/types.rs

crates/algo/src/lib.rs:
crates/algo/src/brute.rs:
crates/algo/src/diff.rs:
crates/algo/src/ladders.rs:
crates/algo/src/mckp.rs:
crates/algo/src/problem.rs:
crates/algo/src/qoe.rs:
crates/algo/src/solution.rs:
crates/algo/src/solver.rs:
crates/algo/src/types.rs:
