/root/repo/target/release/deps/gso_audit-3318056f133955e4.d: crates/audit/src/lib.rs crates/audit/src/scenarios.rs

/root/repo/target/release/deps/libgso_audit-3318056f133955e4.rlib: crates/audit/src/lib.rs crates/audit/src/scenarios.rs

/root/repo/target/release/deps/libgso_audit-3318056f133955e4.rmeta: crates/audit/src/lib.rs crates/audit/src/scenarios.rs

crates/audit/src/lib.rs:
crates/audit/src/scenarios.rs:
