/root/repo/target/release/deps/gso_media-92915db3227dc08e.d: crates/media/src/lib.rs crates/media/src/audio.rs crates/media/src/cost.rs crates/media/src/encoder.rs crates/media/src/frame.rs crates/media/src/metrics.rs crates/media/src/quality.rs crates/media/src/receiver.rs

/root/repo/target/release/deps/libgso_media-92915db3227dc08e.rlib: crates/media/src/lib.rs crates/media/src/audio.rs crates/media/src/cost.rs crates/media/src/encoder.rs crates/media/src/frame.rs crates/media/src/metrics.rs crates/media/src/quality.rs crates/media/src/receiver.rs

/root/repo/target/release/deps/libgso_media-92915db3227dc08e.rmeta: crates/media/src/lib.rs crates/media/src/audio.rs crates/media/src/cost.rs crates/media/src/encoder.rs crates/media/src/frame.rs crates/media/src/metrics.rs crates/media/src/quality.rs crates/media/src/receiver.rs

crates/media/src/lib.rs:
crates/media/src/audio.rs:
crates/media/src/cost.rs:
crates/media/src/encoder.rs:
crates/media/src/frame.rs:
crates/media/src/metrics.rs:
crates/media/src/quality.rs:
crates/media/src/receiver.rs:
